//! Kill-anywhere crash drills for the LSM write path.
//!
//! Every step the write path takes on disk — group journal append, fsync,
//! run-file write (whole and torn), runs-manifest swap, journal rotation,
//! compaction merge, compaction manifest swap, checkpoint snapshot — has a
//! failpoint. These tests arm each one in turn, drive writes until the
//! fault fires, "kill the process" by dropping the store right there, and
//! reopen from disk alone. Two invariants must hold at *every* kill point:
//!
//! 1. **No acknowledged batch is lost.** A `write_batch` that returned a
//!    sequence number is durable: all of its triples are present after
//!    recovery, and the recovered watermark covers its sequence.
//! 2. **No torn state is surfaced.** The recovered triple count is an
//!    exact multiple of the batch size (batches are atomic), recovery
//!    never resurrects more batches than were attempted, and a run file
//!    that fails its CRC is refused — never half-loaded.

use std::path::PathBuf;

use mdw_rdf::failpoint::{self, FailSpec};
use mdw_rdf::journal::JournalOp;
use mdw_rdf::lsm::{LsmConfig, LsmStore};
use mdw_rdf::term::Term;
use mdw_rdf::triple::Triple;

/// Batch size every drill writes with; recovery checks count % BATCH == 0.
const BATCH: usize = 2;
const MODEL: &str = "m";

/// Every write-path failpoint reachable from `write_batch`/`compact_once`.
const WRITE_PATH_FAILPOINTS: &[&str] = &[
    "journal::append",
    "journal::append::partial",
    "journal::sync",
    "run::seal",
    "run::seal::partial",
    "run::seal::manifest",
    "run::manifest",
    "journal::rotate",
    "compact::merge",
    "compact::manifest",
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mdw-lsm-crash-{}-{}",
        tag.replace("::", "-"),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn subject(b: usize, t: usize) -> Term {
    Term::iri(format!("http://ex.org/crash/b{b}t{t}"))
}

fn batch_ops(b: usize) -> Vec<JournalOp> {
    (0..BATCH)
        .map(|t| {
            JournalOp::Insert(
                subject(b, t),
                Term::iri("http://ex.org/crash/p"),
                Term::iri("http://ex.org/crash/o"),
            )
        })
        .collect()
}

/// Small memtable so seals (and therefore runs, manifests, rotations, and
/// compactions) happen every couple of batches.
fn drill_cfg() -> LsmConfig {
    LsmConfig {
        memtable_limit: 4,
        max_runs: 2,
        auto_compact: false,
        ..LsmConfig::default()
    }
}

/// Reopens `dir` and checks both recovery invariants.
fn verify_recovery(dir: &PathBuf, acked: &[(usize, u64)], attempted: usize, point: &str) {
    let (store, report) = LsmStore::open(dir, drill_cfg())
        .unwrap_or_else(|e| panic!("{point}: reopen after kill failed: {e}"));
    let snap = store.snapshot();
    let max_seq = acked.iter().map(|&(_, s)| s).max().unwrap_or(0);
    assert!(
        snap.watermark() >= max_seq,
        "{point}: recovered watermark {} < max acked seq {max_seq} (report {report:?})",
        snap.watermark()
    );
    if acked.is_empty() {
        return;
    }
    let graph = snap
        .model(MODEL)
        .unwrap_or_else(|e| panic!("{point}: model lost after recovery: {e}"));
    for &(b, seq) in acked {
        for t in 0..BATCH {
            let term = subject(b, t);
            let present = snap.dict().lookup(&term).is_some_and(|s| {
                let p = snap.dict().lookup(&Term::iri("http://ex.org/crash/p"));
                let o = snap.dict().lookup(&Term::iri("http://ex.org/crash/o"));
                matches!((p, o), (Some(p), Some(o)) if graph.contains(Triple::new(s, p, o)))
            });
            assert!(
                present,
                "{point}: acked batch b{b} (seq {seq}) lost triple t{t} \
                 (report {report:?})"
            );
        }
    }
    assert_eq!(
        graph.len() % BATCH,
        0,
        "{point}: recovered {} triples — torn batch surfaced",
        graph.len()
    );
    assert!(
        graph.len() / BATCH <= attempted,
        "{point}: recovered {} batches, more than the {attempted} attempted",
        graph.len() / BATCH
    );
}

/// Drives writes (with explicit compaction) until the armed fault fires,
/// kills there, recovers, and verifies. Returns true if the fault was
/// actually consumed during the drive.
fn kill_and_recover_at(point: &str) -> bool {
    let dir = temp_dir(point);
    failpoint::reset();
    let (store, _) = LsmStore::open(&dir, drill_cfg()).unwrap();
    failpoint::arm(point, FailSpec::Once);

    let mut acked: Vec<(usize, u64)> = Vec::new();
    let mut attempted = 0usize;
    let mut fault_seen = false;
    for b in 0..24 {
        attempted += 1;
        match store.write_batch(MODEL, &batch_ops(b)) {
            Ok(seq) => acked.push((b, seq)),
            Err(_) => {
                // The kill moment: an unacknowledged batch.
                fault_seen = true;
                break;
            }
        }
        // A seal failure never fails the already-committed batch; it shows
        // up as a retry counter. That is also a kill moment.
        if store.metrics().seal_retries > 0 {
            fault_seen = true;
            break;
        }
        if store.compaction_debt() >= 2 {
            match store.compact_once() {
                Ok(_) => {}
                Err(_) => {
                    fault_seen = true;
                    break;
                }
            }
        }
    }
    // Kill: drop with whatever half-finished state the fault left behind.
    drop(store);
    failpoint::reset();
    verify_recovery(&dir, &acked, attempted, point);
    let _ = std::fs::remove_dir_all(&dir);
    fault_seen
}

#[test]
fn kill_at_every_write_path_failpoint_loses_nothing() {
    for point in WRITE_PATH_FAILPOINTS {
        kill_and_recover_at(point);
    }
}

#[test]
fn the_workload_actually_reaches_the_fatal_failpoints() {
    // The sweep above is only meaningful if the drive really trips the
    // faults. Points whose failures surface to the driver must have fired;
    // rotation faults are absorbed silently by design (rotation is
    // redundant work — replay is idempotent), so they are exempt.
    for point in ["journal::append", "journal::append::partial", "journal::sync", "run::seal", "run::seal::partial", "compact::merge", "compact::manifest"] {
        assert!(
            kill_and_recover_at(point),
            "drive never consumed the armed fault at {point}"
        );
    }
}

#[test]
fn kill_during_checkpoint_snapshot_loses_nothing() {
    for point in ["snapshot::model", "snapshot::manifest"] {
        let dir = temp_dir(point);
        failpoint::reset();
        let (store, _) = LsmStore::open(&dir, drill_cfg()).unwrap();
        let mut acked = Vec::new();
        for b in 0..6 {
            acked.push((b, store.write_batch(MODEL, &batch_ops(b)).unwrap()));
        }
        failpoint::arm(point, FailSpec::Once);
        store
            .checkpoint()
            .expect_err("armed snapshot failpoint must surface");
        drop(store);
        failpoint::reset();
        verify_recovery(&dir, &acked, 6, point);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_listed_run_is_refused_not_half_loaded() {
    let dir = temp_dir("torn-run");
    failpoint::reset();
    let cfg = drill_cfg();
    let (store, _) = LsmStore::open(&dir, cfg.clone()).unwrap();
    for b in 0..4 {
        store.write_batch(MODEL, &batch_ops(b)).unwrap();
    }
    let metrics = store.metrics();
    assert!(metrics.sealed_runs > 0, "workload must seal at least one run");
    drop(store);

    // Tear the newest sealed run file behind the manifest's back.
    let run_file = (1..=metrics.sealed_runs)
        .map(|i| dir.join(format!("run_{i}.ops")))
        .filter(|p| p.exists())
        .next_back()
        .expect("a sealed run file on disk");
    let bytes = std::fs::read(&run_file).unwrap();
    std::fs::write(&run_file, &bytes[..bytes.len() / 2]).unwrap();

    // A manifest-listed run that fails verification is corruption: refuse
    // to open rather than serve a half-run.
    let err = LsmStore::open(&dir, cfg).expect_err("torn listed run must refuse to load");
    assert!(
        matches!(err, mdw_rdf::RdfError::Corrupt { .. }),
        "expected Corrupt, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unlisted_torn_run_is_quarantined_on_open() {
    // An orphan (file present, not in the manifest — a kill between run
    // write and manifest swap) must be quarantined, not loaded and not
    // fatal.
    let dir = temp_dir("orphan-run");
    failpoint::reset();
    let (store, _) = LsmStore::open(&dir, drill_cfg()).unwrap();
    let mut acked = Vec::new();
    for b in 0..3 {
        acked.push((b, store.write_batch(MODEL, &batch_ops(b)).unwrap()));
    }
    drop(store);
    std::fs::write(dir.join("run_99.ops"), b"half a run, no trailer").unwrap();
    let (store, report) = LsmStore::open(&dir, drill_cfg()).unwrap();
    assert!(
        report.quarantined.iter().any(|q| q.contains("run_99")),
        "orphan run not quarantined: {report:?}"
    );
    assert!(!dir.join("run_99.ops").exists());
    drop(store);
    verify_recovery(&dir, &acked, 3, "orphan-run");
    let _ = std::fs::remove_dir_all(&dir);
}
