//! Differential equivalence between the stacked multi-run read path and a
//! flat single-index freeze.
//!
//! The LSM write path answers reads through a k-way merge over base +
//! sealed delta runs + the live memtable. That merged view must be a
//! perfect drop-in for the graph you would get by applying the same op
//! sequence to one mutable set and freezing it once: identical SPO scan
//! order, identical per-pattern results for every bound-prefix shape,
//! identical exact counts, identical `compact()` rows, and an identical
//! content checksum — no matter where the run boundaries fall, how ops
//! overlap across runs, or how inserts and tombstones interleave.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use mdw_rdf::dict::TermId;
use mdw_rdf::frozen::{DeltaRun, FrozenGraph, FrozenIndex};
use mdw_rdf::journal::JournalOp;
use mdw_rdf::lsm::{LsmConfig, LsmStore};
use mdw_rdf::term::Term;
use mdw_rdf::triple::{Triple, TriplePattern};

/// One logical mutation over a tiny id domain (tiny on purpose: lots of
/// overwrite/tombstone collisions across runs).
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64, u64),
    Remove(u64, u64, u64),
}

fn op() -> impl Strategy<Value = Op> {
    (any::<bool>(), 0u64..10, 0u64..5, 0u64..10).prop_map(|(insert, s, p, o)| {
        if insert {
            Op::Insert(s, p, o)
        } else {
            Op::Remove(s, p, o)
        }
    })
}

fn apply_flat(set: &mut BTreeSet<(u64, u64, u64)>, op: Op) {
    match op {
        Op::Insert(s, p, o) => {
            set.insert((s, p, o));
        }
        Op::Remove(s, p, o) => {
            set.remove(&(s, p, o));
        }
    }
}

/// The memtable's delta algebra: an insert cancels a pending tombstone,
/// a remove cancels a pending add — adds and dels stay disjoint.
#[derive(Default)]
struct Delta {
    adds: BTreeSet<(u64, u64, u64)>,
    dels: BTreeSet<(u64, u64, u64)>,
}

impl Delta {
    fn apply(&mut self, op: Op) {
        match op {
            Op::Insert(s, p, o) => {
                self.dels.remove(&(s, p, o));
                self.adds.insert((s, p, o));
            }
            Op::Remove(s, p, o) => {
                self.adds.remove(&(s, p, o));
                self.dels.insert((s, p, o));
            }
        }
    }

    fn freeze(self) -> DeltaRun {
        DeltaRun::new(
            FrozenIndex::from_spo_rows(self.adds.into_iter().collect()),
            FrozenIndex::from_spo_rows(self.dels.into_iter().collect()),
        )
    }
}

/// All 8 bound/wildcard pattern shapes over one (s, p, o) binding.
fn all_shapes(s: u64, p: u64, o: u64) -> Vec<TriplePattern> {
    (0u8..8)
        .map(|mask| TriplePattern {
            s: (mask & 1 != 0).then_some(TermId(s)),
            p: (mask & 2 != 0).then_some(TermId(p)),
            o: (mask & 4 != 0).then_some(TermId(o)),
        })
        .collect()
}

proptest! {
    /// Core differential property: split one op sequence at arbitrary cut
    /// points into a base segment + up to 4 delta runs, stack them, and
    /// the stacked graph must agree with the flat freeze on every
    /// observable read.
    #[test]
    fn stacked_multi_run_scan_equals_flat_freeze(
        ops in proptest::collection::vec(op(), 0..120),
        cuts in proptest::collection::vec(0usize..121, 0..4),
    ) {
        // Reference: one mutable set, frozen once.
        let mut flat = BTreeSet::new();
        for &op in &ops {
            apply_flat(&mut flat, op);
        }
        let reference =
            FrozenGraph::new(FrozenIndex::from_spo_rows(flat.into_iter().collect()));

        // Stacked: the same ops partitioned into base + delta runs.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c.min(ops.len())).collect();
        bounds.push(0);
        bounds.push(ops.len());
        bounds.sort_unstable();
        bounds.dedup();
        let mut segments = bounds.windows(2).map(|w| &ops[w[0]..w[1]]);
        let mut base = BTreeSet::new();
        for &op in segments.next().unwrap_or(&[]) {
            apply_flat(&mut base, op);
        }
        let deltas: Vec<Arc<DeltaRun>> = segments
            .map(|segment| {
                let mut delta = Delta::default();
                for &op in segment {
                    delta.apply(op);
                }
                Arc::new(delta.freeze())
            })
            .collect();
        let stacked = FrozenGraph::stacked(
            Arc::new(FrozenIndex::from_spo_rows(base.into_iter().collect())),
            deltas,
        );

        // Full scan: same triples, same SPO order.
        let got: Vec<Triple> = stacked.iter().collect();
        let want: Vec<Triple> = reference.iter().collect();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(stacked.len(), reference.len());

        // Folding the stack back to one index reproduces the flat rows,
        // and the content checksum cannot tell the two apart.
        let folded = stacked.compact();
        prop_assert_eq!(folded.spo_rows(), reference.index().spo_rows());
        prop_assert_eq!(stacked.checksum(), reference.checksum());

        // Every bound-prefix shape agrees: scan rows, exact counts, and
        // point membership.
        for (s, p, o) in [(0, 0, 0), (3, 2, 7), (9, 4, 9)] {
            for pattern in all_shapes(s, p, o) {
                let got: Vec<Triple> = stacked.scan(pattern).collect();
                let want: Vec<Triple> = reference.scan(pattern).collect();
                prop_assert_eq!(&got, &want, "pattern {:?}", pattern);
                prop_assert_eq!(
                    stacked.count_exact(pattern),
                    reference.count_exact(pattern),
                    "count for pattern {:?}",
                    pattern
                );
            }
            let probe = Triple::new(TermId(s), TermId(p), TermId(o));
            prop_assert_eq!(stacked.contains(probe), reference.contains(probe));
        }
    }

    /// End-to-end differential through the store itself: the same batches
    /// written to a sealing store (every batch becomes its own run) and to
    /// a never-sealing store (everything stays in one memtable) publish
    /// snapshots that are indistinguishable.
    #[test]
    fn sealed_store_snapshot_equals_unsealed_store_snapshot(
        batches in proptest::collection::vec(
            proptest::collection::vec(op(), 1..12),
            1..6,
        ),
    ) {
        let sealing = LsmStore::in_memory(LsmConfig { auto_compact: false, ..LsmConfig::default() });
        let flat = LsmStore::in_memory(LsmConfig { auto_compact: false, ..LsmConfig::default() });
        let term = |n: u64, tag: &str| Term::iri(format!("http://ex.org/{tag}{n}"));
        for batch in &batches {
            let ops: Vec<JournalOp> = batch
                .iter()
                .map(|&op| match op {
                    Op::Insert(s, p, o) => {
                        JournalOp::Insert(term(s, "s"), term(p, "p"), term(o, "o"))
                    }
                    Op::Remove(s, p, o) => {
                        JournalOp::Remove(term(s, "s"), term(p, "p"), term(o, "o"))
                    }
                })
                .collect();
            sealing.write_batch("m", &ops).unwrap();
            sealing.seal_now().unwrap();
            flat.write_batch("m", &ops).unwrap();
        }
        let stacked = sealing.snapshot();
        let reference = flat.snapshot();
        let stacked_graph = stacked.model("m").unwrap();
        let reference_graph = reference.model("m").unwrap();
        prop_assert_eq!(stacked_graph.len(), reference_graph.len());
        prop_assert_eq!(stacked_graph.checksum(), reference_graph.checksum());
        // Term-space comparison (the two dictionaries may disagree on ids
        // only if interning order diverged — it must not).
        let render = |snap: &mdw_rdf::frozen::FrozenStore| -> Vec<(u64, u64, u64)> {
            snap.model("m").unwrap().iter().map(|t| t.as_tuple()).collect()
        };
        prop_assert_eq!(render(&stacked), render(&reference));
        // Compaction of the sealed stack changes nothing observable.
        while sealing.compact_once().unwrap() {}
        let compacted = sealing.snapshot();
        prop_assert_eq!(render(&compacted), render(&reference));
        prop_assert_eq!(compacted.model("m").unwrap().checksum(), reference_graph.checksum());
    }
}
