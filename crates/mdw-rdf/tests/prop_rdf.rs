//! Property-based tests for the RDF substrate: dictionary bijectivity,
//! index-permutation agreement against a brute-force oracle, and
//! serializer/parser round-trips.

use proptest::prelude::*;

use mdw_rdf::dict::{Dictionary, TermId};
use mdw_rdf::index::TripleIndex;
use mdw_rdf::term::{Literal, Term};
use mdw_rdf::triple::{Triple, TriplePattern};
use mdw_rdf::turtle;

// ---- Strategies -----------------------------------------------------------

fn iri_strategy() -> impl Strategy<Value = Term> {
    "[a-z]{1,6}(/[a-z0-9]{1,4}){0,2}".prop_map(|s| Term::iri(format!("http://ex.org/{s}")))
}

fn literal_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        // Plain, with characters that exercise escaping.
        "[ -~]{0,12}".prop_map(Term::plain),
        ("[a-zA-Z0-9 ]{1,8}", "[a-z]{2}").prop_map(|(l, t)| Term::lang(l, t)),
        any::<i64>().prop_map(Term::integer),
    ]
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        4 => iri_strategy(),
        2 => literal_strategy(),
        1 => "[a-z][a-z0-9]{0,5}".prop_map(Term::bnode),
    ]
}

fn small_triple() -> impl Strategy<Value = Triple> {
    (0u64..12, 0u64..6, 0u64..12)
        .prop_map(|(s, p, o)| Triple::new(TermId(s), TermId(p), TermId(o)))
}

fn small_pattern() -> impl Strategy<Value = TriplePattern> {
    (
        proptest::option::of(0u64..12),
        proptest::option::of(0u64..6),
        proptest::option::of(0u64..12),
    )
        .prop_map(|(s, p, o)| TriplePattern {
            s: s.map(TermId),
            p: p.map(TermId),
            o: o.map(TermId),
        })
}

// ---- Dictionary -----------------------------------------------------------

proptest! {
    #[test]
    fn dictionary_round_trips(terms in proptest::collection::vec(term_strategy(), 0..40)) {
        let mut dict = Dictionary::new();
        let ids: Vec<TermId> = terms.iter().map(|t| dict.intern(t)).collect();
        // Every id decodes back to the exact term.
        for (term, id) in terms.iter().zip(&ids) {
            prop_assert_eq!(dict.term(*id), Some(term));
            prop_assert_eq!(dict.lookup(term), Some(*id));
        }
        // Distinct terms get distinct ids; equal terms get equal ids.
        for (i, a) in terms.iter().enumerate() {
            for (j, b) in terms.iter().enumerate() {
                prop_assert_eq!(a == b, ids[i] == ids[j], "terms {} and {}", i, j);
            }
        }
        // The dictionary is no larger than the distinct-term count.
        let mut distinct = terms.clone();
        distinct.sort();
        distinct.dedup();
        prop_assert_eq!(dict.len(), distinct.len());
    }

    #[test]
    fn interning_is_stable_under_reinsertion(terms in proptest::collection::vec(term_strategy(), 1..20)) {
        let mut dict = Dictionary::new();
        let first: Vec<TermId> = terms.iter().map(|t| dict.intern(t)).collect();
        let len = dict.len();
        let second: Vec<TermId> = terms.iter().map(|t| dict.intern(t)).collect();
        prop_assert_eq!(first, second);
        prop_assert_eq!(dict.len(), len);
    }
}

// ---- Index ----------------------------------------------------------------

proptest! {
    #[test]
    fn scan_agrees_with_bruteforce(
        triples in proptest::collection::vec(small_triple(), 0..60),
        pattern in small_pattern(),
    ) {
        let mut index = TripleIndex::new();
        for &t in &triples {
            index.insert(t);
        }
        let mut got: Vec<Triple> = index.scan(pattern).collect();
        got.sort();
        got.dedup();
        let mut expected: Vec<Triple> = triples
            .iter()
            .copied()
            .filter(|t| pattern.matches(*t))
            .collect();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn insert_remove_maintains_set_semantics(
        ops in proptest::collection::vec((small_triple(), any::<bool>()), 0..80),
    ) {
        let mut index = TripleIndex::new();
        let mut oracle = std::collections::BTreeSet::new();
        for (t, is_insert) in ops {
            if is_insert {
                prop_assert_eq!(index.insert(t), oracle.insert(t));
            } else {
                prop_assert_eq!(index.remove(t), oracle.remove(&t));
            }
            prop_assert_eq!(index.len(), oracle.len());
        }
        let got: Vec<Triple> = index.iter().collect();
        let expected: Vec<Triple> = oracle.into_iter().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn count_cap_is_monotone(
        triples in proptest::collection::vec(small_triple(), 0..50),
        pattern in small_pattern(),
        cap in 0usize..20,
    ) {
        let mut index = TripleIndex::new();
        for &t in &triples {
            index.insert(t);
        }
        let capped = index.count(pattern, Some(cap));
        let full = index.count(pattern, None);
        prop_assert!(capped <= cap.max(full));
        prop_assert!(capped <= full);
        if full <= cap {
            prop_assert_eq!(capped, full);
        }
    }
}

// ---- Turtle ----------------------------------------------------------------

fn statement_strategy() -> impl Strategy<Value = (Term, Term, Term)> {
    (
        prop_oneof![iri_strategy(), "[a-z][a-z0-9]{0,5}".prop_map(Term::bnode)],
        iri_strategy(),
        term_strategy(),
    )
}

proptest! {
    #[test]
    fn ntriples_round_trip(
        triples in proptest::collection::vec(statement_strategy(), 0..30),
    ) {
        let text = turtle::to_ntriples(&triples);
        let doc = turtle::parse(&text).unwrap();
        let mut got = doc.triples;
        got.sort();
        got.dedup();
        let mut expected = triples;
        expected.sort();
        expected.dedup();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn literal_escaping_round_trips(lexical in "[ -~\t\n\r]{0,24}") {
        let triple = (
            Term::iri("http://ex.org/s"),
            Term::iri("http://ex.org/p"),
            Term::Literal(Literal::plain(lexical.clone())),
        );
        let text = turtle::to_ntriples(std::slice::from_ref(&triple));
        let doc = turtle::parse(&text).unwrap();
        prop_assert_eq!(doc.triples.len(), 1);
        prop_assert_eq!(&doc.triples[0], &triple);
    }
}
