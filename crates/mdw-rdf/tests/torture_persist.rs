//! Torture tests for the durability layer: truncate on-disk artifacts at
//! every byte boundary and assert that recovery returns exactly the last
//! committed state — never silently wrong data.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use mdw_rdf::journal::{self, Journal, JournalOp};
use mdw_rdf::persist;
use mdw_rdf::store::Store;
use mdw_rdf::term::Term;
use mdw_rdf::triple::Triple;
use mdw_rdf::RdfError;

use proptest::prelude::*;

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mdw-torture-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn iri(ns: &str, n: u64) -> Term {
    Term::iri(format!("http://ex.org/{ns}/{n}"))
}

/// All triples of all models, rendered for comparison.
fn state_lines(store: &Store) -> BTreeSet<String> {
    let mut lines = BTreeSet::new();
    for name in store.model_names() {
        let graph = store.model(name).unwrap();
        for t in graph.iter() {
            let (s, p, o) = store.decode(t).unwrap();
            lines.insert(format!("{name}: {s} {p} {o}"));
        }
    }
    lines
}

fn apply_ops(store: &mut Store, model: &str, ops: &[JournalOp]) {
    for op in ops {
        match op {
            JournalOp::Insert(s, p, o) => {
                if !store.has_model(model) {
                    store.create_model(model).unwrap();
                }
                store.insert(model, s, p, o).unwrap();
            }
            JournalOp::Remove(s, p, o) => {
                let ids = (store.encode(s), store.encode(p), store.encode(o));
                if let (Some(s), Some(p), Some(o)) = ids {
                    if store.has_model(model) {
                        store
                            .model_mut(model)
                            .unwrap()
                            .remove(Triple::new(s, p, o));
                    }
                }
            }
        }
    }
}

fn base_store() -> Store {
    let mut store = Store::new();
    store.create_model("DWH_CURR").unwrap();
    for i in 0..3 {
        store
            .insert(
                "DWH_CURR",
                &iri("base", i),
                &iri("p", 0),
                &Term::plain(format!("value {i}")),
            )
            .unwrap();
    }
    store
}

/// Truncate the journal at EVERY byte position inside the record stream:
/// recovery must return exactly the state reflecting the batches whose
/// commit markers survived the cut, and must heal the file.
#[test]
fn journal_truncated_at_every_byte_recovers_committed_prefix() {
    let dir = temp_dir("journal-cut");
    let store = base_store();
    persist::save_snapshot(&store, &dir, 0).unwrap();

    // Three batches; remember the file length after each commit.
    let batches: Vec<Vec<JournalOp>> = vec![
        vec![JournalOp::Insert(iri("j", 1), iri("p", 0), Term::plain("one"))],
        vec![
            JournalOp::Remove(iri("base", 0), iri("p", 0), Term::plain("value 0")),
            JournalOp::Insert(iri("j", 2), iri("p", 0), Term::plain("two\nwith newline")),
        ],
        vec![JournalOp::Insert(iri("j", 3), iri("p", 0), Term::plain("three"))],
    ];
    let journal_path = Journal::path_in(&dir);
    let mut commit_offsets = Vec::new();
    {
        let mut j = Journal::open(&dir).unwrap();
        let header_len = fs::metadata(&journal_path).unwrap().len() as usize;
        commit_offsets.push(header_len);
        for ops in &batches {
            j.append("DWH_CURR", ops).unwrap();
            commit_offsets.push(fs::metadata(&journal_path).unwrap().len() as usize);
        }
    }
    let full = fs::read(&journal_path).unwrap();
    assert_eq!(full.len(), *commit_offsets.last().unwrap());

    // Expected state after k committed batches.
    let expected: Vec<BTreeSet<String>> = (0..=batches.len())
        .map(|k| {
            let mut s = base_store();
            for ops in &batches[..k] {
                apply_ops(&mut s, "DWH_CURR", ops);
            }
            state_lines(&s)
        })
        .collect();

    for cut in commit_offsets[0]..=full.len() {
        fs::write(&journal_path, &full[..cut]).unwrap();
        let committed = commit_offsets.iter().filter(|&&off| off <= cut).count() - 1;
        let (recovered, report) = persist::recover(&dir)
            .unwrap_or_else(|e| panic!("cut at {cut}: recover failed: {e}"));
        assert_eq!(
            state_lines(&recovered),
            expected[committed],
            "cut at byte {cut}: wrong state for {committed} committed batches"
        );
        assert_eq!(report.replayed_batches, committed, "cut at byte {cut}");
        // Recovery healed the file: it now ends at the last commit marker.
        assert_eq!(
            fs::metadata(&journal_path).unwrap().len() as usize,
            commit_offsets[committed],
            "cut at byte {cut}: tail not truncated"
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Truncate each committed model file at every byte boundary: the load
/// must DETECT the damage (checksum/count mismatch) rather than return a
/// silently shortened graph.
#[test]
fn model_file_truncation_is_always_detected() {
    let dir = temp_dir("nt-cut");
    let store = base_store();
    persist::save_snapshot(&store, &dir, 0).unwrap();
    for path in persist::model_files(&dir).unwrap() {
        let full = fs::read(&path).unwrap();
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let err = persist::load_store(&dir).unwrap_err();
            assert!(
                matches!(err, RdfError::Corrupt { .. } | RdfError::Parse { .. }),
                "cut at {cut}: unexpected error kind {err}"
            );
            let report = persist::fsck(&dir).unwrap();
            assert!(!report.clean(), "cut at {cut}: fsck missed the damage");
        }
        fs::write(&path, &full).unwrap();
        assert!(persist::fsck(&dir).unwrap().clean());
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// A crash mid-snapshot leaves partially written next-generation files
/// behind. Whatever their content, the committed manifest still points at
/// the previous generation and the old state loads unharmed.
#[test]
fn partial_next_generation_files_do_not_affect_committed_state() {
    let dir = temp_dir("partial-gen");
    let store = base_store();
    let report = persist::save_snapshot(&store, &dir, 0).unwrap();
    let committed = state_lines(&persist::load_store(&dir).unwrap());

    // Fake the debris of a crashed snapshot: a next-generation model file
    // and a manifest temp file, both torn at various points.
    let next_gen = report.generation + 1;
    let debris_model = dir.join(format!("model_{next_gen}_0.nt"));
    let debris_manifest = dir.join("manifest.tmp");
    let model_bytes = b"<http://ex.org/half> <http://ex.org/p> \"torn";
    let manifest_bytes = format!("#mdw-snapshot v2 gen={next_gen} journal_s");
    for cut in 0..model_bytes.len() {
        fs::write(&debris_model, &model_bytes[..cut]).unwrap();
        fs::write(&debris_manifest, &manifest_bytes.as_bytes()[..cut.min(manifest_bytes.len())])
            .unwrap();
        let loaded = persist::load_store(&dir).unwrap();
        assert_eq!(state_lines(&loaded), committed, "cut at {cut}");
    }
    // The next successful save reaps the debris.
    let r2 = persist::save_snapshot(&store, &dir, 0).unwrap();
    assert!(r2.generation > report.generation);
    assert!(!debris_manifest.exists());
    fs::remove_dir_all(&dir).unwrap();
}

fn op_strategy() -> impl Strategy<Value = JournalOp> {
    (any::<bool>(), 0u64..6, 0u64..3, 0u64..6).prop_map(|(insert, s, p, o)| {
        if insert {
            JournalOp::Insert(iri("s", s), iri("p", p), iri("o", o))
        } else {
            JournalOp::Remove(iri("s", s), iri("p", p), iri("o", o))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any sequence of journaled batches replays to exactly the state the
    /// writer saw in memory, regardless of how batches were sized.
    #[test]
    fn journal_replay_matches_in_memory_state(
        batches in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 0..5),
            0..6,
        ),
    ) {
        let dir = temp_dir("prop-replay");
        let mut live = base_store();
        persist::save_snapshot(&live, &dir, 0).unwrap();
        {
            let mut j = Journal::open(&dir).unwrap();
            for ops in &batches {
                apply_ops(&mut live, "DWH_CURR", ops);
                j.append("DWH_CURR", ops).unwrap();
            }
        }
        let (recovered, report) = persist::recover(&dir).unwrap();
        prop_assert_eq!(state_lines(&recovered), state_lines(&live));
        prop_assert_eq!(report.replayed_batches, batches.len());
        // Checkpoint and recover again: still identical, nothing replayed.
        persist::save_snapshot(&live, &dir, report.last_seq).unwrap();
        let (again, report2) = persist::recover(&dir).unwrap();
        prop_assert_eq!(state_lines(&again), state_lines(&live));
        prop_assert_eq!(report2.replayed_batches, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Round-trip through scan: what `append` writes, `scan_file` reads
    /// back verbatim.
    #[test]
    fn journal_scan_round_trips_ops(
        ops in proptest::collection::vec(op_strategy(), 0..8),
    ) {
        let dir = temp_dir("prop-scan");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.append("m", &ops).unwrap();
        }
        let scan = journal::scan_file(&Journal::path_in(&dir)).unwrap();
        prop_assert_eq!(scan.batches.len(), 1);
        prop_assert_eq!(&scan.batches[0].ops, &ops);
        prop_assert_eq!(scan.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
