//! Semi-naive forward chaining: materializes derived triples into a
//! separate index (the paper's "semantic index").
//!
//! The derived index never contains asserted triples, so unioning base and
//! derived is duplicate-free by construction. The engine is *semi-naive*: in
//! every round, each rule is evaluated once per body-atom position, with that
//! atom restricted to the previous round's delta — so work is proportional to
//! new facts, not to the whole graph, after the first round.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use mdw_rdf::dict::{Dictionary, TermId};
use mdw_rdf::frozen::FrozenIndex;
use mdw_rdf::index::TripleIndex;
use mdw_rdf::store::Graph;
use mdw_rdf::triple::{Triple, TriplePattern};

use crate::rule::{Rule, RuleAtom, RuleTerm};
use crate::rulebase::Rulebase;

/// Statistics from a materialization run.
#[derive(Debug, Clone, Default)]
pub struct MaterializeStats {
    /// Number of semi-naive rounds until fixpoint.
    pub rounds: usize,
    /// Total derived triples.
    pub derived: usize,
    /// Derived-triple counts per rule name.
    pub per_rule: BTreeMap<&'static str, usize>,
}

/// The result of materializing a rulebase over a base graph: the entailment
/// index plus run statistics.
#[derive(Debug, Clone, Default)]
pub struct Materialization {
    derived: TripleIndex,
    stats: MaterializeStats,
    /// Cached frozen form of `derived`, rebuilt lazily after each extension.
    frozen: OnceLock<Arc<FrozenIndex>>,
}

impl Materialization {
    /// Runs the rulebase over the base graph to fixpoint.
    pub fn materialize(base: &Graph, rulebase: &Rulebase, dict: &Dictionary) -> Self {
        let mut m = Materialization::default();
        let delta: Vec<Triple> = base.iter().collect();
        m.run(base, rulebase, dict, delta);
        m
    }

    /// Incrementally extends an existing materialization after `new_facts`
    /// have been inserted into `base`. Only consequences of the new facts
    /// (transitively) are computed.
    pub fn extend(
        &mut self,
        base: &Graph,
        rulebase: &Rulebase,
        dict: &Dictionary,
        new_facts: &[Triple],
    ) {
        // A newly asserted fact may already have been *derived* — it moves
        // from the index to the base, preserving the invariant that the two
        // are disjoint (the entailed view's union scans rely on it).
        self.frozen.take();
        for &t in new_facts {
            self.derived.remove(t);
        }
        self.run(base, rulebase, dict, new_facts.to_vec());
        self.stats.derived = self.derived.len();
    }

    /// The entailment index (derived triples only).
    pub fn derived(&self) -> &TripleIndex {
        &self.derived
    }

    /// The frozen (columnar) form of the entailment index, built once per
    /// extension and cached. This is what query snapshots scan.
    pub fn frozen(&self) -> &FrozenIndex {
        self.frozen_arc()
    }

    /// The shared handle of the frozen entailment index, for owning
    /// snapshots handed to worker threads.
    pub fn frozen_arc(&self) -> &Arc<FrozenIndex> {
        self.frozen
            .get_or_init(|| Arc::new(FrozenIndex::from_index(&self.derived)))
    }

    /// Run statistics.
    pub fn stats(&self) -> &MaterializeStats {
        &self.stats
    }

    fn run(&mut self, base: &Graph, rulebase: &Rulebase, dict: &Dictionary, mut delta: Vec<Triple>) {
        if rulebase.is_empty() {
            return;
        }
        while !delta.is_empty() {
            self.stats.rounds += 1;
            let mut new_delta: Vec<Triple> = Vec::new();
            for rule in &rulebase.rules {
                for delta_pos in 0..rule.body.len() {
                    self.eval_rule(base, dict, rule, delta_pos, &delta, &mut new_delta);
                }
            }
            delta = new_delta;
        }
        self.stats.derived = self.derived.len();
    }

    /// Evaluates one rule with body atom `delta_pos` restricted to the delta.
    fn eval_rule(
        &mut self,
        base: &Graph,
        dict: &Dictionary,
        rule: &Rule,
        delta_pos: usize,
        delta: &[Triple],
        new_delta: &mut Vec<Triple>,
    ) {
        let mut bindings = vec![None; rule.var_count()];
        let delta_atom = rule.body[delta_pos];
        for &t in delta {
            bindings.iter_mut().for_each(|b| *b = None);
            if !unify(delta_atom, t, &mut bindings) {
                continue;
            }
            let rest: Vec<RuleAtom> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != delta_pos)
                .map(|(_, a)| *a)
                .collect();
            self.join_rest(base, dict, rule, &rest, 0, &mut bindings, new_delta);
        }
    }

    /// Joins remaining body atoms depth-first; on a full match, emits the
    /// head triple if it is well-formed and new.
    #[allow(clippy::too_many_arguments)]
    fn join_rest(
        &mut self,
        base: &Graph,
        dict: &Dictionary,
        rule: &Rule,
        rest: &[RuleAtom],
        pos: usize,
        bindings: &mut Vec<Option<TermId>>,
        new_delta: &mut Vec<Triple>,
    ) {
        if pos == rest.len() {
            self.emit_head(base, dict, rule, bindings, new_delta);
            return;
        }
        let atom = rest[pos];
        let pattern = TriplePattern {
            s: atom.s.resolve(bindings),
            p: atom.p.resolve(bindings),
            o: atom.o.resolve(bindings),
        };
        // Scan base and derived; they are disjoint by construction.
        let matches: Vec<Triple> = base
            .scan(pattern)
            .chain(self.derived.scan(pattern))
            .collect();
        for t in matches {
            let saved = bindings.clone();
            if unify(atom, t, bindings) {
                self.join_rest(base, dict, rule, rest, pos + 1, bindings, new_delta);
            }
            *bindings = saved;
        }
    }

    fn emit_head(
        &mut self,
        base: &Graph,
        dict: &Dictionary,
        rule: &Rule,
        bindings: &[Option<TermId>],
        new_delta: &mut Vec<Triple>,
    ) {
        let (Some(s), Some(p), Some(o)) = (
            rule.head.s.resolve(bindings),
            rule.head.p.resolve(bindings),
            rule.head.o.resolve(bindings),
        ) else {
            return; // range restriction makes this unreachable, but be safe
        };
        // RDF well-formedness of derived triples: no literal subjects, no
        // non-IRI predicates (can arise from rdfs3-range on literal objects).
        match dict.term(s) {
            Some(term) if term.is_subject_capable() => {}
            _ => return,
        }
        match dict.term(p) {
            Some(term) if term.is_iri() => {}
            _ => return,
        }
        let t = Triple::new(s, p, o);
        if base.contains(t) || self.derived.contains(t) {
            return;
        }
        self.derived.insert(t);
        *self.stats.per_rule.entry(rule.name).or_insert(0) += 1;
        new_delta.push(t);
    }
}

/// Unifies an atom against a concrete triple, extending `bindings`.
/// Returns `false` (leaving bindings partially updated — callers save and
/// restore) when a constant or an already-bound variable disagrees.
fn unify(atom: RuleAtom, t: Triple, bindings: &mut [Option<TermId>]) -> bool {
    unify_pos(atom.s, t.s, bindings)
        && unify_pos(atom.p, t.p, bindings)
        && unify_pos(atom.o, t.o, bindings)
}

fn unify_pos(rt: RuleTerm, id: TermId, bindings: &mut [Option<TermId>]) -> bool {
    match rt {
        RuleTerm::Const(c) => c == id,
        RuleTerm::Var(v) => match bindings[v as usize] {
            Some(bound) => bound == id,
            None => {
                bindings[v as usize] = Some(id);
                true
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdw_rdf::store::Store;
    use mdw_rdf::term::Term;
    use mdw_rdf::vocab;

    /// Builds a store with a model `"m"` and interns the OWLPRIME rulebase.
    fn setup() -> (Store, Rulebase) {
        let mut store = Store::new();
        store.create_model("m").unwrap();
        let rb = Rulebase::owlprime(store.dict_mut());
        (store, rb)
    }

    fn insert(store: &mut Store, s: &str, p: &str, o: &str) {
        store
            .insert("m", &Term::iri(s), &Term::iri(p), &Term::iri(o))
            .unwrap();
    }

    fn derived_contains(store: &Store, m: &Materialization, s: &str, p: &str, o: &str) -> bool {
        let t = Triple::new(
            store.encode(&Term::iri(s)).unwrap(),
            store.encode(&Term::iri(p)).unwrap(),
            store.encode(&Term::iri(o)).unwrap(),
        );
        m.derived().contains(t)
    }

    #[test]
    fn subclass_transitivity_and_type_inheritance() {
        let (mut store, rb) = setup();
        // Individual ⊑ Party ⊑ LegalEntity; john : Individual.
        insert(&mut store, "Individual", vocab::rdfs::SUB_CLASS_OF, "Party");
        insert(&mut store, "Party", vocab::rdfs::SUB_CLASS_OF, "LegalEntity");
        insert(&mut store, "john", vocab::rdf::TYPE, "Individual");

        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        assert!(derived_contains(&store, &m, "Individual", vocab::rdfs::SUB_CLASS_OF, "LegalEntity"));
        assert!(derived_contains(&store, &m, "john", vocab::rdf::TYPE, "Party"));
        assert!(derived_contains(&store, &m, "john", vocab::rdf::TYPE, "LegalEntity"));
    }

    #[test]
    fn deep_subclass_chain_closes() {
        let (mut store, rb) = setup();
        for i in 0..10 {
            insert(
                &mut store,
                &format!("C{i}"),
                vocab::rdfs::SUB_CLASS_OF,
                &format!("C{}", i + 1),
            );
        }
        insert(&mut store, "x", vocab::rdf::TYPE, "C0");
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        // x must be typed with every class up the chain.
        for i in 1..=10 {
            assert!(
                derived_contains(&store, &m, "x", vocab::rdf::TYPE, &format!("C{i}")),
                "missing x : C{i}"
            );
        }
        // Transitive closure of an 11-node chain: C(i)⊑C(j) for i<j, minus
        // the 10 asserted edges.
        let closure_edges = 11 * 10 / 2 - 10;
        let typed_edges = 10;
        assert_eq!(m.derived().len(), closure_edges + typed_edges);
    }

    #[test]
    fn subproperty_inheritance() {
        let (mut store, rb) = setup();
        insert(&mut store, "hasFirstName", vocab::rdfs::SUB_PROPERTY_OF, "hasName");
        store
            .insert(
                "m",
                &Term::iri("john"),
                &Term::iri("hasFirstName"),
                &Term::plain("John"),
            )
            .unwrap();
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        let t = Triple::new(
            store.encode(&Term::iri("john")).unwrap(),
            store.encode(&Term::iri("hasName")).unwrap(),
            store.encode(&Term::plain("John")).unwrap(),
        );
        assert!(m.derived().contains(t));
    }

    #[test]
    fn domain_and_range_typing() {
        let (mut store, rb) = setup();
        insert(&mut store, "hasFirstName", vocab::rdfs::DOMAIN, "Individual");
        insert(&mut store, "worksFor", vocab::rdfs::RANGE, "Institution");
        store
            .insert(
                "m",
                &Term::iri("john"),
                &Term::iri("hasFirstName"),
                &Term::plain("John"),
            )
            .unwrap();
        insert(&mut store, "john", "worksFor", "acme");
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        assert!(derived_contains(&store, &m, "john", vocab::rdf::TYPE, "Individual"));
        assert!(derived_contains(&store, &m, "acme", vocab::rdf::TYPE, "Institution"));
    }

    #[test]
    fn range_never_types_literals() {
        let (mut store, rb) = setup();
        insert(&mut store, "hasName", vocab::rdfs::RANGE, "Name");
        store
            .insert("m", &Term::iri("john"), &Term::iri("hasName"), &Term::plain("John"))
            .unwrap();
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        // "John" rdf:type Name would have a literal subject — must be absent.
        let lit = store.encode(&Term::plain("John")).unwrap();
        let ty = store.encode(&Term::iri(vocab::rdf::TYPE)).unwrap();
        assert_eq!(
            m.derived().scan(TriplePattern::with_sp(lit, ty)).count(),
            0
        );
    }

    #[test]
    fn symmetric_property() {
        let (mut store, rb) = setup();
        // The paper's example: isRelatedTo is symmetric.
        insert(&mut store, "isRelatedTo", vocab::rdf::TYPE, vocab::owl::SYMMETRIC_PROPERTY);
        insert(&mut store, "a", "isRelatedTo", "b");
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        assert!(derived_contains(&store, &m, "b", "isRelatedTo", "a"));
    }

    #[test]
    fn transitive_property_closes_chain() {
        let (mut store, rb) = setup();
        insert(&mut store, "feeds", vocab::rdf::TYPE, vocab::owl::TRANSITIVE_PROPERTY);
        insert(&mut store, "a", "feeds", "b");
        insert(&mut store, "b", "feeds", "c");
        insert(&mut store, "c", "feeds", "d");
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        assert!(derived_contains(&store, &m, "a", "feeds", "c"));
        assert!(derived_contains(&store, &m, "a", "feeds", "d"));
        assert!(derived_contains(&store, &m, "b", "feeds", "d"));
    }

    #[test]
    fn inverse_of_both_directions() {
        let (mut store, rb) = setup();
        insert(&mut store, "feeds", vocab::owl::INVERSE_OF, "isFedBy");
        insert(&mut store, "a", "feeds", "b");
        insert(&mut store, "c", "isFedBy", "d");
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        assert!(derived_contains(&store, &m, "b", "isFedBy", "a"));
        assert!(derived_contains(&store, &m, "d", "feeds", "c"));
    }

    #[test]
    fn inverse_over_literal_object_never_derives_literal_subject() {
        let (mut store, rb) = setup();
        insert(&mut store, "hasLabel", vocab::owl::INVERSE_OF, "isLabelOf");
        store
            .insert("m", &Term::iri("x"), &Term::iri("hasLabel"), &Term::plain("a label"))
            .unwrap();
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        // "a label" isLabelOf x would have a literal subject — must be absent.
        let lit = store.encode(&Term::plain("a label")).unwrap();
        assert_eq!(
            m.derived().scan(TriplePattern::with_s(lit)).count(),
            0,
            "derived a literal-subject triple"
        );
    }

    #[test]
    fn symmetric_over_literal_object_is_skipped() {
        let (mut store, rb) = setup();
        insert(&mut store, "alias", vocab::rdf::TYPE, vocab::owl::SYMMETRIC_PROPERTY);
        store
            .insert("m", &Term::iri("x"), &Term::iri("alias"), &Term::plain("nickname"))
            .unwrap();
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        let lit = store.encode(&Term::plain("nickname")).unwrap();
        assert_eq!(m.derived().scan(TriplePattern::with_s(lit)).count(), 0);
    }

    #[test]
    fn equivalent_class_gives_mutual_membership() {
        let (mut store, rb) = setup();
        insert(&mut store, "Customer", vocab::owl::EQUIVALENT_CLASS, "Client");
        insert(&mut store, "x", vocab::rdf::TYPE, "Customer");
        insert(&mut store, "y", vocab::rdf::TYPE, "Client");
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        assert!(derived_contains(&store, &m, "x", vocab::rdf::TYPE, "Client"));
        assert!(derived_contains(&store, &m, "y", vocab::rdf::TYPE, "Customer"));
    }

    #[test]
    fn same_as_copies_statements() {
        let (mut store, rb) = setup();
        insert(&mut store, "cust_42", vocab::owl::SAME_AS, "partner_42");
        insert(&mut store, "cust_42", "locatedIn", "Zurich");
        insert(&mut store, "hq", "owns", "partner_42");
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        assert!(derived_contains(&store, &m, "partner_42", vocab::owl::SAME_AS, "cust_42"));
        assert!(derived_contains(&store, &m, "partner_42", "locatedIn", "Zurich"));
        assert!(derived_contains(&store, &m, "hq", "owns", "cust_42"));
    }

    #[test]
    fn fixpoint_is_idempotent() {
        let (mut store, rb) = setup();
        insert(&mut store, "A", vocab::rdfs::SUB_CLASS_OF, "B");
        insert(&mut store, "B", vocab::rdfs::SUB_CLASS_OF, "C");
        insert(&mut store, "x", vocab::rdf::TYPE, "A");
        let m1 = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        // Re-materializing a graph that already includes the derived triples
        // derives nothing new beyond them.
        let mut enriched = store.model("m").unwrap().clone();
        for t in m1.derived().iter() {
            enriched.insert(t);
        }
        let m2 = Materialization::materialize(&enriched, &rb, store.dict());
        assert_eq!(m2.derived().len(), 0);
    }

    #[test]
    fn empty_rulebase_derives_nothing() {
        let (mut store, _) = setup();
        insert(&mut store, "A", vocab::rdfs::SUB_CLASS_OF, "B");
        let m = Materialization::materialize(
            store.model("m").unwrap(),
            &Rulebase::empty(),
            store.dict(),
        );
        assert_eq!(m.derived().len(), 0);
        assert_eq!(m.stats().rounds, 0);
    }

    #[test]
    fn incremental_extend_matches_full_rematerialization() {
        let (mut store, rb) = setup();
        insert(&mut store, "A", vocab::rdfs::SUB_CLASS_OF, "B");
        insert(&mut store, "x", vocab::rdf::TYPE, "A");
        let mut m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());

        // New release adds a superclass on top.
        insert(&mut store, "B", vocab::rdfs::SUB_CLASS_OF, "C");
        let new = Triple::new(
            store.encode(&Term::iri("B")).unwrap(),
            store.encode(&Term::iri(vocab::rdfs::SUB_CLASS_OF)).unwrap(),
            store.encode(&Term::iri("C")).unwrap(),
        );
        m.extend(store.model("m").unwrap(), &rb, store.dict(), &[new]);

        let full = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        let inc: Vec<_> = m.derived().iter().collect();
        let fl: Vec<_> = full.derived().iter().collect();
        assert_eq!(inc, fl);
        assert!(derived_contains(&store, &m, "x", vocab::rdf::TYPE, "C"));
    }

    #[test]
    fn stats_per_rule_accounting() {
        let (mut store, rb) = setup();
        insert(&mut store, "A", vocab::rdfs::SUB_CLASS_OF, "B");
        insert(&mut store, "B", vocab::rdfs::SUB_CLASS_OF, "C");
        insert(&mut store, "x", vocab::rdf::TYPE, "A");
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        let stats = m.stats();
        assert_eq!(stats.derived, m.derived().len());
        assert!(stats.rounds >= 2);
        assert_eq!(
            stats.per_rule.values().sum::<usize>(),
            stats.derived,
            "per-rule counts must sum to total"
        );
        assert!(stats.per_rule.contains_key("rdfs11-subclass-transitivity"));
        assert!(stats.per_rule.contains_key("rdfs9-type-inheritance"));
    }
}
