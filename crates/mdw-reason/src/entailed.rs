//! The entailment-aware graph view.
//!
//! [`EntailedGraph`] unions a base graph with the derived triples of a
//! [`Materialization`](crate::engine::Materialization). It implements
//! [`TripleSource`], so the SPARQL executor can run over it exactly as it
//! runs over a plain graph — this is what "the query references the OWL
//! index" means in the paper: same query shape, denser graph.

use mdw_rdf::index::TripleIndex;
use mdw_rdf::store::{Graph, TripleSource};
use mdw_rdf::triple::{Triple, TriplePattern};

/// A read-only union of a base graph and an entailment index.
///
/// The two are disjoint by construction (the engine never stores an asserted
/// triple in the derived index), so chained scans yield no duplicates.
#[derive(Debug, Clone, Copy)]
pub struct EntailedGraph<'a> {
    base: &'a Graph,
    derived: &'a TripleIndex,
}

impl<'a> EntailedGraph<'a> {
    /// Creates the view.
    pub fn new(base: &'a Graph, derived: &'a TripleIndex) -> Self {
        EntailedGraph { base, derived }
    }

    /// The asserted-facts part.
    pub fn base(&self) -> &'a Graph {
        self.base
    }

    /// The derived part (the semantic index).
    pub fn derived(&self) -> &'a TripleIndex {
        self.derived
    }

    /// Pattern scan over base ∪ derived.
    pub fn scan(&self, pattern: TriplePattern) -> impl Iterator<Item = Triple> + 'a {
        self.base.scan(pattern).chain(self.derived.scan(pattern))
    }

    /// Total triple count (base + derived).
    pub fn len(&self) -> usize {
        self.base.len() + self.derived.len()
    }

    /// True if both parts are empty.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.derived.is_empty()
    }

    /// Whether the triple is asserted or derived.
    pub fn contains(&self, t: Triple) -> bool {
        self.base.contains(t) || self.derived.contains(t)
    }
}

impl TripleSource for EntailedGraph<'_> {
    fn scan_pattern(&self, pattern: TriplePattern) -> Box<dyn Iterator<Item = Triple> + '_> {
        Box::new(self.base.scan(pattern).chain(self.derived.scan(pattern)))
    }

    fn contains_triple(&self, t: Triple) -> bool {
        self.contains(t)
    }

    fn estimate(&self, pattern: TriplePattern, cap: usize) -> usize {
        let base = self.base.index().count(pattern, Some(cap));
        if base >= cap {
            return base;
        }
        base + self.derived.count(pattern, Some(cap - base))
    }

    fn len_triples(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Materialization;
    use crate::rulebase::Rulebase;
    use mdw_rdf::store::Store;
    use mdw_rdf::term::Term;
    use mdw_rdf::vocab;

    fn setup() -> (Store, Materialization) {
        let mut store = Store::new();
        store.create_model("m").unwrap();
        let rb = Rulebase::owlprime(store.dict_mut());
        for (s, p, o) in [
            ("Individual", vocab::rdfs::SUB_CLASS_OF, "Party"),
            ("john", vocab::rdf::TYPE, "Individual"),
        ] {
            store
                .insert("m", &Term::iri(s), &Term::iri(p), &Term::iri(o))
                .unwrap();
        }
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        (store, m)
    }

    #[test]
    fn view_sees_base_and_derived() {
        let (store, m) = setup();
        let g = store.model("m").unwrap();
        let view = EntailedGraph::new(g, m.derived());

        let john = store.encode(&Term::iri("john")).unwrap();
        let ty = store.encode(&Term::iri(vocab::rdf::TYPE)).unwrap();
        let types: Vec<_> = view
            .scan(TriplePattern::with_sp(john, ty))
            .map(|t| t.o)
            .collect();
        // Asserted Individual + derived Party.
        assert_eq!(types.len(), 2);
        assert!(view.len() > g.len());
    }

    #[test]
    fn base_only_scan_misses_derived() {
        let (store, m) = setup();
        let g = store.model("m").unwrap();
        let john = store.encode(&Term::iri("john")).unwrap();
        let ty = store.encode(&Term::iri(vocab::rdf::TYPE)).unwrap();
        let party = store.encode(&Term::iri("Party")).unwrap();
        let derived_triple = mdw_rdf::triple::Triple::new(john, ty, party);
        assert!(!g.contains(derived_triple));
        let view = EntailedGraph::new(g, m.derived());
        assert!(view.contains(derived_triple));
    }

    #[test]
    fn no_duplicates_in_union_scan() {
        let (store, m) = setup();
        let g = store.model("m").unwrap();
        let view = EntailedGraph::new(g, m.derived());
        let mut all: Vec<_> = view.scan(TriplePattern::any()).collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    fn estimate_caps() {
        let (store, m) = setup();
        let g = store.model("m").unwrap();
        let view = EntailedGraph::new(g, m.derived());
        assert_eq!(view.estimate(TriplePattern::any(), 1), 1);
        assert_eq!(view.estimate(TriplePattern::any(), 1000), view.len());
    }
}
