//! The entailment-aware graph view.
//!
//! [`EntailedGraph`] unions a frozen base graph with the frozen derived
//! triples of a [`Materialization`](crate::engine::Materialization). It
//! implements [`TripleSource`], so the SPARQL executor can run over it
//! exactly as it runs over a plain graph — this is what "the query
//! references the OWL index" means in the paper: same query shape, denser
//! graph. Both sides are immutable sorted columns, so a pattern scan is two
//! contiguous slice runs chained at scan time, with no locking, boxing, or
//! allocation.

use std::sync::Arc;

use mdw_rdf::frozen::{FrozenGraph, FrozenIndex};
use mdw_rdf::store::{Scan, TripleSource};
use mdw_rdf::triple::{Triple, TriplePattern};

/// A read-only union of a frozen base graph and a frozen entailment index.
///
/// The two are disjoint by construction (the engine never stores an asserted
/// triple in the derived index), so chained scans yield no duplicates.
#[derive(Debug, Clone, Copy)]
pub struct EntailedGraph<'a> {
    base: &'a FrozenGraph,
    derived: &'a FrozenIndex,
}

impl<'a> EntailedGraph<'a> {
    /// Creates the view.
    pub fn new(base: &'a FrozenGraph, derived: &'a FrozenIndex) -> Self {
        EntailedGraph { base, derived }
    }

    /// The asserted-facts part.
    pub fn base(&self) -> &'a FrozenGraph {
        self.base
    }

    /// The derived part (the semantic index).
    pub fn derived(&self) -> &'a FrozenIndex {
        self.derived
    }

    /// Pattern scan over base ∪ derived: two frozen runs, chained.
    pub fn scan(&self, pattern: TriplePattern) -> Scan<'a> {
        Scan::Chained {
            first: self.base.scan(pattern),
            second: self.derived.run(pattern),
        }
    }

    /// Total triple count (base + derived).
    pub fn len(&self) -> usize {
        self.base.len() + self.derived.len()
    }

    /// True if both parts are empty.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.derived.is_empty()
    }

    /// Whether the triple is asserted or derived.
    pub fn contains(&self, t: Triple) -> bool {
        self.base.contains(t) || self.derived.contains(t)
    }
}

impl TripleSource for EntailedGraph<'_> {
    fn scan_pattern(&self, pattern: TriplePattern) -> Scan<'_> {
        self.scan(pattern)
    }

    fn contains_triple(&self, t: Triple) -> bool {
        self.contains(t)
    }

    fn estimate(&self, pattern: TriplePattern, cap: usize) -> usize {
        // Binary searches on both frozen sides; a stacked base answers with
        // its cheap merged-view upper bound instead of paying a merge.
        (self.base.estimate_upto(pattern, cap) + self.derived.count_exact(pattern)).min(cap)
    }

    fn len_triples(&self) -> usize {
        self.len()
    }
}

/// An owning, `Send + Sync` version of the entailed view: one frozen base
/// snapshot plus one frozen entailment index, both shared by `Arc`.
///
/// Worker threads (concurrent SPARQL scans, the `mdwh drill overload`
/// readers) each clone one of these for a few refcount bumps and evaluate
/// against it with zero contention.
#[derive(Debug, Clone)]
pub struct EntailedSnapshot {
    base: Arc<FrozenGraph>,
    derived: Arc<FrozenIndex>,
}

impl EntailedSnapshot {
    /// Bundles a base snapshot with its entailment index.
    pub fn new(base: Arc<FrozenGraph>, derived: Arc<FrozenIndex>) -> Self {
        EntailedSnapshot { base, derived }
    }

    /// The borrowed view for query evaluation.
    pub fn view(&self) -> EntailedGraph<'_> {
        EntailedGraph::new(&self.base, &self.derived)
    }

    /// The asserted-facts snapshot.
    pub fn base(&self) -> &Arc<FrozenGraph> {
        &self.base
    }

    /// The derived index.
    pub fn derived(&self) -> &Arc<FrozenIndex> {
        &self.derived
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Materialization;
    use crate::rulebase::Rulebase;
    use mdw_rdf::store::Store;
    use mdw_rdf::term::Term;
    use mdw_rdf::vocab;

    fn setup() -> (Store, Materialization) {
        let mut store = Store::new();
        store.create_model("m").unwrap();
        let rb = Rulebase::owlprime(store.dict_mut());
        for (s, p, o) in [
            ("Individual", vocab::rdfs::SUB_CLASS_OF, "Party"),
            ("john", vocab::rdf::TYPE, "Individual"),
        ] {
            store
                .insert("m", &Term::iri(s), &Term::iri(p), &Term::iri(o))
                .unwrap();
        }
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        (store, m)
    }

    #[test]
    fn view_sees_base_and_derived() {
        let (store, m) = setup();
        let g = store.model("m").unwrap().freeze();
        let view = EntailedGraph::new(&g, m.frozen());

        let john = store.encode(&Term::iri("john")).unwrap();
        let ty = store.encode(&Term::iri(vocab::rdf::TYPE)).unwrap();
        let types: Vec<_> = view
            .scan(TriplePattern::with_sp(john, ty))
            .map(|t| t.o)
            .collect();
        // Asserted Individual + derived Party.
        assert_eq!(types.len(), 2);
        assert!(view.len() > g.len());
    }

    #[test]
    fn base_only_scan_misses_derived() {
        let (store, m) = setup();
        let g = store.model("m").unwrap().freeze();
        let john = store.encode(&Term::iri("john")).unwrap();
        let ty = store.encode(&Term::iri(vocab::rdf::TYPE)).unwrap();
        let party = store.encode(&Term::iri("Party")).unwrap();
        let derived_triple = mdw_rdf::triple::Triple::new(john, ty, party);
        assert!(!g.contains(derived_triple));
        let view = EntailedGraph::new(&g, m.frozen());
        assert!(view.contains(derived_triple));
    }

    #[test]
    fn no_duplicates_in_union_scan() {
        let (store, m) = setup();
        let g = store.model("m").unwrap().freeze();
        let view = EntailedGraph::new(&g, m.frozen());
        let mut all: Vec<_> = view.scan(TriplePattern::any()).collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    fn estimate_caps() {
        let (store, m) = setup();
        let g = store.model("m").unwrap().freeze();
        let view = EntailedGraph::new(&g, m.frozen());
        assert_eq!(view.estimate(TriplePattern::any(), 1), 1);
        assert_eq!(view.estimate(TriplePattern::any(), 1000), view.len());
    }

    #[test]
    fn snapshot_view_is_send_and_owning() {
        let (store, m) = setup();
        let snap = EntailedSnapshot::new(
            store.model("m").unwrap().freeze(),
            std::sync::Arc::clone(m.frozen_arc()),
        );
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        assert_send_sync(&snap);
        let from_thread = std::thread::scope(|s| {
            let snap = snap.clone();
            s.spawn(move || snap.view().len()).join().unwrap()
        });
        assert_eq!(from_thread, snap.view().len());
    }
}
