//! # mdw-reason — rulebase inference for the meta-data warehouse
//!
//! The paper loads its meta-data graph into Oracle's semantic store and
//! builds *semantic indexes* with the `OWLPRIME` rulebase: the indexes "read
//! all relationships (meta-data schema and hierarchies) and apply them on the
//! basic facts. The resulting derived RDF triples … are included in the
//! indexes. In fact, the indexes add additional edges to the meta-data graph
//! and therefore increase its density." Crucially, "these derived RDF triples
//! do only exist through the indexes" — a query that does not name the
//! rulebase sees only the asserted facts.
//!
//! This crate reproduces that design:
//!
//! * [`rule::Rule`] — datalog-style rules over triple patterns,
//! * [`rulebase::Rulebase`] — the RDFS core plus the OWLPRIME subset the
//!   paper relies on (subclass/subproperty transitivity and inheritance,
//!   domain/range, symmetric/transitive/inverse properties, equivalence,
//!   `owl:sameAs`),
//! * [`engine`] — semi-naive forward chaining that materializes derived
//!   triples into a separate [`TripleIndex`](mdw_rdf::TripleIndex) (the
//!   "semantic index"), with incremental extension when new facts arrive,
//! * [`entailed::EntailedGraph`] — a [`TripleSource`](mdw_rdf::TripleSource)
//!   view unioning a base graph with its entailment index, which is what a
//!   query gets when it opts into `SEM_RULEBASES('OWLPRIME')`.

pub mod engine;
pub mod entailed;
pub mod rule;
pub mod rulebase;

pub use engine::{Materialization, MaterializeStats};
pub use entailed::{EntailedGraph, EntailedSnapshot};
pub use rule::{Rule, RuleAtom, RuleTerm};
pub use rulebase::Rulebase;
