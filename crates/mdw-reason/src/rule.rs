//! Datalog-style rules over triple patterns.
//!
//! A rule has a body of [`RuleAtom`]s and a single head atom. Variables are
//! small integers scoped to the rule; constants are dictionary-encoded term
//! ids, so a rulebase is always built against a specific
//! [`Dictionary`](mdw_rdf::Dictionary).

use mdw_rdf::dict::TermId;

/// A position in a rule atom: either a rule-scoped variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleTerm {
    /// A variable, identified by a small rule-local index.
    Var(u8),
    /// A constant term id.
    Const(TermId),
}

impl RuleTerm {
    /// Resolves this rule term under a binding environment.
    /// `None` means the variable is still free.
    pub fn resolve(self, bindings: &[Option<TermId>]) -> Option<TermId> {
        match self {
            RuleTerm::Const(id) => Some(id),
            RuleTerm::Var(v) => bindings.get(v as usize).copied().flatten(),
        }
    }
}

/// One triple pattern in a rule body or head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RuleAtom {
    /// Subject position.
    pub s: RuleTerm,
    /// Predicate position.
    pub p: RuleTerm,
    /// Object position.
    pub o: RuleTerm,
}

impl RuleAtom {
    /// Creates an atom.
    pub fn new(s: RuleTerm, p: RuleTerm, o: RuleTerm) -> Self {
        RuleAtom { s, p, o }
    }

    /// The highest variable index used in this atom, if any.
    pub fn max_var(&self) -> Option<u8> {
        [self.s, self.p, self.o]
            .into_iter()
            .filter_map(|t| match t {
                RuleTerm::Var(v) => Some(v),
                RuleTerm::Const(_) => None,
            })
            .max()
    }
}

/// An inference rule: `body ⟹ head`.
///
/// All head variables must occur in the body (range restriction), which
/// [`Rule::new`] enforces — an unrestricted head would derive unbound
/// triples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Rule name, for tracing and statistics (e.g. `"rdfs9-type-inheritance"`).
    pub name: &'static str,
    /// The body atoms, joined conjunctively.
    pub body: Vec<RuleAtom>,
    /// The derived atom.
    pub head: RuleAtom,
}

impl Rule {
    /// Creates a rule, checking range restriction.
    ///
    /// # Panics
    /// Panics if a head variable does not appear in the body — that is a
    /// programming error in rulebase construction, not a runtime condition.
    pub fn new(name: &'static str, body: Vec<RuleAtom>, head: RuleAtom) -> Self {
        let mut body_vars = [false; 256];
        for atom in &body {
            for t in [atom.s, atom.p, atom.o] {
                if let RuleTerm::Var(v) = t {
                    body_vars[v as usize] = true;
                }
            }
        }
        for t in [head.s, head.p, head.o] {
            if let RuleTerm::Var(v) = t {
                assert!(
                    body_vars[v as usize],
                    "rule {name}: head variable ?{v} not bound in body"
                );
            }
        }
        assert!(!body.is_empty(), "rule {name}: empty body");
        Rule { name, body, head }
    }

    /// Number of variables this rule needs in its binding environment.
    pub fn var_count(&self) -> usize {
        self.body
            .iter()
            .chain(std::iter::once(&self.head))
            .filter_map(RuleAtom::max_var)
            .max()
            .map(|v| v as usize + 1)
            .unwrap_or(0)
    }
}

/// Shorthand constructors used by the rulebase builder.
pub mod dsl {
    use super::*;

    /// A variable rule term.
    pub fn v(i: u8) -> RuleTerm {
        RuleTerm::Var(i)
    }

    /// A constant rule term.
    pub fn c(id: TermId) -> RuleTerm {
        RuleTerm::Const(id)
    }

    /// An atom.
    pub fn atom(s: RuleTerm, p: RuleTerm, o: RuleTerm) -> RuleAtom {
        RuleAtom::new(s, p, o)
    }
}

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;

    #[test]
    fn resolve_const_and_var() {
        let bindings = vec![Some(TermId(7)), None];
        assert_eq!(c(TermId(3)).resolve(&bindings), Some(TermId(3)));
        assert_eq!(v(0).resolve(&bindings), Some(TermId(7)));
        assert_eq!(v(1).resolve(&bindings), None);
        assert_eq!(v(5).resolve(&bindings), None);
    }

    #[test]
    fn var_count() {
        let r = Rule::new(
            "t",
            vec![atom(v(0), c(TermId(1)), v(2))],
            atom(v(2), c(TermId(1)), v(0)),
        );
        assert_eq!(r.var_count(), 3);
    }

    #[test]
    #[should_panic(expected = "head variable")]
    fn unbound_head_var_panics() {
        Rule::new(
            "bad",
            vec![atom(v(0), c(TermId(1)), v(1))],
            atom(v(0), c(TermId(1)), v(9)),
        );
    }

    #[test]
    #[should_panic(expected = "empty body")]
    fn empty_body_panics() {
        Rule::new("bad", vec![], atom(c(TermId(0)), c(TermId(1)), c(TermId(2))));
    }

    #[test]
    fn max_var() {
        assert_eq!(atom(v(1), c(TermId(0)), v(4)).max_var(), Some(4));
        assert_eq!(atom(c(TermId(0)), c(TermId(1)), c(TermId(2))).max_var(), None);
    }
}
