//! The OWLPRIME-subset rulebase.
//!
//! Oracle's `OWLPRIME` is a pragmatic OWL fragment chosen for scalable
//! forward-chaining. The paper's warehouse relies on exactly the parts
//! reproduced here: class/property hierarchies (RDFS), domain typing, and the
//! OWL property characteristics it calls out (`isRelatedTo` is symmetric;
//! mapping-chain reasoning benefits from transitivity and inverses).

use mdw_rdf::dict::Dictionary;
use mdw_rdf::term::Term;
use mdw_rdf::vocab;

use crate::rule::dsl::{atom, c, v};
use crate::rule::Rule;

/// A named collection of inference rules, bound to a dictionary.
#[derive(Debug, Clone)]
pub struct Rulebase {
    /// Rulebase name — the paper's queries say `SEM_RULEBASES('OWLPRIME')`.
    pub name: &'static str,
    /// The rules.
    pub rules: Vec<Rule>,
}

impl Rulebase {
    /// Builds the RDFS-only rulebase (hierarchy + domain/range reasoning).
    pub fn rdfs(dict: &mut Dictionary) -> Self {
        let sub_class = c(dict.intern(&Term::iri(vocab::rdfs::SUB_CLASS_OF)));
        let sub_prop = c(dict.intern(&Term::iri(vocab::rdfs::SUB_PROPERTY_OF)));
        let domain = c(dict.intern(&Term::iri(vocab::rdfs::DOMAIN)));
        let range = c(dict.intern(&Term::iri(vocab::rdfs::RANGE)));
        let ty = c(dict.intern(&Term::iri(vocab::rdf::TYPE)));

        let rules = vec![
            // rdfs11: subClassOf is transitive.
            Rule::new(
                "rdfs11-subclass-transitivity",
                vec![atom(v(0), sub_class, v(1)), atom(v(1), sub_class, v(2))],
                atom(v(0), sub_class, v(2)),
            ),
            // rdfs9: members of a subclass are members of the superclass.
            Rule::new(
                "rdfs9-type-inheritance",
                vec![atom(v(0), ty, v(1)), atom(v(1), sub_class, v(2))],
                atom(v(0), ty, v(2)),
            ),
            // rdfs5: subPropertyOf is transitive.
            Rule::new(
                "rdfs5-subproperty-transitivity",
                vec![atom(v(0), sub_prop, v(1)), atom(v(1), sub_prop, v(2))],
                atom(v(0), sub_prop, v(2)),
            ),
            // rdfs7: statements propagate up the property hierarchy.
            Rule::new(
                "rdfs7-subproperty-inheritance",
                vec![atom(v(0), v(1), v(2)), atom(v(1), sub_prop, v(3))],
                atom(v(0), v(3), v(2)),
            ),
            // rdfs2: domain typing.
            Rule::new(
                "rdfs2-domain",
                vec![atom(v(1), domain, v(3)), atom(v(0), v(1), v(2))],
                atom(v(0), ty, v(3)),
            ),
            // rdfs3: range typing. Restricted to IRI objects at evaluation
            // time is unnecessary here: literals never appear in subject
            // position of a derived rdf:type triple's *subject*, but v(2) is
            // the object; the engine filters literal-subject heads.
            Rule::new(
                "rdfs3-range",
                vec![atom(v(1), range, v(3)), atom(v(0), v(1), v(2))],
                atom(v(2), ty, v(3)),
            ),
        ];
        Rulebase { name: "RDFS", rules }
    }

    /// Builds the OWLPRIME-subset rulebase: RDFS plus the OWL property
    /// characteristics the paper's warehouse uses.
    pub fn owlprime(dict: &mut Dictionary) -> Self {
        let mut base = Self::rdfs(dict);

        let ty = c(dict.intern(&Term::iri(vocab::rdf::TYPE)));
        let sub_class = c(dict.intern(&Term::iri(vocab::rdfs::SUB_CLASS_OF)));
        let sub_prop = c(dict.intern(&Term::iri(vocab::rdfs::SUB_PROPERTY_OF)));
        let symmetric = c(dict.intern(&Term::iri(vocab::owl::SYMMETRIC_PROPERTY)));
        let transitive = c(dict.intern(&Term::iri(vocab::owl::TRANSITIVE_PROPERTY)));
        let inverse_of = c(dict.intern(&Term::iri(vocab::owl::INVERSE_OF)));
        let same_as = c(dict.intern(&Term::iri(vocab::owl::SAME_AS)));
        let eq_class = c(dict.intern(&Term::iri(vocab::owl::EQUIVALENT_CLASS)));
        let eq_prop = c(dict.intern(&Term::iri(vocab::owl::EQUIVALENT_PROPERTY)));

        base.rules.extend(vec![
            // owl: symmetric properties (the paper's isRelatedTo example).
            Rule::new(
                "owl-symmetric",
                vec![atom(v(1), ty, symmetric), atom(v(0), v(1), v(2))],
                atom(v(2), v(1), v(0)),
            ),
            // owl: transitive properties.
            Rule::new(
                "owl-transitive",
                vec![
                    atom(v(1), ty, transitive),
                    atom(v(0), v(1), v(2)),
                    atom(v(2), v(1), v(3)),
                ],
                atom(v(0), v(1), v(3)),
            ),
            // owl: inverseOf, both directions.
            Rule::new(
                "owl-inverse-fwd",
                vec![atom(v(1), inverse_of, v(3)), atom(v(0), v(1), v(2))],
                atom(v(2), v(3), v(0)),
            ),
            Rule::new(
                "owl-inverse-bwd",
                vec![atom(v(1), inverse_of, v(3)), atom(v(0), v(3), v(2))],
                atom(v(2), v(1), v(0)),
            ),
            // owl: equivalentClass ⟺ mutual subClassOf.
            Rule::new(
                "owl-eqclass-fwd",
                vec![atom(v(0), eq_class, v(1))],
                atom(v(0), sub_class, v(1)),
            ),
            Rule::new(
                "owl-eqclass-bwd",
                vec![atom(v(0), eq_class, v(1))],
                atom(v(1), sub_class, v(0)),
            ),
            // owl: equivalentProperty ⟺ mutual subPropertyOf.
            Rule::new(
                "owl-eqprop-fwd",
                vec![atom(v(0), eq_prop, v(1))],
                atom(v(0), sub_prop, v(1)),
            ),
            Rule::new(
                "owl-eqprop-bwd",
                vec![atom(v(0), eq_prop, v(1))],
                atom(v(1), sub_prop, v(0)),
            ),
            // owl:sameAs — symmetry, transitivity, and statement copying.
            Rule::new(
                "owl-sameas-symmetry",
                vec![atom(v(0), same_as, v(1))],
                atom(v(1), same_as, v(0)),
            ),
            Rule::new(
                "owl-sameas-transitivity",
                vec![atom(v(0), same_as, v(1)), atom(v(1), same_as, v(2))],
                atom(v(0), same_as, v(2)),
            ),
            Rule::new(
                "owl-sameas-subject",
                vec![atom(v(0), same_as, v(1)), atom(v(0), v(2), v(3))],
                atom(v(1), v(2), v(3)),
            ),
            Rule::new(
                "owl-sameas-object",
                vec![atom(v(0), same_as, v(1)), atom(v(2), v(3), v(0))],
                atom(v(2), v(3), v(1)),
            ),
        ]);
        base.name = "OWLPRIME";
        base
    }

    /// An empty rulebase — querying with it is equivalent to querying the
    /// asserted facts only.
    pub fn empty() -> Self {
        Rulebase { name: "NONE", rules: Vec::new() }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the rulebase has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdfs_has_six_rules() {
        let mut dict = Dictionary::new();
        assert_eq!(Rulebase::rdfs(&mut dict).len(), 6);
    }

    #[test]
    fn owlprime_extends_rdfs() {
        let mut dict = Dictionary::new();
        let rb = Rulebase::owlprime(&mut dict);
        assert_eq!(rb.name, "OWLPRIME");
        assert!(rb.len() > Rulebase::rdfs(&mut Dictionary::new()).len());
        // Every rule name is unique.
        let mut names: Vec<_> = rb.rules.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rb.len());
    }

    #[test]
    fn empty_rulebase() {
        assert!(Rulebase::empty().is_empty());
    }

    #[test]
    fn building_interns_vocabulary() {
        let mut dict = Dictionary::new();
        Rulebase::owlprime(&mut dict);
        assert!(dict.lookup(&Term::iri(vocab::rdfs::SUB_CLASS_OF)).is_some());
        assert!(dict.lookup(&Term::iri(vocab::owl::SYMMETRIC_PROPERTY)).is_some());
    }
}
