//! Property-based tests for the inference engine: soundness against a
//! transitive-closure oracle, monotonicity, fixpoint idempotence, and
//! incremental-vs-full equivalence.

use proptest::prelude::*;

use mdw_rdf::store::Store;
use mdw_rdf::term::Term;
use mdw_rdf::triple::Triple;
use mdw_rdf::vocab;
use mdw_reason::{Materialization, Rulebase};

/// A random ontology-ish graph: subclass edges over a small class pool plus
/// type edges from a small instance pool.
#[derive(Debug, Clone)]
struct RandomGraph {
    subclass: Vec<(u8, u8)>,
    types: Vec<(u8, u8)>,
}

fn random_graph() -> impl Strategy<Value = RandomGraph> {
    (
        proptest::collection::vec((0u8..8, 0u8..8), 0..16),
        proptest::collection::vec((0u8..6, 0u8..8), 0..10),
    )
        .prop_map(|(subclass, types)| RandomGraph { subclass, types })
}

fn class(i: u8) -> Term {
    Term::iri(format!("http://ex.org/C{i}"))
}

fn inst(i: u8) -> Term {
    Term::iri(format!("http://ex.org/x{i}"))
}

fn build(g: &RandomGraph) -> (Store, Rulebase) {
    let mut store = Store::new();
    store.create_model("m").unwrap();
    let rb = Rulebase::rdfs(store.dict_mut());
    for &(a, b) in &g.subclass {
        store
            .insert("m", &class(a), &Term::iri(vocab::rdfs::SUB_CLASS_OF), &class(b))
            .unwrap();
    }
    for &(x, c) in &g.types {
        store
            .insert("m", &inst(x), &Term::iri(vocab::rdf::TYPE), &class(c))
            .unwrap();
    }
    (store, rb)
}

/// Reference implementation: reflexive-free transitive closure of subclass
/// plus type inheritance, computed by Floyd–Warshall-style saturation.
#[allow(clippy::type_complexity)]
fn oracle(g: &RandomGraph) -> (Vec<(u8, u8)>, Vec<(u8, u8)>) {
    let mut sub = [[false; 8]; 8];
    for &(a, b) in &g.subclass {
        sub[a as usize][b as usize] = true;
    }
    for k in 0..8 {
        for i in 0..8 {
            for j in 0..8 {
                if sub[i][k] && sub[k][j] {
                    sub[i][j] = true;
                }
            }
        }
    }
    let mut types = [[false; 6]; 8];
    for &(x, c) in &g.types {
        types[c as usize][x as usize] = true;
    }
    let mut closed_types = types;
    for c in 0..8 {
        for d in 0..8 {
            if sub[c][d] {
                for x in 0..6 {
                    if types[c][x] {
                        closed_types[d][x] = true;
                    }
                }
            }
        }
    }
    let mut sub_pairs = Vec::new();
    for (i, row) in sub.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v {
                sub_pairs.push((i as u8, j as u8));
            }
        }
    }
    let mut type_pairs = Vec::new();
    for (c, row) in closed_types.iter().enumerate() {
        for (x, &v) in row.iter().enumerate() {
            if v {
                type_pairs.push((x as u8, c as u8));
            }
        }
    }
    (sub_pairs, type_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn closure_matches_oracle(g in random_graph()) {
        let (store, rb) = build(&g);
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        let graph = store.model("m").unwrap();
        let derived = m.derived();
        let entailed = |s: &Term, p: &str, o: &Term| -> bool {
            match (store.encode(s), store.encode(&Term::iri(p)), store.encode(o)) {
                (Some(s), Some(p), Some(o)) => {
                    let t = Triple::new(s, p, o);
                    graph.contains(t) || derived.contains(t)
                }
                _ => false,
            }
        };
        let (sub_pairs, type_pairs) = oracle(&g);
        // Completeness: every closure edge is entailed.
        for (a, b) in &sub_pairs {
            prop_assert!(
                entailed(&class(*a), vocab::rdfs::SUB_CLASS_OF, &class(*b)),
                "missing C{a} ⊑ C{b}"
            );
        }
        for (x, c) in &type_pairs {
            prop_assert!(
                entailed(&inst(*x), vocab::rdf::TYPE, &class(*c)),
                "missing x{x} : C{c}"
            );
        }
        // Soundness: every derived subclass/type triple is in the closure.
        let sub_p = store.encode(&Term::iri(vocab::rdfs::SUB_CLASS_OF));
        let ty_p = store.encode(&Term::iri(vocab::rdf::TYPE));
        for t in derived.iter() {
            let (s, p, o) = store.decode(t).unwrap();
            if Some(t.p) == sub_p {
                let a: u8 = s.label().trim_start_matches('C').parse().unwrap();
                let b: u8 = o.label().trim_start_matches('C').parse().unwrap();
                prop_assert!(sub_pairs.contains(&(a, b)), "unsound {a} ⊑ {b}");
            } else if Some(t.p) == ty_p {
                let x: u8 = s.label().trim_start_matches('x').parse().unwrap();
                let c: u8 = o.label().trim_start_matches('C').parse().unwrap();
                prop_assert!(type_pairs.contains(&(x, c)), "unsound x{x} : C{c}");
            } else {
                prop_assert!(false, "unexpected derived predicate {p}");
            }
        }
    }

    #[test]
    fn monotone_in_the_input(g in random_graph(), extra in random_graph()) {
        let (store_small, rb) = build(&g);
        let m_small =
            Materialization::materialize(store_small.model("m").unwrap(), &rb, store_small.dict());

        // The larger graph contains g plus extra.
        let merged = RandomGraph {
            subclass: [g.subclass.clone(), extra.subclass.clone()].concat(),
            types: [g.types.clone(), extra.types.clone()].concat(),
        };
        let (store_big, rb_big) = build(&merged);
        let m_big =
            Materialization::materialize(store_big.model("m").unwrap(), &rb_big, store_big.dict());

        // Every small-graph entailment survives (decoded comparison:
        // dictionaries differ between stores).
        for t in m_small.derived().iter() {
            let (s, p, o) = store_small.decode(t).unwrap();
            let (Some(s), Some(p), Some(o)) =
                (store_big.encode(s), store_big.encode(p), store_big.encode(o))
            else {
                prop_assert!(false, "term vanished in bigger store");
                unreachable!()
            };
            let t_big = Triple::new(s, p, o);
            prop_assert!(
                store_big.model("m").unwrap().contains(t_big) || m_big.derived().contains(t_big),
                "entailment lost when growing the graph"
            );
        }
    }

    #[test]
    fn fixpoint_is_idempotent(g in random_graph()) {
        let (store, rb) = build(&g);
        let m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        let mut enriched = store.model("m").unwrap().clone();
        for t in m.derived().iter() {
            enriched.insert(t);
        }
        let m2 = Materialization::materialize(&enriched, &rb, store.dict());
        prop_assert_eq!(m2.derived().len(), 0);
    }

    #[test]
    fn incremental_equals_full(g in random_graph(), split in 0usize..20) {
        // Insert a prefix, materialize, then extend with the rest —
        // the result must equal materializing everything at once.
        let all_triples: Vec<(Term, Term, Term)> = g
            .subclass
            .iter()
            .map(|&(a, b)| (class(a), Term::iri(vocab::rdfs::SUB_CLASS_OF), class(b)))
            .chain(
                g.types
                    .iter()
                    .map(|&(x, c)| (inst(x), Term::iri(vocab::rdf::TYPE), class(c))),
            )
            .collect();
        let split = split.min(all_triples.len());

        let mut store = Store::new();
        store.create_model("m").unwrap();
        let rb = Rulebase::rdfs(store.dict_mut());
        for (s, p, o) in &all_triples[..split] {
            store.insert("m", s, p, o).unwrap();
        }
        let mut m = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        let mut new_encoded = Vec::new();
        for (s, p, o) in &all_triples[split..] {
            if store.insert("m", s, p, o).unwrap() {
                new_encoded.push(Triple::new(
                    store.encode(s).unwrap(),
                    store.encode(p).unwrap(),
                    store.encode(o).unwrap(),
                ));
            }
        }
        m.extend(store.model("m").unwrap(), &rb, store.dict(), &new_encoded);

        let full = Materialization::materialize(store.model("m").unwrap(), &rb, store.dict());
        let inc: Vec<Triple> = m.derived().iter().collect();
        let fl: Vec<Triple> = full.derived().iter().collect();
        prop_assert_eq!(inc, fl);
    }
}
