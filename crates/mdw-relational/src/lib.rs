//! # mdw-relational — the fixed-schema baseline the paper argues against
//!
//! Section III: "One approach to manage data would be to construct a
//! relational data model from the diagram shown in Figure 1 following the
//! textbook approach of conceptual data modeling. … Clearly, this approach
//! would promise best performance and low operational cost … Unfortunately,
//! this approach is too rigid and it requires a major investment in
//! constructing a comprehensive meta-data schema."
//!
//! This crate implements that rejected alternative, so the reproduction can
//! *measure* the trade-off the paper only narrates:
//!
//! * [`schema`] — the fixed typed tables (applications, tables, columns,
//!   DWH items, mappings, roles, …) with the class rollups hard-coded into
//!   the application instead of stored as data,
//! * [`load`] — a loader that consumes the *same* RDF extracts the graph
//!   warehouse ingests; anything the fixed schema has no column for is
//!   **dropped and counted** — that drop count is the flexibility metric,
//! * [`search`] / [`lineage`] — the two services re-implemented against the
//!   fixed schema (they are faster, and that is the point: genericity has a
//!   price, rigidity has a different one),
//! * [`migration`] — the cost model of evolving the fixed schema: every new
//!   metadata kind costs DDL statements and row rewrites, where the graph
//!   needs none.

pub mod lineage;
pub mod load;
pub mod migration;
pub mod schema;
pub mod search;

pub use load::{load_extracts, RelLoadReport};
pub use migration::{Migration, MigrationReport};
pub use schema::{EntityRow, EntityTable, MappingRow, RelationalStore};
pub use search::{rel_search, RelSearchResults};
pub use lineage::{rel_lineage, RelLineageResult};
