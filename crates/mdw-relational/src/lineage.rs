//! Lineage against the fixed schema: a BFS/DFS over the mappings table.
//!
//! Semantically the same traversal as the graph warehouse's Section IV.B
//! service, driven by the adjacency indexes of the mappings table instead
//! of `isMappedTo` edges. Target filtering is by entity table / rollup
//! group rather than by (entailed) class membership.

use std::collections::{BTreeMap, BTreeSet};

use crate::schema::RelationalStore;

/// Traversal direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelDirection {
    /// Against the data flow (provenance).
    Upstream,
    /// Along the data flow (impact).
    Downstream,
}

/// A lineage request against the baseline.
#[derive(Debug, Clone)]
pub struct RelLineageRequest {
    /// Start entity id.
    pub start: String,
    /// Direction.
    pub direction: RelDirection,
    /// Targets must roll up into this group (e.g. `"Application"`).
    pub target_group: Option<String>,
    /// Hop limit.
    pub max_depth: usize,
    /// Path enumeration limit.
    pub max_paths: usize,
    /// Only traverse mappings whose condition contains this string.
    pub rule_condition_filter: Option<String>,
}

impl RelLineageRequest {
    /// Downstream request with default limits.
    pub fn downstream(start: impl Into<String>) -> Self {
        RelLineageRequest {
            start: start.into(),
            direction: RelDirection::Downstream,
            target_group: None,
            max_depth: 16,
            max_paths: 100_000,
            rule_condition_filter: None,
        }
    }

    /// Upstream request with default limits.
    pub fn upstream(start: impl Into<String>) -> Self {
        RelLineageRequest { direction: RelDirection::Upstream, ..Self::downstream(start) }
    }

    /// Restricts targets to a rollup group.
    pub fn to_group(mut self, group: impl Into<String>) -> Self {
        self.target_group = Some(group.into());
        self
    }

    /// Restricts traversal by rule condition.
    pub fn with_rule_filter(mut self, cond: impl Into<String>) -> Self {
        self.rule_condition_filter = Some(cond.into());
        self
    }
}

/// The traversal result.
#[derive(Debug, Clone)]
pub struct RelLineageResult {
    /// Qualifying endpoint ids → min distance.
    pub endpoints: BTreeMap<String, usize>,
    /// Enumerated simple paths (as id sequences, start exclusive).
    pub paths: Vec<Vec<String>>,
    /// Paths explored before filtering.
    pub paths_explored: usize,
}

/// Runs the traversal.
pub fn rel_lineage(store: &RelationalStore, request: &RelLineageRequest) -> RelLineageResult {
    let mut result = RelLineageResult {
        endpoints: BTreeMap::new(),
        paths: Vec::new(),
        paths_explored: 0,
    };
    let mut on_path: BTreeSet<String> = BTreeSet::new();
    on_path.insert(request.start.clone());
    let mut stack: Vec<String> = Vec::new();
    dfs(store, request, &request.start, 0, &mut on_path, &mut stack, &mut result);

    // Endpoint qualification by rollup group.
    if let Some(group) = &request.target_group {
        let qualifies = |id: &str| {
            store
                .entity(id)
                .map(|(t, _)| t.rollups().contains(&group.as_str()))
                .unwrap_or(false)
        };
        result.endpoints.retain(|id, _| qualifies(id));
        let kept: BTreeSet<&String> = result.endpoints.keys().collect();
        result
            .paths
            .retain(|p| p.last().map(|e| kept.contains(e)).unwrap_or(false));
    }
    result
}

fn dfs(
    store: &RelationalStore,
    request: &RelLineageRequest,
    node: &str,
    depth: usize,
    on_path: &mut BTreeSet<String>,
    stack: &mut Vec<String>,
    result: &mut RelLineageResult,
) {
    if depth >= request.max_depth || result.paths_explored >= request.max_paths {
        return;
    }
    let next: Vec<(String, Option<String>)> = match request.direction {
        RelDirection::Downstream => store
            .mappings_from(node)
            .into_iter()
            .map(|m| (m.to.clone(), m.condition.clone()))
            .collect(),
        RelDirection::Upstream => store
            .mappings_to(node)
            .into_iter()
            .map(|m| (m.from.clone(), m.condition.clone()))
            .collect(),
    };
    for (target, condition) in next {
        if on_path.contains(&target) {
            continue;
        }
        if let Some(filter) = &request.rule_condition_filter {
            match &condition {
                Some(c) if c.contains(filter.as_str()) => {}
                _ => continue,
            }
        }
        if result.paths_explored >= request.max_paths {
            return;
        }
        result.paths_explored += 1;
        stack.push(target.clone());
        on_path.insert(target.clone());
        let d = depth + 1;
        result
            .endpoints
            .entry(target.clone())
            .and_modify(|old| *old = (*old).min(d))
            .or_insert(d);
        result.paths.push(stack.clone());
        dfs(store, request, &target, d, on_path, stack, result);
        on_path.remove(&target);
        stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::load_extracts;
    use mdw_corpus::fig2;

    fn loaded() -> RelationalStore {
        let fx = fig2::fixture();
        let mut store = RelationalStore::new();
        load_extracts(&mut store, &[fx.ontology, fx.facts]);
        store
    }

    const CLIENT: &str = "http://www.credit-suisse.com/dwh/client_information_id";
    const PARTNER: &str = "http://www.credit-suisse.com/dwh/partner_id";
    const CUSTOMER: &str = "http://www.credit-suisse.com/dwh/customer_id";

    #[test]
    fn downstream_full_chain() {
        let store = loaded();
        let result = rel_lineage(&store, &RelLineageRequest::downstream(CLIENT));
        assert_eq!(result.endpoints.get(PARTNER), Some(&1));
        assert_eq!(result.endpoints.get(CUSTOMER), Some(&2));
    }

    #[test]
    fn group_filter_matches_listing2() {
        let store = loaded();
        let result =
            rel_lineage(&store, &RelLineageRequest::downstream(CLIENT).to_group("Application"));
        assert_eq!(result.endpoints.len(), 1);
        assert!(result.endpoints.contains_key(CUSTOMER));
        assert_eq!(result.paths.len(), 1);
        assert_eq!(result.paths[0].len(), 2);
    }

    #[test]
    fn upstream_provenance() {
        let store = loaded();
        let result = rel_lineage(&store, &RelLineageRequest::upstream(CUSTOMER));
        assert_eq!(result.endpoints.get(CLIENT), Some(&2));
    }

    #[test]
    fn rule_condition_filter() {
        let store = loaded();
        let result = rel_lineage(
            &store,
            &RelLineageRequest::downstream(CLIENT).with_rule_filter("to_number"),
        );
        // Only the first hop's condition contains "to_number".
        assert!(result.endpoints.contains_key(PARTNER));
        assert!(!result.endpoints.contains_key(CUSTOMER));
    }

    #[test]
    fn unknown_start() {
        let store = loaded();
        let result = rel_lineage(&store, &RelLineageRequest::downstream("http://nope"));
        assert!(result.endpoints.is_empty());
        assert_eq!(result.paths_explored, 0);
    }
}
