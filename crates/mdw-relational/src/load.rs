//! Loading the *same* RDF extracts into the fixed schema.
//!
//! This is where the paper's flexibility argument becomes measurable: the
//! loader knows the fixed schema's entity kinds and attribute columns. A
//! triple whose predicate or class has no place in the schema is **dropped
//! and counted**; in the graph warehouse, the same triple just becomes
//! another edge. The drop counts per predicate/class are reported so the
//! `flexibility` experiment (DESIGN.md S3) can show exactly what a
//! schema-first store silently loses until someone pays for a migration.

use std::collections::BTreeMap;

use mdw_core::ingest::Extract;
use mdw_rdf::term::Term;
use mdw_rdf::vocab;

use crate::schema::{EntityRow, EntityTable, MappingRow, RelationalStore};

/// The outcome of loading extracts into the fixed schema.
#[derive(Debug, Clone, Default)]
pub struct RelLoadReport {
    /// Entity rows created or merged.
    pub entities: usize,
    /// Mapping rows created.
    pub mappings: usize,
    /// Attribute cells set.
    pub attributes: usize,
    /// Triples dropped because the fixed schema has no place for them,
    /// keyed by predicate (or `type:<class>` for unknown classes).
    pub dropped: BTreeMap<String, usize>,
}

impl RelLoadReport {
    /// Total dropped triples.
    pub fn dropped_total(&self) -> usize {
        self.dropped.values().sum()
    }
}

fn class_to_table(class_iri: &str) -> Option<EntityTable> {
    let local = class_iri.rsplit(['#', '/']).next()?;
    // Per-application view-column classes (Application{i}_View_Column) all
    // land in the view_columns table; per-application item classes carry no
    // storage of their own (pure hierarchy — the relational design has
    // nowhere to put them, which is fine: they are rollups).
    if local.starts_with("Application") && local.ends_with("_View_Column") {
        return Some(EntityTable::ViewColumns);
    }
    Some(match local {
        "Application" => EntityTable::Applications,
        "Database" => EntityTable::Databases,
        "Schema" => EntityTable::Schemas,
        "Table" => EntityTable::Tables,
        "Column" => EntityTable::Columns,
        "View_Column" => EntityTable::ViewColumns,
        "Source_File_Column" => EntityTable::SourceFileColumns,
        "DWH_Item" => EntityTable::DwhItems,
        "Interface" => EntityTable::Interfaces,
        "Role" => EntityTable::Roles,
        "User" => EntityTable::Users,
        "Report" => EntityTable::Reports,
        "Domain" => EntityTable::Domains,
        _ => return None,
    })
}

/// Loads extracts into the store.
///
/// Mapping reification (`dt:mapsFrom`/`mapsTo` + `dt:ruleCondition`) is
/// folded into the mappings table's condition column, as the textbook
/// schema would model it.
pub fn load_extracts(store: &mut RelationalStore, extracts: &[Extract]) -> RelLoadReport {
    let mut report = RelLoadReport::default();
    // First pass: reified mapping nodes → (from, to, condition).
    let mut map_from: BTreeMap<String, String> = BTreeMap::new();
    let mut map_to: BTreeMap<String, String> = BTreeMap::new();
    let mut map_cond: BTreeMap<String, String> = BTreeMap::new();

    let iri_of = |t: &Term| t.as_iri().map(str::to_string);
    let lit_of = |t: &Term| t.as_literal().map(|l| l.lexical.to_string());

    for extract in extracts {
        for (s, p, o) in &extract.triples {
            let Some(p_iri) = p.as_iri() else { continue };
            match p_iri {
                vocab::cs::MAPS_FROM => {
                    if let (Some(m), Some(v)) = (iri_of(s), iri_of(o)) {
                        map_from.insert(m, v);
                    }
                }
                vocab::cs::MAPS_TO => {
                    if let (Some(m), Some(v)) = (iri_of(s), iri_of(o)) {
                        map_to.insert(m, v);
                    }
                }
                vocab::cs::RULE_CONDITION => {
                    if let (Some(m), Some(v)) = (iri_of(s), lit_of(o)) {
                        map_cond.insert(m, v);
                    }
                }
                _ => {}
            }
        }
    }

    // Second pass: entity rows (types first, so every entity lands in the
    // table its class dictates before any attribute arrives).
    for extract in extracts {
        for (s, p, o) in &extract.triples {
            if p.as_iri() != Some(vocab::rdf::TYPE) {
                continue;
            }
            let Some(s_id) = iri_of(s) else { continue };
            let Some(class) = o.as_iri() else { continue };
            // Mapping nodes are folded, not stored as entities.
            if class == vocab::cs::MAPPING {
                continue;
            }
            match class_to_table(class) {
                Some(table) => {
                    store.upsert_entity(table, EntityRow { id: s_id, ..Default::default() });
                    report.entities += 1;
                }
                None => {
                    let local = class.rsplit(['#', '/']).next().unwrap_or(class);
                    // Per-app *_Item rollup classes are represented in code,
                    // not storage: not a drop.
                    if local.starts_with("Application") && local.ends_with("_Item") {
                        continue;
                    }
                    *report.dropped.entry(format!("type:{local}")).or_insert(0) += 1;
                }
            }
        }
    }

    // Third pass: attributes and mappings.
    for extract in extracts {
        for (s, p, o) in &extract.triples {
            let Some(p_iri) = p.as_iri() else { continue };
            let Some(s_id) = iri_of(s) else {
                *report.dropped.entry("blank-subject".to_string()).or_insert(0) += 1;
                continue;
            };
            match p_iri {
                vocab::rdf::TYPE => {}
                vocab::cs::HAS_NAME => {
                    if let Some(name) = lit_of(o) {
                        set_attr(store, &s_id, &mut report, |r| r.name = Some(name.clone()));
                    }
                }
                vocab::cs::IN_SCHEMA => {
                    if let Some(v) = iri_of(o) {
                        set_attr(store, &s_id, &mut report, |r| r.schema = Some(v.clone()));
                    }
                }
                vocab::cs::IN_AREA => {
                    if let Some(v) = lit_of(o) {
                        set_attr(store, &s_id, &mut report, |r| r.area = Some(v.clone()));
                    }
                }
                vocab::cs::AT_LEVEL => {
                    if let Some(v) = lit_of(o) {
                        set_attr(store, &s_id, &mut report, |r| r.level = Some(v.clone()));
                    }
                }
                vocab::cs::IS_MAPPED_TO => {
                    if let Some(to) = iri_of(o) {
                        store.insert_mapping(MappingRow {
                            from: s_id,
                            to,
                            condition: None,
                        });
                        report.mappings += 1;
                    }
                }
                // Folded in pass one.
                vocab::cs::MAPS_FROM | vocab::cs::MAPS_TO | vocab::cs::RULE_CONDITION => {}
                // The hierarchy/schema layers live in code here, not storage:
                // dropping them is the design, not data loss.
                vocab::rdfs::SUB_CLASS_OF
                | vocab::rdfs::SUB_PROPERTY_OF
                | vocab::rdfs::DOMAIN
                | vocab::rdfs::RANGE
                | vocab::rdfs::LABEL => {}
                other if other == p_iri && known_datatype_attr(p_iri) => {
                    if let Some(v) = lit_of(o) {
                        set_attr(store, &s_id, &mut report, |r| r.data_type = Some(v.clone()));
                    }
                }
                other => {
                    let local = other.rsplit(['#', '/']).next().unwrap_or(other);
                    *report.dropped.entry(local.to_string()).or_insert(0) += 1;
                }
            }
        }
    }

    // Fold reified conditions into the mappings table.
    for (m, cond) in &map_cond {
        if let (Some(from), Some(to)) = (map_from.get(m), map_to.get(m)) {
            store.set_mapping_condition(from, to, cond.clone());
        }
    }

    report
}

fn known_datatype_attr(p: &str) -> bool {
    p.ends_with("#hasDataType")
}

fn set_attr(
    store: &mut RelationalStore,
    id: &str,
    report: &mut RelLoadReport,
    set: impl FnOnce(&mut EntityRow),
) {
    // Attributes may arrive before the type fact; park them on a row in a
    // best-guess table (DwhItems) that upsert will merge when the type
    // arrives — or, if the id is known, update in place.
    if store.entity(id).is_none() {
        store.upsert_entity(
            EntityTable::DwhItems,
            EntityRow { id: id.to_string(), ..Default::default() },
        );
    }
    let mut row = EntityRow { id: id.to_string(), ..Default::default() };
    set(&mut row);
    store.upsert_entity(EntityTable::DwhItems, row);
    report.attributes += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdw_corpus::fig2;
    use mdw_corpus::{generate, CorpusConfig};

    #[test]
    fn fixture_loads_with_known_shape() {
        let fx = fig2::fixture();
        let mut store = RelationalStore::new();
        let report = load_extracts(&mut store, &[fx.ontology, fx.facts]);
        assert!(report.entities > 0);
        assert_eq!(report.mappings, 2);
        // customer_id landed in view_columns with its attributes.
        let (table, row) = store
            .entity("http://www.credit-suisse.com/dwh/customer_id")
            .unwrap();
        assert_eq!(table, EntityTable::ViewColumns);
        assert_eq!(row.name.as_deref(), Some("customer_id"));
        assert_eq!(row.area.as_deref(), Some("Data Mart"));
        // Rule conditions folded into the mapping table.
        let maps = store.mappings_from("http://www.credit-suisse.com/dwh/client_information_id");
        assert_eq!(maps.len(), 1);
        assert!(maps[0].condition.as_deref().unwrap().contains("to_number"));
    }

    #[test]
    fn unknown_predicates_are_dropped_and_counted() {
        let corpus = generate(&CorpusConfig::small());
        let mut store = RelationalStore::new();
        let report = load_extracts(&mut store, &[corpus.ontology, corpus.facts]);
        // The corpus emits predicates the fixed schema never anticipated
        // (referencesColumn, representsConcept, usesDomain, hasRole, …).
        assert!(report.dropped_total() > 0);
        assert!(report.dropped.keys().any(|k| k == "representsConcept"));
    }

    #[test]
    fn extended_scope_drops_more() {
        let base = {
            let corpus = generate(&CorpusConfig::small());
            let mut store = RelationalStore::new();
            load_extracts(&mut store, &[corpus.ontology, corpus.facts]).dropped_total()
        };
        let ext = {
            let corpus = generate(&CorpusConfig::small().extended());
            let mut store = RelationalStore::new();
            load_extracts(&mut store, &[corpus.ontology, corpus.facts]).dropped_total()
        };
        // The Figure 9 subject areas (governance, logs, technologies) have
        // no tables yet → more dropped triples.
        assert!(ext > base);
    }

    #[test]
    fn attribute_before_type_lands_in_right_table() {
        let mut store = RelationalStore::new();
        let extract = Extract::new(
            "out-of-order",
            vec![
                (
                    Term::iri("http://x/e1"),
                    Term::iri(vocab::cs::HAS_NAME),
                    Term::plain("early name"),
                ),
                (
                    Term::iri("http://x/e1"),
                    Term::iri(vocab::rdf::TYPE),
                    Term::iri(vocab::cs::dm("Column")),
                ),
            ],
        );
        let report = load_extracts(&mut store, &[extract]);
        let (table, row) = store.entity("http://x/e1").unwrap();
        // The type pass runs first, so the row is in columns despite the
        // attribute appearing earlier in the extract.
        assert_eq!(table, EntityTable::Columns);
        assert_eq!(row.name.as_deref(), Some("early name"));
        assert_eq!(report.attributes, 1);
    }
}
