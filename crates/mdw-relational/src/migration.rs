//! Schema-evolution cost model.
//!
//! The paper rejects the textbook approach because "it requires a major
//! investment in constructing a comprehensive meta-data schema" and because
//! the landscape keeps changing. In the graph warehouse, a new kind of
//! metadata is just new edges — zero DDL. In the relational baseline, every
//! new metadata kind is a migration:
//!
//! * a new entity kind → `CREATE TABLE` (1 DDL statement),
//! * a new attribute on an existing kind → `ALTER TABLE ADD COLUMN`
//!   (1 DDL statement) **plus a rewrite of every existing row** of that
//!   table (backfill) — the dominant cost at warehouse scale.
//!
//! [`Migration::apply`] executes the model against a store and reports the
//! DDL count and rows rewritten; the `flexibility` experiment (DESIGN.md
//! S3) compares that against the graph's zero.

use crate::schema::{EntityTable, RelationalStore};

/// A planned schema migration.
#[derive(Debug, Clone, Default)]
pub struct Migration {
    /// New entity kinds (each becomes an extension table).
    pub new_entity_types: Vec<String>,
    /// New attributes: `(existing table, column name)`.
    pub new_attributes: Vec<(EntityTable, String)>,
}

impl Migration {
    /// An empty migration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a new entity kind.
    pub fn add_entity_type(mut self, name: impl Into<String>) -> Self {
        self.new_entity_types.push(name.into());
        self
    }

    /// Adds a new attribute to an existing table.
    pub fn add_attribute(mut self, table: EntityTable, column: impl Into<String>) -> Self {
        self.new_attributes.push((table, column.into()));
        self
    }

    /// The migration needed to absorb the paper's Figure 9 extended scope
    /// (data governance, log files, physical components) into the fixed
    /// schema.
    pub fn figure9() -> Self {
        Migration::new()
            .add_entity_type("log_files")
            .add_entity_type("technologies")
            .add_attribute(EntityTable::ViewColumns, "owner_user_id")
            .add_attribute(EntityTable::ViewColumns, "consumer_user_id")
            .add_attribute(EntityTable::Applications, "implemented_in")
            .add_attribute(EntityTable::Applications, "log_file_id")
    }

    /// Applies the migration, returning its cost.
    pub fn apply(&self, store: &mut RelationalStore) -> MigrationReport {
        let mut report = MigrationReport::default();
        for name in &self.new_entity_types {
            store.register_extension(name);
            report.ddl_statements += 1; // CREATE TABLE
            report.tables_created += 1;
        }
        for (table, column) in &self.new_attributes {
            report.ddl_statements += 1; // ALTER TABLE ADD COLUMN
            // Backfill: every existing row of the table is rewritten with
            // the new (NULL) column — the classic migration cost.
            let rows = store.rows(*table).len();
            report.rows_rewritten += rows;
            report.columns_added += 1;
            // Materialize the column on every row so later loads can fill
            // it (cost model *and* functional effect).
            let ids: Vec<String> = store.rows(*table).iter().map(|r| r.id.clone()).collect();
            for id in ids {
                if let Some((t, _)) = store.entity(&id) {
                    debug_assert_eq!(t, *table);
                }
                // Rewriting is modeled by touching `extra`.
                let mut row = crate::schema::EntityRow {
                    id,
                    ..Default::default()
                };
                row.extra.insert(column.clone(), String::new());
                store.upsert_entity(*table, row);
            }
        }
        report
    }
}

/// The cost of a migration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// DDL statements executed (CREATE TABLE / ALTER TABLE).
    pub ddl_statements: usize,
    /// Rows rewritten by backfills.
    pub rows_rewritten: usize,
    /// New tables.
    pub tables_created: usize,
    /// New columns.
    pub columns_added: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::load_extracts;
    use mdw_corpus::{generate, CorpusConfig};

    #[test]
    fn empty_migration_is_free() {
        let mut store = RelationalStore::new();
        let report = Migration::new().apply(&mut store);
        assert_eq!(report, MigrationReport::default());
    }

    #[test]
    fn new_entity_type_is_one_ddl() {
        let mut store = RelationalStore::new();
        let report = Migration::new().add_entity_type("log_files").apply(&mut store);
        assert_eq!(report.ddl_statements, 1);
        assert_eq!(report.tables_created, 1);
        assert_eq!(report.rows_rewritten, 0);
    }

    #[test]
    fn new_attribute_rewrites_existing_rows() {
        let corpus = generate(&CorpusConfig::small());
        let mut store = RelationalStore::new();
        load_extracts(&mut store, &[corpus.ontology, corpus.facts]);
        let before = store.rows(EntityTable::Columns).len();
        assert!(before > 0);
        let report = Migration::new()
            .add_attribute(EntityTable::Columns, "pii_flag")
            .apply(&mut store);
        assert_eq!(report.ddl_statements, 1);
        assert_eq!(report.rows_rewritten, before);
        // The column exists on every row now.
        assert!(store
            .rows(EntityTable::Columns)
            .iter()
            .all(|r| r.extra.contains_key("pii_flag")));
    }

    #[test]
    fn figure9_migration_cost_scales_with_data() {
        let corpus = generate(&CorpusConfig::medium());
        let mut store = RelationalStore::new();
        load_extracts(&mut store, &[corpus.ontology, corpus.facts]);
        let report = Migration::figure9().apply(&mut store);
        assert_eq!(report.ddl_statements, 6); // 2 CREATE TABLE + 4 ALTER TABLE
        // Backfills dominate: hundreds of rows rewritten for a medium
        // corpus (2× the mart items + 2× the applications), where the graph
        // warehouse would execute zero DDL.
        assert!(report.rows_rewritten > 500, "rewrote {}", report.rows_rewritten);
    }
}
