//! The fixed relational schema.
//!
//! The textbook design: one typed table per entity kind of Figure 1, one
//! mapping table for data flows. The class hierarchy is *not data* here —
//! rollups like "a Column is an Attribute" are compiled into the
//! application code (see [`EntityTable::rollups`]), which is exactly why
//! every new metadata kind needs a migration.

use std::collections::{BTreeMap, HashMap};

/// The fixed entity tables. Adding a variant is a code change plus a
/// [`Migration`](crate::migration::Migration) — the rigidity under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EntityTable {
    /// Applications.
    Applications,
    /// Databases.
    Databases,
    /// Database schemas.
    Schemas,
    /// Tables.
    Tables,
    /// Application columns.
    Columns,
    /// DWH view columns (data marts).
    ViewColumns,
    /// DWH source-file columns (inbound).
    SourceFileColumns,
    /// DWH integration items.
    DwhItems,
    /// Application interfaces.
    Interfaces,
    /// Roles.
    Roles,
    /// Users.
    Users,
    /// Reports.
    Reports,
    /// Value domains.
    Domains,
    /// Tables added by migrations (dynamic extensions).
    Extension(u32),
}

impl EntityTable {
    /// All fixed tables (excluding migrations).
    pub const FIXED: [EntityTable; 13] = [
        EntityTable::Applications,
        EntityTable::Databases,
        EntityTable::Schemas,
        EntityTable::Tables,
        EntityTable::Columns,
        EntityTable::ViewColumns,
        EntityTable::SourceFileColumns,
        EntityTable::DwhItems,
        EntityTable::Interfaces,
        EntityTable::Roles,
        EntityTable::Users,
        EntityTable::Reports,
        EntityTable::Domains,
    ];

    /// Display name of the table.
    pub fn name(self) -> String {
        match self {
            EntityTable::Applications => "applications".to_string(),
            EntityTable::Databases => "databases".to_string(),
            EntityTable::Schemas => "schemas".to_string(),
            EntityTable::Tables => "tables".to_string(),
            EntityTable::Columns => "columns".to_string(),
            EntityTable::ViewColumns => "view_columns".to_string(),
            EntityTable::SourceFileColumns => "source_file_columns".to_string(),
            EntityTable::DwhItems => "dwh_items".to_string(),
            EntityTable::Interfaces => "interfaces".to_string(),
            EntityTable::Roles => "roles".to_string(),
            EntityTable::Users => "users".to_string(),
            EntityTable::Reports => "reports".to_string(),
            EntityTable::Domains => "domains".to_string(),
            EntityTable::Extension(i) => format!("ext_{i}"),
        }
    }

    /// The hard-coded class rollups: which result groups an entity of this
    /// table also counts under (the relational stand-in for the hierarchy
    /// layer — note it is *code*, not data).
    pub fn rollups(self) -> &'static [&'static str] {
        match self {
            EntityTable::Columns => &["Column", "Attribute"],
            EntityTable::ViewColumns => &["Column", "Attribute", "Application"],
            EntityTable::SourceFileColumns => &["Source Column", "Attribute", "Interface"],
            EntityTable::DwhItems => &["Column", "Attribute"],
            EntityTable::Applications => &["Application"],
            EntityTable::Databases => &["Database"],
            EntityTable::Schemas => &["Schema"],
            EntityTable::Tables => &["Table"],
            EntityTable::Interfaces => &["Interface"],
            EntityTable::Roles => &["Role"],
            EntityTable::Users => &["User"],
            EntityTable::Reports => &["Report"],
            EntityTable::Domains => &["Domain"],
            EntityTable::Extension(_) => &["Extension"],
        }
    }
}

/// One row of an entity table: the fixed attributes the schema anticipated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EntityRow {
    /// Entity identifier (the IRI in the graph world).
    pub id: String,
    /// Name column.
    pub name: Option<String>,
    /// Schema membership.
    pub schema: Option<String>,
    /// DWH area.
    pub area: Option<String>,
    /// Abstraction level.
    pub level: Option<String>,
    /// Data type (columns only).
    pub data_type: Option<String>,
    /// Extension attributes added by migrations: column name → value.
    pub extra: BTreeMap<String, String>,
}

/// One row of the mappings table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingRow {
    /// Source item id.
    pub from: String,
    /// Target item id.
    pub to: String,
    /// Transformation rule condition.
    pub condition: Option<String>,
}

/// The whole store: typed tables plus the indexes a DBA would create.
#[derive(Debug, Default)]
pub struct RelationalStore {
    tables: BTreeMap<EntityTable, Vec<EntityRow>>,
    mappings: Vec<MappingRow>,
    /// id → (table, row index).
    by_id: HashMap<String, (EntityTable, usize)>,
    /// Forward mapping adjacency: from-id → mapping indexes.
    forward: HashMap<String, Vec<usize>>,
    /// Reverse mapping adjacency: to-id → mapping indexes.
    reverse: HashMap<String, Vec<usize>>,
    /// Extension tables registered by migrations.
    extensions: Vec<String>,
}

impl RelationalStore {
    /// Creates an empty store with the fixed tables.
    pub fn new() -> Self {
        let mut tables = BTreeMap::new();
        for t in EntityTable::FIXED {
            tables.insert(t, Vec::new());
        }
        RelationalStore { tables, ..Default::default() }
    }

    /// Inserts an entity row. An entity id can exist only once across all
    /// tables (ids are IRIs); re-insertion merges the non-`None` fields.
    pub fn upsert_entity(&mut self, table: EntityTable, row: EntityRow) {
        match self.by_id.get(&row.id) {
            Some(&(t, idx)) => {
                let existing = &mut self.tables.get_mut(&t).expect("table exists")[idx];
                if existing.name.is_none() {
                    existing.name = row.name;
                }
                if existing.schema.is_none() {
                    existing.schema = row.schema;
                }
                if existing.area.is_none() {
                    existing.area = row.area;
                }
                if existing.level.is_none() {
                    existing.level = row.level;
                }
                if existing.data_type.is_none() {
                    existing.data_type = row.data_type;
                }
                existing.extra.extend(row.extra);
            }
            None => {
                let rows = self.tables.entry(table).or_default();
                self.by_id.insert(row.id.clone(), (table, rows.len()));
                rows.push(row);
            }
        }
    }

    /// Inserts a mapping row and maintains both adjacency indexes.
    pub fn insert_mapping(&mut self, mapping: MappingRow) {
        let idx = self.mappings.len();
        self.forward.entry(mapping.from.clone()).or_default().push(idx);
        self.reverse.entry(mapping.to.clone()).or_default().push(idx);
        self.mappings.push(mapping);
    }

    /// Sets the condition of an existing (from, to) mapping, if present.
    pub fn set_mapping_condition(&mut self, from: &str, to: &str, condition: String) -> bool {
        if let Some(indexes) = self.forward.get(from) {
            for &i in indexes {
                if self.mappings[i].to == to {
                    self.mappings[i].condition = Some(condition);
                    return true;
                }
            }
        }
        false
    }

    /// Rows of one table.
    pub fn rows(&self, table: EntityTable) -> &[EntityRow] {
        self.tables.get(&table).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over `(table, row)` for every entity.
    pub fn all_rows(&self) -> impl Iterator<Item = (EntityTable, &EntityRow)> {
        self.tables.iter().flat_map(|(t, rows)| rows.iter().map(move |r| (*t, r)))
    }

    /// Looks up an entity by id.
    pub fn entity(&self, id: &str) -> Option<(EntityTable, &EntityRow)> {
        self.by_id
            .get(id)
            .map(|&(t, idx)| (t, &self.tables.get(&t).expect("table exists")[idx]))
    }

    /// All mapping rows.
    pub fn mappings(&self) -> &[MappingRow] {
        &self.mappings
    }

    /// Outgoing mappings of an item.
    pub fn mappings_from(&self, id: &str) -> Vec<&MappingRow> {
        self.forward
            .get(id)
            .map(|v| v.iter().map(|&i| &self.mappings[i]).collect())
            .unwrap_or_default()
    }

    /// Incoming mappings of an item.
    pub fn mappings_to(&self, id: &str) -> Vec<&MappingRow> {
        self.reverse
            .get(id)
            .map(|v| v.iter().map(|&i| &self.mappings[i]).collect())
            .unwrap_or_default()
    }

    /// Total entity rows across all tables.
    pub fn entity_count(&self) -> usize {
        self.tables.values().map(Vec::len).sum()
    }

    /// Registers an extension table (used by migrations); returns its id.
    pub fn register_extension(&mut self, name: &str) -> EntityTable {
        let table = EntityTable::Extension(self.extensions.len() as u32);
        self.extensions.push(name.to_string());
        self.tables.insert(table, Vec::new());
        table
    }

    /// Number of tables currently in the schema (fixed + extensions).
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: &str, name: &str) -> EntityRow {
        EntityRow { id: id.into(), name: Some(name.into()), ..Default::default() }
    }

    #[test]
    fn upsert_merges_fields() {
        let mut s = RelationalStore::new();
        s.upsert_entity(EntityTable::Columns, row("c1", "customer_id"));
        s.upsert_entity(
            EntityTable::Columns,
            EntityRow { id: "c1".into(), schema: Some("s1".into()), ..Default::default() },
        );
        let (t, r) = s.entity("c1").unwrap();
        assert_eq!(t, EntityTable::Columns);
        assert_eq!(r.name.as_deref(), Some("customer_id"));
        assert_eq!(r.schema.as_deref(), Some("s1"));
        assert_eq!(s.entity_count(), 1);
    }

    #[test]
    fn mapping_adjacency() {
        let mut s = RelationalStore::new();
        s.insert_mapping(MappingRow { from: "a".into(), to: "b".into(), condition: None });
        s.insert_mapping(MappingRow { from: "b".into(), to: "c".into(), condition: None });
        assert_eq!(s.mappings_from("a").len(), 1);
        assert_eq!(s.mappings_to("c").len(), 1);
        assert!(s.mappings_from("c").is_empty());
        assert!(s.set_mapping_condition("a", "b", "cond".into()));
        assert_eq!(s.mappings_from("a")[0].condition.as_deref(), Some("cond"));
        assert!(!s.set_mapping_condition("a", "z", "x".into()));
    }

    #[test]
    fn rollups_encode_hierarchy_in_code() {
        assert!(EntityTable::ViewColumns.rollups().contains(&"Attribute"));
        assert!(EntityTable::SourceFileColumns.rollups().contains(&"Interface"));
    }

    #[test]
    fn extension_tables() {
        let mut s = RelationalStore::new();
        let before = s.table_count();
        let ext = s.register_extension("log_files");
        assert_eq!(s.table_count(), before + 1);
        s.upsert_entity(ext, row("log1", "app0.log"));
        assert_eq!(s.rows(ext).len(), 1);
        assert_eq!(ext.name(), "ext_0");
    }
}
