//! Search against the fixed schema.
//!
//! Functionally equivalent to the graph warehouse's Section IV.A search —
//! same term matching, same grouped output — but the grouping hierarchy is
//! the hard-coded [`EntityTable::rollups`](crate::schema::EntityTable)
//! instead of `rdfs:subClassOf` data, and the "area" filter is a plain
//! column predicate. No inference, no synonym edges: exactly what the
//! textbook design gives you out of the box.

use std::collections::BTreeMap;

use crate::schema::RelationalStore;

/// A search request against the relational baseline.
#[derive(Debug, Clone)]
pub struct RelSearchRequest {
    /// The search term.
    pub term: String,
    /// Restrict to entities whose rollup groups include this label
    /// (the stand-in for the hierarchy filter).
    pub group_filter: Option<String>,
    /// Area filter.
    pub area: Option<String>,
    /// Case-sensitive matching.
    pub case_sensitive: bool,
}

impl RelSearchRequest {
    /// A case-insensitive search with no filters.
    pub fn new(term: impl Into<String>) -> Self {
        RelSearchRequest {
            term: term.into(),
            group_filter: None,
            area: None,
            case_sensitive: false,
        }
    }

    /// Restricts to one rollup group.
    pub fn in_group(mut self, group: impl Into<String>) -> Self {
        self.group_filter = Some(group.into());
        self
    }

    /// Restricts to an area.
    pub fn in_area(mut self, area: impl Into<String>) -> Self {
        self.area = Some(area.into());
        self
    }
}

/// Grouped results, mirroring the graph warehouse's output shape.
#[derive(Debug, Clone)]
pub struct RelSearchResults {
    /// Group label → matching entity ids (sorted).
    pub groups: BTreeMap<String, Vec<String>>,
    /// Distinct matching entities.
    pub instance_count: usize,
}

impl RelSearchResults {
    /// Count of one group.
    pub fn count(&self, group: &str) -> usize {
        self.groups.get(group).map(Vec::len).unwrap_or(0)
    }
}

/// Runs the search: scan every entity table, match the name column, group
/// by the hard-coded rollups.
pub fn rel_search(store: &RelationalStore, request: &RelSearchRequest) -> RelSearchResults {
    let needle = if request.case_sensitive {
        request.term.clone()
    } else {
        request.term.to_lowercase()
    };
    let mut groups: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut instance_count = 0usize;

    for (table, row) in store.all_rows() {
        let Some(name) = &row.name else { continue };
        let haystack = if request.case_sensitive {
            name.clone()
        } else {
            name.to_lowercase()
        };
        if !haystack.contains(&needle) {
            continue;
        }
        if let Some(area) = &request.area {
            if row.area.as_deref() != Some(area.as_str()) {
                continue;
            }
        }
        let rollups: Vec<&str> = match &request.group_filter {
            None => table.rollups().to_vec(),
            Some(filter) => {
                if table.rollups().contains(&filter.as_str()) {
                    table.rollups().to_vec()
                } else {
                    continue;
                }
            }
        };
        instance_count += 1;
        for group in rollups {
            groups.entry(group.to_string()).or_default().push(row.id.clone());
        }
    }
    for ids in groups.values_mut() {
        ids.sort();
        ids.dedup();
    }
    RelSearchResults { groups, instance_count }
}

/// Convenience: per-group counts in label order (the Figure 6 table shape).
pub fn grouped_counts(results: &RelSearchResults) -> Vec<(String, usize)> {
    results
        .groups
        .iter()
        .map(|(g, ids)| (g.clone(), ids.len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::load_extracts;
    use mdw_corpus::fig2;

    fn loaded() -> RelationalStore {
        let fx = fig2::fixture();
        let mut store = RelationalStore::new();
        load_extracts(&mut store, &[fx.ontology, fx.facts]);
        store
    }

    #[test]
    fn search_customer_matches_graph_shape() {
        let store = loaded();
        let results = rel_search(&store, &RelSearchRequest::new("customer"));
        // customer_id rolls up into Column, Attribute, and Application —
        // the same multi-group membership as the graph's Figure 6 output.
        assert_eq!(results.count("Column"), 1);
        assert_eq!(results.count("Attribute"), 1);
        assert_eq!(results.count("Application"), 1);
        assert_eq!(results.instance_count, 1);
    }

    #[test]
    fn case_sensitivity() {
        let store = loaded();
        let insensitive = rel_search(&store, &RelSearchRequest::new("CUSTOMER"));
        assert_eq!(insensitive.instance_count, 1);
        let mut req = RelSearchRequest::new("CUSTOMER");
        req.case_sensitive = true;
        assert_eq!(rel_search(&store, &req).instance_count, 0);
    }

    #[test]
    fn group_filter() {
        let store = loaded();
        let results = rel_search(
            &store,
            &RelSearchRequest::new("id").in_group("Interface"),
        );
        // Only the source-file column rolls up into Interface.
        assert_eq!(results.instance_count, 1);
        assert!(results.groups.contains_key("Interface"));
    }

    #[test]
    fn area_filter() {
        let store = loaded();
        let results = rel_search(
            &store,
            &RelSearchRequest::new("id").in_area("Integration"),
        );
        assert_eq!(results.instance_count, 1); // partner_id only
    }

    #[test]
    fn no_synonym_support_by_design() {
        // The baseline finds "client…" but NOT customer_id for "client" —
        // the semantic gap the graph + synonym table closes.
        let store = loaded();
        let results = rel_search(&store, &RelSearchRequest::new("client"));
        assert_eq!(results.instance_count, 1);
    }

    #[test]
    fn grouped_counts_sorted() {
        let store = loaded();
        let results = rel_search(&store, &RelSearchRequest::new("id"));
        let counts = grouped_counts(&results);
        let labels: Vec<&String> = counts.iter().map(|(l, _)| l).collect();
        let mut sorted = labels.clone();
        sorted.sort();
        assert_eq!(labels, sorted);
    }
}
