//! Named delay points: the serving layer's hook for holding a request open
//! at a precise spot, deterministically, from a test.
//!
//! Failpoints inject *errors*; drain tests need the opposite — a request
//! that is deliberately **slow** so the test can catch it in flight when
//! SIGTERM lands. A delay point is a named, cancellable pause compiled into
//! the hot path as a single atomic load when nothing is armed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use mdw_rdf::budget::CancellationToken;

static ARMED: AtomicUsize = AtomicUsize::new(0);
static REGISTRY: Mutex<BTreeMap<String, Duration>> = Mutex::new(BTreeMap::new());

/// Arms a delay: every pass through `pause(name, …)` sleeps for `d`
/// (in small cancellable slices) until disarmed.
pub fn arm_delay(name: &str, d: Duration) {
    let mut map = REGISTRY.lock().unwrap();
    map.insert(name.to_string(), d);
    ARMED.store(map.len(), Ordering::Release);
}

/// Removes a delay; returns whether it was armed.
pub fn disarm_delay(name: &str) -> bool {
    let mut map = REGISTRY.lock().unwrap();
    let removed = map.remove(name).is_some();
    ARMED.store(map.len(), Ordering::Release);
    removed
}

/// Clears every delay point (test hygiene).
pub fn reset_delays() {
    let mut map = REGISTRY.lock().unwrap();
    map.clear();
    ARMED.store(0, Ordering::Release);
}

/// Sleeps for the armed duration of `name`, if any, in 1 ms slices so a
/// fired [`CancellationToken`] cuts the pause short. Unarmed names cost one
/// relaxed atomic load.
pub fn pause(name: &str, cancel: &CancellationToken) {
    if ARMED.load(Ordering::Acquire) == 0 {
        return;
    }
    let Some(total) = REGISTRY.lock().unwrap().get(name).copied() else {
        return;
    };
    let slice = Duration::from_millis(1);
    let mut slept = Duration::ZERO;
    while slept < total && !cancel.is_cancelled() {
        std::thread::sleep(slice.min(total - slept));
        slept += slice;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_pause_is_instant() {
        reset_delays();
        let t = std::time::Instant::now();
        pause("serve::nowhere", &CancellationToken::new());
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn armed_pause_sleeps_and_cancellation_cuts_it_short() {
        reset_delays();
        arm_delay("serve::test_point", Duration::from_millis(40));
        let t = std::time::Instant::now();
        pause("serve::test_point", &CancellationToken::new());
        assert!(t.elapsed() >= Duration::from_millis(35));

        let token = CancellationToken::new();
        token.cancel();
        let t = std::time::Instant::now();
        pause("serve::test_point", &token);
        assert!(t.elapsed() < Duration::from_millis(20));
        reset_delays();
    }
}
