//! A strict little HTTP client for drills and tests.
//!
//! Strictness is the point: this parser decides whether a response frame is
//! *provably complete* — `Content-Length` fully satisfied, or chunked
//! transfer properly terminated by the `0\r\n\r\n` chunk — and the chaos
//! suite uses that verdict to assert the server never emits a half-frame
//! that parses as complete. The load drill (`mdwh drill wire`) uses the
//! same parser, so what the drill counts as "ok" is exactly what survives
//! this scrutiny.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed (and verified) response.
#[derive(Debug)]
pub struct WireResponse {
    /// The status code.
    pub status: u16,
    /// Headers, names lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Decoded body (chunked bodies are de-framed).
    pub body: String,
    /// True only when the frame is provably complete: full declared length,
    /// or a chunked body that reached its terminator.
    pub complete_frame: bool,
}

impl WireResponse {
    /// The body's ndjson lines.
    pub fn lines(&self) -> Vec<&str> {
        self.body.lines().filter(|l| !l.is_empty()).collect()
    }

    /// The final `{"summary":…}` line of a row stream, if the frame carries
    /// one. A truthful row stream always ends with its summary; a missing
    /// summary means the response was cut.
    pub fn summary_line(&self) -> Option<&str> {
        let last = self.lines().last().copied()?;
        last.contains("\"summary\"").then_some(last)
    }

    /// Whether a streamed answer is complete end-to-end: frame closed,
    /// summary present, and the summary says `"complete":true`.
    pub fn answer_complete(&self) -> bool {
        self.complete_frame
            && self
                .summary_line()
                .is_some_and(|s| s.contains("\"complete\":true"))
    }

    /// The `Retry-After` hint in seconds, if present.
    pub fn retry_after_secs(&self) -> Option<u64> {
        self.headers.get("retry-after")?.parse().ok()
    }
}

/// Errors a drill distinguishes from sheds.
#[derive(Debug)]
pub enum WireError {
    /// Connecting or talking to the server failed at the socket level.
    Io(std::io::Error),
    /// The server replied, but the frame was malformed or cut short.
    BadFrame(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::BadFrame(what) => write!(f, "bad frame: {what}"),
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Sends one GET and reads the response to EOF (the server always closes).
pub fn get(
    addr: SocketAddr,
    target: &str,
    headers: &[(&str, String)],
    timeout: Duration,
) -> Result<WireResponse, WireError> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut request = format!("GET {target} HTTP/1.1\r\nHost: mdw\r\nConnection: close\r\n");
    for (name, value) in headers {
        request.push_str(name);
        request.push_str(": ");
        request.push_str(value);
        request.push_str("\r\n");
    }
    request.push_str("\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Sends a bare POST (no body) and reads the response to EOF.
pub fn post(
    addr: SocketAddr,
    target: &str,
    timeout: Duration,
) -> Result<WireResponse, WireError> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request =
        format!("POST {target} HTTP/1.1\r\nHost: mdw\r\nConnection: close\r\nContent-Length: 0\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// A persistent keep-alive connection: many requests, one socket, each
/// response judged by the same strict parser. The drill uses a pool of
/// these to hold thousands of connections open; [`frame_length`] tells it
/// where each response frame ends so the next request can reuse the socket.
pub struct WireConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl WireConn {
    /// Connects with `timeout` applied to the connect and every read/write.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<WireConn, WireError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(WireConn { stream, buf: Vec::new() })
    }

    /// Sends one GET without `Connection: close` and reads exactly one
    /// response frame, leaving the socket open for the next request.
    pub fn get(&mut self, target: &str, headers: &[(&str, String)]) -> Result<WireResponse, WireError> {
        self.request("GET", target, headers)
    }

    /// Sends one request and reads one frame (keep-alive).
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, String)],
    ) -> Result<WireResponse, WireError> {
        self.send(method, target, headers)?;
        self.read_frame()
    }

    /// Writes one request without reading the response — the pipelining
    /// half. The storm drill sends on *every* connection first, so the
    /// server sees all requests at once, then collects frames with
    /// [`WireConn::read_frame`] one connection at a time.
    pub fn send(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, String)],
    ) -> Result<(), WireError> {
        let mut request = format!("{method} {target} HTTP/1.1\r\nHost: mdw\r\n");
        for (name, value) in headers {
            request.push_str(name);
            request.push_str(": ");
            request.push_str(value);
            request.push_str("\r\n");
        }
        if method == "POST" {
            request.push_str("Content-Length: 0\r\n");
        }
        request.push_str("\r\n");
        self.stream.write_all(request.as_bytes())?;
        Ok(())
    }

    /// Reads exactly one response frame for a previously [`send`]-issued
    /// request, leaving any pipelined surplus buffered for the next call.
    ///
    /// [`send`]: WireConn::send
    pub fn read_frame(&mut self) -> Result<WireResponse, WireError> {
        let mut scratch = [0u8; 8192];
        loop {
            if let Some(len) = frame_length(&self.buf) {
                let frame: Vec<u8> = self.buf.drain(..len).collect();
                return parse_response(&frame);
            }
            let got = self.stream.read(&mut scratch)?;
            if got == 0 {
                if self.buf.is_empty() {
                    return Err(WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )));
                }
                // Whatever arrived before the close gets the strict verdict
                // (a cut frame parses as incomplete, never as complete).
                let frame = std::mem::take(&mut self.buf);
                return parse_response(&frame);
            }
            self.buf.extend_from_slice(&scratch[..got]);
        }
    }
}

/// Incremental frame detector: how many bytes at the start of `raw` form
/// one complete response frame (head + fully-delimited body), or `None` if
/// more bytes are needed. The keep-alive client splits its stream on this.
pub fn frame_length(raw: &[u8]) -> Option<usize> {
    let head_end = find_head_end(raw)?;
    let body_start = head_end + 4;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut chunked = false;
    let mut content_length: Option<usize> = None;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            } else if name == "content-length" {
                content_length = value.parse().ok();
            }
        }
    }
    if chunked {
        let mut at = body_start;
        loop {
            let rest = raw.get(at..)?;
            let line_end = rest.windows(2).position(|w| w == b"\r\n")?;
            let size =
                usize::from_str_radix(std::str::from_utf8(&rest[..line_end]).ok()?.trim(), 16)
                    .ok()?;
            at += line_end + 2;
            if size == 0 {
                // Terminal chunk: the frame ends at its final CRLF.
                return (raw.get(at..at + 2)? == b"\r\n").then_some(at + 2);
            }
            at += size + 2;
            if at > raw.len() {
                return None;
            }
        }
    } else {
        let total = body_start + content_length?;
        (raw.len() >= total).then_some(total)
    }
}

/// Parses raw response bytes, judging frame completeness strictly.
pub fn parse_response(raw: &[u8]) -> Result<WireResponse, WireError> {
    let head_end = find_head_end(raw).ok_or(WireError::BadFrame("no header terminator"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| WireError::BadFrame("non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or(WireError::BadFrame("empty head"))?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next().ok_or(WireError::BadFrame("bad status line"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(WireError::BadFrame("bad http version"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(WireError::BadFrame("bad status code"))?;
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(WireError::BadFrame("bad header"))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    let body_raw = &raw[head_end + 4..];
    let chunked = headers
        .get("transfer-encoding")
        .is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
    let (body_bytes, complete_frame) = if chunked {
        decode_chunked(body_raw)
    } else if let Some(length) = headers.get("content-length").and_then(|v| v.parse().ok()) {
        let got = body_raw.len().min(length);
        (body_raw[..got].to_vec(), body_raw.len() >= length)
    } else {
        // No length, no chunking: completeness is unknowable — treat as
        // incomplete so nothing silently passes.
        (body_raw.to_vec(), false)
    };
    Ok(WireResponse {
        status,
        headers,
        body: String::from_utf8_lossy(&body_bytes).into_owned(),
        complete_frame,
    })
}

fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

/// De-frames a chunked body. Returns the payload plus whether the terminal
/// `0`-chunk was reached — a body cut anywhere short of it is incomplete.
fn decode_chunked(mut raw: &[u8]) -> (Vec<u8>, bool) {
    let mut body = Vec::new();
    loop {
        let Some(line_end) = raw.windows(2).position(|w| w == b"\r\n") else {
            return (body, false);
        };
        let Ok(size_text) = std::str::from_utf8(&raw[..line_end]) else {
            return (body, false);
        };
        let Ok(size) = usize::from_str_radix(size_text.trim(), 16) else {
            return (body, false);
        };
        raw = &raw[line_end + 2..];
        if size == 0 {
            // Terminal chunk: strictly require the final CRLF (trailers
            // unsupported) — the server always writes the full `0\r\n\r\n`.
            return (body, raw.starts_with(b"\r\n"));
        }
        if raw.len() < size + 2 {
            body.extend_from_slice(&raw[..raw.len().min(size)]);
            return (body, false);
        }
        body.extend_from_slice(&raw[..size]);
        raw = &raw[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fixed_length_responses() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 3\r\n\r\nok\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.complete_frame);
        assert_eq!(resp.body, "ok\n");
    }

    #[test]
    fn short_fixed_length_bodies_are_incomplete() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nok";
        let resp = parse_response(raw).unwrap();
        assert!(!resp.complete_frame);
    }

    #[test]
    fn chunked_frames_complete_only_at_the_terminator() {
        let full = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                     8\r\n{\"a\":1}\n\r\n0\r\n\r\n";
        let resp = parse_response(full).unwrap();
        assert!(resp.complete_frame);
        assert_eq!(resp.body, "{\"a\":1}\n");

        // Same frame cut anywhere before the terminator: incomplete.
        for cut in 47..full.len() - 1 {
            let resp = parse_response(&full[..cut]).unwrap();
            assert!(!resp.complete_frame, "cut at {cut} parsed as complete");
        }
    }

    #[test]
    fn frame_length_finds_the_boundary_incrementally() {
        let fixed = b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nok\nHTTP/1.1 ...";
        let frame_end = fixed.len() - "HTTP/1.1 ...".len();
        assert_eq!(frame_length(fixed), Some(frame_end));
        for cut in 0..frame_end {
            assert_eq!(frame_length(&fixed[..cut]), None, "cut at {cut}");
        }

        let chunked = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                        8\r\n{\"a\":1}\n\r\n0\r\n\r\nleftover";
        let frame_end = chunked.len() - "leftover".len();
        assert_eq!(frame_length(chunked), Some(frame_end));
        for cut in 0..frame_end {
            assert_eq!(frame_length(&chunked[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn summary_detection_requires_the_summary_line() {
        let with = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
            8\r\n{\"a\":1}\n\r\n27\r\n{\"summary\":{\"rows\":1,\"complete\":true}}\n\r\n0\r\n\r\n";
        let resp = parse_response(with).unwrap();
        assert!(resp.complete_frame);
        assert!(resp.summary_line().is_some());
        assert!(resp.answer_complete());

        let without = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                        8\r\n{\"a\":1}\n\r\n0\r\n\r\n";
        let resp = parse_response(without).unwrap();
        assert!(resp.complete_frame);
        assert!(resp.summary_line().is_none());
        assert!(!resp.answer_complete());
    }
}
