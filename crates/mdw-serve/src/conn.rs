//! The per-connection state machine: one [`Conn`] per socket, driven by
//! whoever owns the I/O.
//!
//! ```text
//!                 bytes            head parsed        job queued
//!   ReadingHead ────────▶ (parse) ───────────▶ ReadingBody ─▶ Executing
//!        ▲                   │ fixed route                        │ result
//!        │                   ▼                                    ▼
//!   Idle(keep-alive) ◀── Streaming ◀──────────────────────── (stage)
//!        │    next bytes      │ flush done & close
//!        └────────────────────▶ Closing
//! ```
//!
//! The machine is **transport-agnostic**: it never touches a socket. It
//! consumes bytes via [`Conn::feed`], stages responses into a bounded write
//! buffer, and tells its driver what it needs next via [`Conn::wants`].
//! Two drivers exist:
//!
//! * the epoll event loop in [`crate::server`], which feeds it nonblocking
//!   reads, flushes via [`Conn::on_writable`], runs [`QueryJob`]s on a
//!   worker pool, and enforces the per-state deadlines
//!   ([`Conn::check_deadline`]): head-read (slowloris), write-stall
//!   (slow readers), and idle keep-alive reaping;
//! * the blocking driver [`handle_connection`], which runs everything on
//!   the calling thread over any `Read + Write` — the chaos suite's way of
//!   making every wire fault deterministic. It flushes one protocol piece
//!   per write call (head, then each row frame), so write-count-based fault
//!   arming lands exactly where a test aims it.
//!
//! Buffers are bounded: the read buffer can never exceed the request-head
//! cap plus one byte (a drip-feeding client hits `431`, not OOM), and the
//! write buffer refills from the row streamer only below a high-water mark.

use std::io::{self, Read, Write};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::fault::FaultStream;
use crate::http::{self, ParseError, Request};
use crate::router::{
    self, ConnOutcome, JobResult, Prepared, QueryJob, RowStreamer, StagedResponse,
};
use crate::server::{ServeState, ServerConfig};

/// Refill threshold for the write buffer: the streamer appends row frames
/// only while the buffer holds less than this, so a response never sits
/// fully materialized in memory.
pub const WRITE_HIGH_WATER: usize = 32 * 1024;

/// The per-state transport deadlines a connection lives under.
#[derive(Debug, Clone, Copy)]
pub struct ConnTimeouts {
    /// From first byte (or accept) until the full request head must have
    /// arrived — the slowloris bound.
    pub head: Duration,
    /// Maximum time a flush may go without the peer accepting a single
    /// byte — the slow-reader bound.
    pub write_stall: Duration,
    /// How long a keep-alive connection may sit idle between requests.
    pub idle: Duration,
}

impl From<&ServerConfig> for ConnTimeouts {
    fn from(config: &ServerConfig) -> Self {
        ConnTimeouts {
            head: config.read_timeout,
            write_stall: config.write_timeout,
            idle: config.idle_timeout,
        }
    }
}

/// What a connection needs from its driver next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wants {
    /// More request bytes: watch for readability.
    Read,
    /// A staged response (or streamer) to flush: watch for writability.
    Write,
    /// A [`QueryJob`] is ready for pickup via [`Conn::take_job`].
    Execute,
    /// A job is out with the workers; nothing to watch.
    Wait,
    /// Tear the connection down.
    Close,
}

enum State {
    /// Between requests on a keep-alive connection; no bytes of the next
    /// head yet.
    Idle,
    /// Accumulating the request head.
    ReadingHead,
    /// Head parsed; draining the declared body.
    ReadingBody { request: Box<Request>, remaining: usize },
    /// A query job is queued or running on a worker.
    Executing,
    /// Flushing the staged response (and refilling from the streamer).
    Streaming,
    /// Done; the driver should close the socket.
    Closing,
}

/// One connection's full lifecycle. See the module docs for the drivers.
pub struct Conn {
    state: State,
    /// True for connections accepted purely to be told `503`: past the
    /// capacity bound, they get a head parse and a shed response, never a
    /// query.
    shed: bool,
    in_buf: Vec<u8>,
    out_buf: Vec<u8>,
    out_pos: usize,
    job: Option<QueryJob>,
    streamer: Option<RowStreamer>,
    keep_alive: bool,
    close_after: bool,
    count_served: bool,
    count_wire_error: bool,
    staged_outcome: ConnOutcome,
    outcome: ConnOutcome,
    requests_served: u64,
    timeouts: ConnTimeouts,
    deadline: Option<Instant>,
}

impl Conn {
    /// A fresh connection, expecting a request head. The head deadline
    /// starts at accept time — a client that connects and says nothing is
    /// exactly what the slowloris bound exists for.
    pub fn new(timeouts: ConnTimeouts, shed: bool, now: Instant) -> Conn {
        Conn {
            state: State::ReadingHead,
            shed,
            in_buf: Vec::new(),
            out_buf: Vec::new(),
            out_pos: 0,
            job: None,
            streamer: None,
            keep_alive: false,
            close_after: false,
            count_served: false,
            count_wire_error: false,
            staged_outcome: ConnOutcome::BadRequest,
            outcome: ConnOutcome::BadRequest,
            requests_served: 0,
            timeouts,
            deadline: Some(now + timeouts.head),
        }
    }

    /// What the driver should do next.
    pub fn wants(&self) -> Wants {
        match self.state {
            State::Closing => Wants::Close,
            State::Streaming => Wants::Write,
            State::Executing => {
                if self.job.is_some() {
                    Wants::Execute
                } else {
                    Wants::Wait
                }
            }
            State::Idle | State::ReadingHead | State::ReadingBody { .. } => Wants::Read,
        }
    }

    /// How one (or more) requests on this connection ended — the last
    /// notable event wins.
    pub fn outcome(&self) -> ConnOutcome {
        self.outcome
    }

    /// Requests fully answered on this connection so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// True when the connection sits between requests with nothing staged
    /// or buffered — the keep-alive "parked" state a drain reaps
    /// immediately.
    pub fn is_parked(&self) -> bool {
        matches!(self.state, State::Idle)
    }

    /// The most bytes the driver should read right now. Bounds the read
    /// buffer: one byte past the head cap is enough for the parser to
    /// reject with `431`, so the buffer can never grow beyond it.
    pub fn read_cap(&self) -> usize {
        match &self.state {
            State::ReadingBody { remaining, .. } => (*remaining).max(1),
            _ => (http::MAX_HEAD + 1).saturating_sub(self.in_buf.len()).max(1),
        }
    }

    /// Feeds freshly-read request bytes and advances parsing/dispatch.
    pub fn feed(&mut self, s: &Arc<ServeState>, bytes: &[u8], now: Instant) {
        self.in_buf.extend_from_slice(bytes);
        self.advance(s, now);
    }

    /// The peer closed its write side. Clean at a request boundary on a
    /// connection that served something; everywhere else it is a broken
    /// request (answered best-effort, like any parse failure).
    pub fn on_read_eof(&mut self, s: &Arc<ServeState>, now: Instant) {
        let at_boundary =
            matches!(self.state, State::Idle | State::ReadingHead) && self.in_buf.is_empty();
        if at_boundary {
            // A probe that never spoke keeps the BadRequest verdict; a
            // keep-alive client hanging up between requests is a clean end.
            self.state = State::Closing;
        } else {
            let e = ParseError::UnexpectedEof;
            self.stage_response(s, StagedResponse::parse_error(e.status(), &e.to_string()), now);
        }
    }

    /// A read failed (timeout, reset, …). Mirrors the blocking server's
    /// behavior: answer `400` best-effort — on a genuinely dead peer the
    /// flush fails silently — and close.
    pub fn on_read_error(&mut self, s: &Arc<ServeState>, e: io::Error, now: Instant) {
        let e = ParseError::Io(e);
        self.stage_response(s, StagedResponse::parse_error(e.status(), &e.to_string()), now);
    }

    /// Takes the queued job for execution (worker pool or inline).
    pub fn take_job(&mut self) -> Option<QueryJob> {
        self.job.take()
    }

    /// Delivers a worker's result. Ignored unless a job is actually
    /// outstanding (a torn-down connection's late result is dropped by the
    /// loop before it gets here).
    pub fn complete_job(&mut self, s: &Arc<ServeState>, result: JobResult, now: Instant) {
        if !matches!(self.state, State::Executing) {
            return;
        }
        match result {
            JobResult::Fixed(resp) => self.stage_response(s, resp, now),
            JobResult::Stream(streamer) => self.stage_stream(s, streamer, now),
        }
    }

    /// Nonblocking flush for the event loop: writes until the socket would
    /// block, refilling from the streamer below the high-water mark. Any
    /// accepted byte resets the write-stall deadline.
    pub fn on_writable<W: Write>(&mut self, s: &Arc<ServeState>, w: &mut W, now: Instant) {
        while matches!(self.state, State::Streaming) {
            if self.out_pos < self.out_buf.len() {
                match w.write(&self.out_buf[self.out_pos..]) {
                    Ok(0) => return self.write_failed(s),
                    Ok(n) => {
                        self.out_pos += n;
                        self.deadline = Some(now + self.timeouts.write_stall);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return self.write_failed(s),
                }
            } else {
                self.out_buf.clear();
                self.out_pos = 0;
                match &mut self.streamer {
                    Some(streamer) => {
                        streamer.fill(&mut self.out_buf, WRITE_HIGH_WATER);
                        if self.out_buf.is_empty() {
                            self.finish_response(s, now);
                        }
                    }
                    None => self.finish_response(s, now),
                }
            }
        }
    }

    /// Blocking flush, one protocol piece per call: first the staged bytes
    /// (head or whole fixed response) as one `write_all`, then each
    /// streamer piece as its own `write_all`. This granularity is what lets
    /// the chaos suite arm a fault "after N writes" and land it mid-body.
    pub fn flush_step<W: Write>(&mut self, s: &Arc<ServeState>, w: &mut W) {
        if !matches!(self.state, State::Streaming) {
            return;
        }
        if self.out_pos < self.out_buf.len() {
            let result =
                w.write_all(&self.out_buf[self.out_pos..]).and_then(|()| w.flush());
            match result {
                Ok(()) => self.out_pos = self.out_buf.len(),
                Err(_) => self.write_failed(s),
            }
            return;
        }
        self.out_buf.clear();
        self.out_pos = 0;
        if let Some(streamer) = &mut self.streamer {
            if streamer.step(&mut self.out_buf) {
                return; // staged one piece; the next call writes it
            }
        }
        self.finish_response(s, Instant::now());
    }

    /// Enforces the current state's deadline. Returns whether it fired:
    ///
    /// * head/body read overdue → `408` staged, connection will close
    ///   (`head_timeouts`) — the slowloris defense;
    /// * write stall overdue → hard close, the peer is not reading
    ///   (`write_stall_timeouts`);
    /// * idle keep-alive overdue → hard close (`idle_reaped`).
    pub fn check_deadline(&mut self, s: &Arc<ServeState>, now: Instant) -> bool {
        let Some(deadline) = self.deadline else { return false };
        if now < deadline {
            return false;
        }
        match self.state {
            State::ReadingHead | State::ReadingBody { .. } => {
                s.counters.head_timeouts.fetch_add(1, Ordering::Relaxed);
                self.stage_response(
                    s,
                    StagedResponse::parse_error(408, "request head timed out"),
                    now,
                );
            }
            State::Streaming => {
                s.counters.write_stall_timeouts.fetch_add(1, Ordering::Relaxed);
                // Nothing can be said to a peer that is not reading: the
                // frame stays detectably incomplete.
                if self.count_wire_error {
                    s.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
                    self.outcome = ConnOutcome::WireError;
                } else {
                    self.outcome = self.staged_outcome;
                }
                self.streamer = None;
                self.deadline = None;
                self.state = State::Closing;
            }
            State::Idle => {
                s.counters.idle_reaped.fetch_add(1, Ordering::Relaxed);
                self.deadline = None;
                self.state = State::Closing;
            }
            // A running query answers to its budget, not the transport.
            State::Executing | State::Closing => {
                self.deadline = None;
                return false;
            }
        }
        true
    }

    fn advance(&mut self, s: &Arc<ServeState>, now: Instant) {
        loop {
            match &mut self.state {
                State::Idle | State::ReadingHead => {
                    match http::parse_head(&self.in_buf) {
                        Ok(None) => {
                            if matches!(self.state, State::Idle) && !self.in_buf.is_empty() {
                                // First bytes of the next request: the head
                                // clock starts now.
                                self.state = State::ReadingHead;
                                self.deadline = Some(now + self.timeouts.head);
                            }
                            return;
                        }
                        Ok(Some((request, consumed))) => {
                            self.in_buf.drain(..consumed);
                            let remaining = request.content_length;
                            self.state =
                                State::ReadingBody { request: Box::new(request), remaining };
                        }
                        Err(e) => {
                            return self.stage_response(
                                s,
                                StagedResponse::parse_error(e.status(), &e.to_string()),
                                now,
                            );
                        }
                    }
                }
                State::ReadingBody { remaining, .. } => {
                    // The body is drained, not served: bytes already bounded
                    // by MAX_BODY at parse time.
                    let take = (*remaining).min(self.in_buf.len());
                    self.in_buf.drain(..take);
                    *remaining -= take;
                    if *remaining > 0 {
                        return;
                    }
                    let State::ReadingBody { request, .. } =
                        std::mem::replace(&mut self.state, State::Executing)
                    else {
                        unreachable!("just matched ReadingBody");
                    };
                    return self.dispatch(s, *request, now);
                }
                _ => return,
            }
        }
    }

    fn dispatch(&mut self, s: &Arc<ServeState>, request: Request, now: Instant) {
        self.keep_alive = request.keep_alive;
        if self.requests_served > 0 {
            s.counters.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
        }
        if self.shed {
            // Past the capacity bound: the head was read (closing with
            // unread bytes makes the kernel RST the connection, destroying
            // the 503), now say why and go.
            return self.stage_response(s, StagedResponse::capacity_shed(), now);
        }
        match router::prepare(s, &request) {
            Prepared::Fixed(resp) => self.stage_response(s, resp, now),
            Prepared::Query(job) => {
                self.job = Some(job);
                self.state = State::Executing;
                self.deadline = None;
            }
        }
    }

    fn stage_response(&mut self, s: &Arc<ServeState>, resp: StagedResponse, now: Instant) {
        let close = resp.close || !self.keep_alive || s.drain.is_draining();
        self.out_buf.clear();
        self.out_pos = 0;
        http::write_response(
            &mut self.out_buf,
            resp.status,
            !close,
            &resp.extra_headers,
            resp.content_type,
            &resp.body,
        )
        .expect("writing to a Vec cannot fail");
        self.begin_flush(resp.count_served, resp.count_wire_error, resp.outcome, close, now);
    }

    fn stage_stream(&mut self, s: &Arc<ServeState>, streamer: RowStreamer, now: Instant) {
        let close = !self.keep_alive || s.drain.is_draining();
        self.out_buf.clear();
        self.out_pos = 0;
        http::start_chunked(&mut self.out_buf, 200, !close, &[], "application/x-ndjson")
            .expect("writing to a Vec cannot fail");
        self.streamer = Some(streamer);
        self.begin_flush(true, true, ConnOutcome::Served, close, now);
    }

    fn begin_flush(
        &mut self,
        count_served: bool,
        count_wire_error: bool,
        outcome: ConnOutcome,
        close: bool,
        now: Instant,
    ) {
        self.count_served = count_served;
        self.count_wire_error = count_wire_error;
        self.staged_outcome = outcome;
        self.close_after = close;
        self.state = State::Streaming;
        self.deadline = Some(now + self.timeouts.write_stall);
    }

    fn write_failed(&mut self, s: &Arc<ServeState>) {
        if self.count_wire_error {
            s.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
            self.outcome = ConnOutcome::WireError;
        } else {
            // Best-effort responses (parse errors, the post-panic 500) keep
            // their verdict even when the flush goes nowhere.
            self.outcome = self.staged_outcome;
        }
        self.streamer = None;
        self.deadline = None;
        self.state = State::Closing;
    }

    fn finish_response(&mut self, s: &Arc<ServeState>, now: Instant) {
        // Dropping the streamer releases the admission permit and in-flight
        // registration — the frame is on the wire, the request is over.
        self.streamer = None;
        if self.count_served {
            s.counters.served.fetch_add(1, Ordering::Relaxed);
        }
        self.outcome = self.staged_outcome;
        self.requests_served += 1;
        if self.close_after {
            self.deadline = None;
            self.state = State::Closing;
            return;
        }
        self.state = State::Idle;
        self.deadline = Some(now + self.timeouts.idle);
        // Pipelined bytes of the next request may already be buffered.
        self.advance(s, now);
    }
}

/// Serves a whole connection from `stream` on the calling thread, with wire
/// fault injection and panic isolation. This is the deterministic driver:
/// thread-local failpoints armed by the caller fire inside this call. With
/// keep-alive it serves requests until the peer closes or an error does.
/// Never panics outward; never leaks a permit or an in-flight registration
/// (both are RAII and released when the streamer drops).
pub fn handle_connection<S: Read + Write>(state: &Arc<ServeState>, stream: S) -> ConnOutcome {
    let mut stream = FaultStream::new(stream);
    let mut conn = Conn::new(ConnTimeouts::from(&state.config), false, Instant::now());
    let mut scratch = [0u8; 4096];
    loop {
        match conn.wants() {
            Wants::Read => {
                let cap = conn.read_cap().min(scratch.len());
                let now = Instant::now();
                match stream.read(&mut scratch[..cap]) {
                    Ok(0) => conn.on_read_eof(state, now),
                    Ok(n) => conn.feed(state, &scratch[..n], now),
                    Err(e) => conn.on_read_error(state, e, now),
                }
            }
            Wants::Execute => {
                let job = conn.take_job().expect("Execute implies a queued job");
                let result = router::execute_job(state, job);
                conn.complete_job(state, result, Instant::now());
            }
            Wants::Write => conn.flush_step(state, &mut stream),
            Wants::Wait => unreachable!("the blocking driver executes jobs inline"),
            Wants::Close => break,
        }
    }
    conn.outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::parse_response;
    use crate::server::ServerConfig;
    use mdw_core::warehouse::MetadataWarehouse;

    fn test_state() -> Arc<ServeState> {
        // An empty warehouse suffices: these tests never run queries.
        let warehouse = MetadataWarehouse::new().into_shared();
        ServeState::new(warehouse, ServerConfig::default())
    }

    fn timeouts() -> ConnTimeouts {
        ConnTimeouts {
            head: Duration::from_millis(100),
            write_stall: Duration::from_millis(100),
            idle: Duration::from_millis(100),
        }
    }

    /// Drives the conn's staged bytes into a Vec until it stops wanting to
    /// write.
    fn drain_writes(conn: &mut Conn, s: &Arc<ServeState>) -> Vec<u8> {
        let mut out = Vec::new();
        while conn.wants() == Wants::Write {
            conn.flush_step(s, &mut out);
        }
        out
    }

    #[test]
    fn slowloris_head_deadline_stages_a_408() {
        let s = test_state();
        let t0 = Instant::now();
        let mut conn = Conn::new(timeouts(), false, t0);
        // A drip-fed partial head…
        conn.feed(&s, b"GET /healthz HT", t0);
        assert_eq!(conn.wants(), Wants::Read);
        // …not overdue yet…
        assert!(!conn.check_deadline(&s, t0 + Duration::from_millis(50)));
        // …then the head deadline fires: 408, close.
        assert!(conn.check_deadline(&s, t0 + Duration::from_millis(150)));
        assert_eq!(s.counters.head_timeouts.load(Ordering::Relaxed), 1);
        let raw = drain_writes(&mut conn, &s);
        let resp = parse_response(&raw).unwrap();
        assert_eq!(resp.status, 408);
        assert!(resp.complete_frame);
        assert_eq!(conn.wants(), Wants::Close);
        assert_eq!(conn.outcome(), ConnOutcome::BadRequest);
    }

    #[test]
    fn write_stall_deadline_hard_closes() {
        let s = test_state();
        let t0 = Instant::now();
        let mut conn = Conn::new(timeouts(), false, t0);
        conn.feed(&s, b"GET /healthz HTTP/1.1\r\n\r\n", t0);
        assert_eq!(conn.wants(), Wants::Write, "healthz is staged immediately");
        // The peer never accepts a byte; the stall deadline fires.
        assert!(conn.check_deadline(&s, t0 + Duration::from_millis(150)));
        assert_eq!(s.counters.write_stall_timeouts.load(Ordering::Relaxed), 1);
        assert_eq!(conn.wants(), Wants::Close);
        assert_eq!(conn.outcome(), ConnOutcome::WireError);
        assert_eq!(s.counters.wire_errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn idle_keep_alive_connections_are_reaped() {
        let s = test_state();
        let t0 = Instant::now();
        let mut conn = Conn::new(timeouts(), false, t0);
        conn.feed(&s, b"GET /healthz HTTP/1.1\r\n\r\n", t0);
        let raw = drain_writes(&mut conn, &s);
        assert!(parse_response(&raw).unwrap().complete_frame);
        assert_eq!(conn.wants(), Wants::Read, "keep-alive parks the connection");
        assert!(conn.check_deadline(&s, t0 + Duration::from_millis(250)));
        assert_eq!(s.counters.idle_reaped.load(Ordering::Relaxed), 1);
        assert_eq!(conn.wants(), Wants::Close);
        // The served request's verdict survives the reap.
        assert_eq!(conn.outcome(), ConnOutcome::Served);
    }

    #[test]
    fn pipelined_requests_reuse_the_connection() {
        let s = test_state();
        let t0 = Instant::now();
        let mut conn = Conn::new(timeouts(), false, t0);
        let two = b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        conn.feed(&s, two, t0);
        let mut raw = drain_writes(&mut conn, &s);
        // After the first response the pipelined second request dispatches
        // without another read.
        raw.extend(drain_writes(&mut conn, &s));
        let text = String::from_utf8(raw).unwrap();
        assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
        assert_eq!(conn.requests_served(), 2);
        assert_eq!(s.counters.keepalive_reuses.load(Ordering::Relaxed), 1);
        assert_eq!(s.counters.served.load(Ordering::Relaxed), 2);
        assert_eq!(conn.wants(), Wants::Close, "Connection: close honored");
        assert_eq!(conn.outcome(), ConnOutcome::Served);
    }

    #[test]
    fn oversized_heads_get_431_and_bounded_buffers() {
        let s = test_state();
        let t0 = Instant::now();
        let mut conn = Conn::new(timeouts(), false, t0);
        // Drip a header that never ends; the read cap keeps the buffer at
        // MAX_HEAD + 1 and the parser rejects there.
        let mut fed = 0usize;
        let chunk = [b'a'; 1024];
        conn.feed(&s, b"GET / HTTP/1.1\r\nX-Flood: ", t0);
        while conn.wants() == Wants::Read {
            let take = conn.read_cap().min(chunk.len());
            assert!(take > 0);
            conn.feed(&s, &chunk[..take], t0);
            fed += take;
            assert!(fed < 2 * http::MAX_HEAD, "parser failed to bound the head");
        }
        let raw = drain_writes(&mut conn, &s);
        let resp = parse_response(&raw).unwrap();
        assert_eq!(resp.status, 431);
        assert!(resp.complete_frame);
        assert_eq!(conn.wants(), Wants::Close);
        assert_eq!(conn.outcome(), ConnOutcome::BadRequest);
    }

    #[test]
    fn shed_connections_answer_503_and_close() {
        let s = test_state();
        let t0 = Instant::now();
        let mut conn = Conn::new(timeouts(), true, t0);
        conn.feed(&s, b"GET /search?q=x HTTP/1.1\r\n\r\n", t0);
        let raw = drain_writes(&mut conn, &s);
        let resp = parse_response(&raw).unwrap();
        assert_eq!(resp.status, 503);
        assert!(resp.complete_frame);
        assert_eq!(resp.retry_after_secs(), Some(1));
        assert!(resp.body.contains("capacity"));
        assert_eq!(conn.wants(), Wants::Close);
    }
}
