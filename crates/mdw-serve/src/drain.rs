//! Graceful drain: shutdown as a first-class, *truthful* path.
//!
//! Stopping a serving process naively drops whatever was on the wire. The
//! drain controller instead walks the ladder the ISSUE prescribes:
//!
//! 1. **Stop accepting.** New connections get an immediate `503` and the
//!    listener closes.
//! 2. **Let in-flight requests finish** until the drain deadline.
//! 3. **Cancel the stragglers.** Every registered request carries the
//!    [`CancellationToken`] its [`QueryBudget`](mdw_rdf::budget::QueryBudget)
//!    checks at bounded intervals, so a cancelled query returns its partial
//!    rows tagged `Truncated { Cancelled }` — and the response frame still
//!    closes properly. Nothing is abandoned mid-chunk; clients get a valid
//!    prefix and an honest flag, never silence.
//!
//! The registry doubles as the server's in-flight census for `/stats`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mdw_rdf::budget::CancellationToken;

#[derive(Default)]
struct Registry {
    inflight: HashMap<u64, CancellationToken>,
}

/// Tracks every request currently being served, by cancellation token.
pub struct DrainController {
    draining: AtomicBool,
    next_id: AtomicU64,
    registry: Mutex<Registry>,
    emptied: Condvar,
}

impl Default for DrainController {
    fn default() -> Self {
        Self::new()
    }
}

impl DrainController {
    /// A controller with nothing in flight.
    pub fn new() -> Self {
        DrainController {
            draining: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            registry: Mutex::new(Registry::default()),
            emptied: Condvar::new(),
        }
    }

    /// True once a drain has begun: the listener must stop accepting.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Registers a request's cancellation token; the returned guard
    /// deregisters on drop (RAII — panicking handlers still deregister
    /// during unwind, so a drain never waits on a corpse).
    pub fn register(self: &Arc<Self>, token: CancellationToken) -> InFlightGuard {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.registry.lock().unwrap().inflight.insert(id, token);
        InFlightGuard { controller: Arc::clone(self), id }
    }

    /// Requests currently registered.
    pub fn inflight(&self) -> usize {
        self.registry.lock().unwrap().inflight.len()
    }

    /// Marks the server draining (idempotent). Returns whether this call
    /// was the first.
    pub fn begin(&self) -> bool {
        !self.draining.swap(true, Ordering::AcqRel)
    }

    /// Blocks until nothing is in flight or `grace` elapses; returns true
    /// if the registry emptied in time.
    pub fn wait_idle(&self, grace: Duration) -> bool {
        let deadline = Instant::now() + grace;
        let mut registry = self.registry.lock().unwrap();
        while !registry.inflight.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self.emptied.wait_timeout(registry, deadline - now).unwrap();
            registry = next;
        }
        true
    }

    /// Fires every registered token. Queries notice within one budget
    /// check interval and come back truncated-but-truthful.
    pub fn cancel_stragglers(&self) -> usize {
        let registry = self.registry.lock().unwrap();
        for token in registry.inflight.values() {
            token.cancel();
        }
        registry.inflight.len()
    }

    /// The full ladder: stop accepting, wait out `grace`, cancel whatever
    /// is left, then wait (bounded by `grace` again) for the cancelled
    /// stragglers to unwind. Returns the number of requests that had to be
    /// cancelled.
    pub fn drain(&self, grace: Duration) -> usize {
        self.begin();
        if self.wait_idle(grace) {
            return 0;
        }
        let cancelled = self.cancel_stragglers();
        // Cancelled budgets trip within CHECK_INTERVAL steps; give them a
        // bounded window to flush their truncated responses.
        self.wait_idle(grace);
        cancelled
    }
}

/// RAII registration of one in-flight request.
pub struct InFlightGuard {
    controller: Arc<DrainController>,
    id: u64,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        let mut registry = self.controller.registry.lock().unwrap();
        registry.inflight.remove(&self.id);
        if registry.inflight.is_empty() {
            self.controller.emptied.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_register_and_deregister() {
        let c = Arc::new(DrainController::new());
        let g1 = c.register(CancellationToken::new());
        let g2 = c.register(CancellationToken::new());
        assert_eq!(c.inflight(), 2);
        drop(g1);
        assert_eq!(c.inflight(), 1);
        drop(g2);
        assert_eq!(c.inflight(), 0);
        assert!(c.wait_idle(Duration::ZERO));
    }

    #[test]
    fn drain_cancels_stragglers_and_counts_them() {
        let c = Arc::new(DrainController::new());
        let token = CancellationToken::new();
        let guard = c.register(token.clone());
        // A worker that only finishes once cancelled.
        let c2 = Arc::clone(&c);
        let worker = std::thread::spawn(move || {
            while !token.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            drop(guard);
            c2.inflight()
        });
        let cancelled = c.drain(Duration::from_millis(30));
        assert_eq!(cancelled, 1);
        assert!(c.is_draining());
        assert_eq!(worker.join().unwrap(), 0);
        assert_eq!(c.inflight(), 0);
    }

    #[test]
    fn begin_is_idempotent_and_first_call_wins() {
        let c = DrainController::new();
        assert!(c.begin());
        assert!(!c.begin());
        assert!(c.is_draining());
    }

    #[test]
    fn guard_deregisters_during_unwind() {
        let c = Arc::new(DrainController::new());
        let c2 = Arc::clone(&c);
        let _ = std::panic::catch_unwind(move || {
            let _guard = c2.register(CancellationToken::new());
            panic!("handler blew up");
        });
        assert_eq!(c.inflight(), 0);
    }
}
