//! Readiness-based I/O without new dependencies: a thin syscall shim over
//! `epoll(7)` (Linux) with a `poll(2)` fallback for other unixes, mirroring
//! the [`crate::signal`] pattern of declaring the libc symbols directly
//! (std already links libc).
//!
//! The shim exposes exactly what one event loop needs and nothing more:
//!
//! * [`Poller`] — register/modify/deregister interest in a file
//!   descriptor under a caller-chosen `u64` token, and [`Poller::wait`]
//!   for readiness, level-triggered.
//! * [`Waker`] — a self-pipe whose read end lives inside the poller;
//!   any thread can [`Waker::wake`] the loop out of its wait (worker
//!   results, drain requests, shutdown).
//! * Socket and process helpers the serving layer needs around the loop:
//!   [`set_sndbuf`] (the slow-reader tests pin the kernel send buffer so
//!   write-stalls are reachable), [`raise_nofile_limit`] (a 10k-connection
//!   drill needs ~2 fds per connection), and [`current_rss_kb`] (the
//!   drill's bounded-memory report).
//!
//! Level-triggered readiness keeps the two backends semantically
//! identical: a readable fd keeps reporting readable until drained, so a
//! missed byte is re-announced on the next wait instead of lost.

use std::io;
use std::time::Duration;

/// Readiness of one registered descriptor, by its registration token.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token supplied at registration.
    pub token: u64,
    /// Reads will make progress (data, EOF, or a pending error).
    pub readable: bool,
    /// Writes will make progress.
    pub writable: bool,
    /// The peer hung up or the descriptor errored — teardown territory.
    pub hangup: bool,
}

#[cfg(unix)]
mod sys {
    use std::os::unix::io::RawFd;

    pub type CInt = i32;

    extern "C" {
        pub fn close(fd: CInt) -> CInt;
        pub fn pipe(fds: *mut CInt) -> CInt;
        pub fn fcntl(fd: CInt, cmd: CInt, arg: CInt) -> CInt;
        pub fn read(fd: CInt, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: CInt, buf: *const u8, count: usize) -> isize;
        pub fn setsockopt(
            fd: CInt,
            level: CInt,
            optname: CInt,
            optval: *const u8,
            optlen: u32,
        ) -> CInt;
    }

    pub const F_SETFL: CInt = 4;
    pub const O_NONBLOCK: CInt = 0o4000;
    pub const SOL_SOCKET: CInt = 1;
    pub const SO_SNDBUF: CInt = 7;
    pub const SO_RCVBUF: CInt = 8;

    /// A nonblocking self-pipe: `.0` is the read end, `.1` the write end.
    pub fn nonblocking_pipe() -> std::io::Result<(RawFd, RawFd)> {
        let mut fds: [CInt; 2] = [-1, -1];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(std::io::Error::last_os_error());
        }
        for fd in fds {
            // Best effort: a blocking wake pipe still works, it just may
            // park a very chatty waker briefly.
            unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) };
        }
        Ok((fds[0], fds[1]))
    }
}

/// Cross-thread wakeup for a [`Poller`] sitting in `wait`. Cloneable and
/// cheap; the underlying pipe closes when the last clone and the poller
/// are gone.
#[derive(Clone)]
pub struct Waker {
    #[cfg(unix)]
    inner: std::sync::Arc<WakerFd>,
}

#[cfg(unix)]
struct WakerFd(i32);

#[cfg(unix)]
impl Drop for WakerFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.0) };
    }
}

impl Waker {
    /// Interrupts the poller's current (or next) wait. Never blocks for
    /// long and never fails: a full pipe already guarantees a pending
    /// wakeup.
    pub fn wake(&self) {
        #[cfg(unix)]
        unsafe {
            sys::write(self.inner.0, [1u8].as_ptr(), 1);
        }
    }
}

/// The token the poller uses internally for its wake pipe; user tokens
/// must stay below it.
const WAKE_TOKEN: u64 = u64::MAX;

/// A level-triggered readiness poller over raw file descriptors.
pub struct Poller {
    imp: imp::Imp,
    waker: Waker,
    wake_read_fd: i32,
}

impl Poller {
    /// Builds the poller and its wake pipe. Fails only when the kernel is
    /// out of descriptors — callers treat that as fatal for the transport.
    pub fn new() -> io::Result<Poller> {
        #[cfg(unix)]
        {
            let (read_fd, write_fd) = sys::nonblocking_pipe()?;
            let mut imp = imp::Imp::new().inspect_err(|_| {
                unsafe { sys::close(read_fd) };
                unsafe { sys::close(write_fd) };
            })?;
            imp.register(read_fd, WAKE_TOKEN, true, false)?;
            Ok(Poller {
                imp,
                waker: Waker { inner: std::sync::Arc::new(WakerFd(write_fd)) },
                wake_read_fd: read_fd,
            })
        }
        #[cfg(not(unix))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "readiness polling requires a unix platform",
            ))
        }
    }

    /// A handle other threads use to interrupt [`Poller::wait`].
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Starts watching `fd` under `token`. `token` must be unique among
    /// live registrations and below `u64::MAX`.
    pub fn register(&mut self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.imp.register(fd, token, readable, writable)
    }

    /// Changes the interest set of an already-registered `fd`.
    pub fn modify(&mut self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.imp.modify(fd, token, readable, writable)
    }

    /// Stops watching `fd`. Call **before** closing the descriptor — the
    /// poll(2) backend has no kernel-side cleanup to fall back on.
    pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
        self.imp.deregister(fd)
    }

    /// Waits up to `timeout` for readiness, appending events to `out`
    /// (which is cleared first). Returns whether a [`Waker`] fired; wake
    /// notifications are drained internally and never appear in `out`.
    /// `EINTR` surfaces as an empty, un-woken return.
    pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<bool> {
        out.clear();
        self.imp.wait(out, timeout)?;
        let mut woken = false;
        out.retain(|ev| {
            if ev.token == WAKE_TOKEN {
                woken = true;
                false
            } else {
                true
            }
        });
        if woken {
            // Drain the pipe so level-triggering quiesces.
            let mut sink = [0u8; 64];
            #[cfg(unix)]
            while unsafe { sys::read(self.wake_read_fd, sink.as_mut_ptr(), sink.len()) } > 0 {}
            let _ = sink;
        }
        Ok(woken)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(unix)]
        unsafe {
            sys::close(self.wake_read_fd);
        }
    }
}

/// Clamps a wait duration to whole milliseconds for the syscalls, rounding
/// up so a 1ns timeout does not spin.
fn timeout_ms(timeout: Duration) -> i32 {
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    if ms == 0 && !timeout.is_zero() {
        1
    } else {
        ms
    }
}

#[cfg(target_os = "linux")]
mod imp {
    //! The epoll backend: O(1) per event, kernel-held interest list.

    use super::{timeout_ms, PollEvent};
    use std::io;
    use std::time::Duration;

    type CInt = i32;

    const EPOLL_CTL_ADD: CInt = 1;
    const EPOLL_CTL_DEL: CInt = 2;
    const EPOLL_CTL_MOD: CInt = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Linux's epoll_event layout (packed on every epoll-bearing arch).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: CInt) -> CInt;
        fn epoll_ctl(epfd: CInt, op: CInt, fd: CInt, event: *mut EpollEvent) -> CInt;
        fn epoll_wait(epfd: CInt, events: *mut EpollEvent, maxevents: CInt, timeout: CInt) -> CInt;
        fn close(fd: CInt) -> CInt;
    }

    pub struct Imp {
        epfd: CInt,
        buf: Vec<EpollEvent>,
    }

    fn interest_bits(readable: bool, writable: bool) -> u32 {
        let mut events = EPOLLRDHUP;
        if readable {
            events |= EPOLLIN;
        }
        if writable {
            events |= EPOLLOUT;
        }
        events
    }

    fn ctl(epfd: CInt, op: CInt, fd: CInt, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        if unsafe { epoll_ctl(epfd, op, fd, &mut ev) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    impl Imp {
        pub fn new() -> io::Result<Imp> {
            let epfd = unsafe { epoll_create1(0) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Imp { epfd, buf: vec![EpollEvent { events: 0, data: 0 }; 1024] })
        }

        pub fn register(&mut self, fd: CInt, token: u64, r: bool, w: bool) -> io::Result<()> {
            ctl(self.epfd, EPOLL_CTL_ADD, fd, interest_bits(r, w), token)
        }

        pub fn modify(&mut self, fd: CInt, token: u64, r: bool, w: bool) -> io::Result<()> {
            ctl(self.epfd, EPOLL_CTL_MOD, fd, interest_bits(r, w), token)
        }

        pub fn deregister(&mut self, fd: CInt) -> io::Result<()> {
            ctl(self.epfd, EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<()> {
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as CInt,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &self.buf[..n as usize] {
                let bits = ev.events;
                out.push(PollEvent {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Imp {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    //! The poll(2) fallback: the interest list lives in user space as a
    //! flat `pollfd` array. O(n) per wait, which is fine for the
    //! connection counts a non-Linux dev box sees.

    use super::{timeout_ms, PollEvent};
    use std::io;
    use std::time::Duration;

    type CInt = i32;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: CInt,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: CInt) -> CInt;
    }

    pub struct Imp {
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
    }

    fn interest_bits(readable: bool, writable: bool) -> i16 {
        (if readable { POLLIN } else { 0 }) | (if writable { POLLOUT } else { 0 })
    }

    impl Imp {
        pub fn new() -> io::Result<Imp> {
            Ok(Imp { fds: Vec::new(), tokens: Vec::new() })
        }

        fn position(&self, fd: CInt) -> io::Result<usize> {
            self.fds
                .iter()
                .position(|p| p.fd == fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn register(&mut self, fd: CInt, token: u64, r: bool, w: bool) -> io::Result<()> {
            if self.position(fd).is_ok() {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd registered twice"));
            }
            self.fds.push(PollFd { fd, events: interest_bits(r, w), revents: 0 });
            self.tokens.push(token);
            Ok(())
        }

        pub fn modify(&mut self, fd: CInt, token: u64, r: bool, w: bool) -> io::Result<()> {
            let i = self.position(fd)?;
            self.fds[i].events = interest_bits(r, w);
            self.tokens[i] = token;
            Ok(())
        }

        pub fn deregister(&mut self, fd: CInt) -> io::Result<()> {
            let i = self.position(fd)?;
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<()> {
            let n = unsafe {
                poll(self.fds.as_mut_ptr(), self.fds.len() as u64, timeout_ms(timeout))
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (p, token) in self.fds.iter().zip(&self.tokens) {
                let bits = p.revents;
                if bits == 0 {
                    continue;
                }
                out.push(PollEvent {
                    token: *token,
                    readable: bits & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: bits & (POLLOUT | POLLERR | POLLHUP) != 0,
                    hangup: bits & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
mod imp {
    //! Non-unix stub: [`super::Poller::new`] already failed before this is
    //! reachable.

    use super::PollEvent;
    use std::io;
    use std::time::Duration;

    pub struct Imp;

    impl Imp {
        pub fn register(&mut self, _: i32, _: u64, _: bool, _: bool) -> io::Result<()> {
            unreachable!("poller cannot be constructed on non-unix")
        }
        pub fn modify(&mut self, _: i32, _: u64, _: bool, _: bool) -> io::Result<()> {
            unreachable!("poller cannot be constructed on non-unix")
        }
        pub fn deregister(&mut self, _: i32) -> io::Result<()> {
            unreachable!("poller cannot be constructed on non-unix")
        }
        pub fn wait(&mut self, _: &mut Vec<PollEvent>, _: Duration) -> io::Result<()> {
            unreachable!("poller cannot be constructed on non-unix")
        }
    }
}

/// Pins a socket's kernel send buffer (`SO_SNDBUF`). The slow-reader chaos
/// tests shrink it so a stalled peer back-pressures the server within a few
/// kilobytes instead of megabytes.
#[cfg(unix)]
pub fn set_sndbuf(fd: i32, bytes: usize) -> io::Result<()> {
    set_buf_opt(fd, sys::SO_SNDBUF, bytes)
}

/// Pins a socket's kernel receive buffer (`SO_RCVBUF`); the slow-reader
/// *client* shrinks its own window so the server's writes stall sooner.
#[cfg(unix)]
pub fn set_rcvbuf(fd: i32, bytes: usize) -> io::Result<()> {
    set_buf_opt(fd, sys::SO_RCVBUF, bytes)
}

#[cfg(unix)]
fn set_buf_opt(fd: i32, opt: i32, bytes: usize) -> io::Result<()> {
    let val = bytes.min(i32::MAX as usize) as i32;
    let rc = unsafe {
        sys::setsockopt(
            fd,
            sys::SOL_SOCKET,
            opt,
            (&val as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(not(unix))]
pub fn set_sndbuf(_fd: i32, _bytes: usize) -> io::Result<()> {
    Ok(())
}

#[cfg(not(unix))]
pub fn set_rcvbuf(_fd: i32, _bytes: usize) -> io::Result<()> {
    Ok(())
}

/// Raises the soft `RLIMIT_NOFILE` to the hard limit and returns
/// `(soft, hard)` afterwards. A 10k-connection drill needs two descriptors
/// per in-process connection; default soft limits (1024) would melt it.
#[cfg(unix)]
pub fn raise_nofile_limit() -> io::Result<(u64, u64)> {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    const RLIMIT_NOFILE: i32 = 7;
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut std::ffi::c_void) -> i32;
        fn setrlimit(resource: i32, rlim: *const std::ffi::c_void) -> i32;
    }
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, (&mut lim as *mut RLimit).cast()) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur < lim.max {
        let want = RLimit { cur: lim.max, max: lim.max };
        // Best effort: failure leaves the old soft limit, which we report.
        if unsafe { setrlimit(RLIMIT_NOFILE, (&want as *const RLimit).cast()) } == 0 {
            lim.cur = lim.max;
        }
    }
    Ok((lim.cur, lim.max))
}

#[cfg(not(unix))]
pub fn raise_nofile_limit() -> io::Result<(u64, u64)> {
    Ok((u64::MAX, u64::MAX))
}

/// The process's resident set size in KiB, from `/proc/self/status`
/// (`None` where that does not exist). The wire drill reports it so
/// "bounded memory at 10k connections" is a measured claim.
pub fn current_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn waker_interrupts_a_long_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let started = std::time::Instant::now();
        let mut events = Vec::new();
        let woken = poller.wait(&mut events, Duration::from_secs(10)).unwrap();
        assert!(woken, "waker must interrupt the wait");
        assert!(events.is_empty(), "wake events never surface as user events");
        assert!(started.elapsed() < Duration::from_secs(5));
        handle.join().unwrap();
    }

    #[test]
    fn readiness_follows_data_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 7, true, false).unwrap();

        // Nothing to read yet: timeout, no events.
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty());

        client.write_all(b"ping").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while events.is_empty() {
            assert!(std::time::Instant::now() < deadline, "readable never reported");
            poller.wait(&mut events, Duration::from_millis(50)).unwrap();
        }
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unread data keeps reporting.
        let mut again = Vec::new();
        poller.wait(&mut again, Duration::from_millis(50)).unwrap();
        assert!(again.iter().any(|e| e.token == 7 && e.readable));

        // Drain, then quiesce.
        let mut buf = [0u8; 16];
        let mut stream_ref = &server;
        let n = stream_ref.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        poller.wait(&mut again, Duration::from_millis(20)).unwrap();
        assert!(again.is_empty(), "drained fd must quiesce: {again:?}");

        // Write interest on an idle socket is immediately ready.
        poller.modify(server.as_raw_fd(), 7, false, true).unwrap();
        poller.wait(&mut again, Duration::from_millis(100)).unwrap();
        assert!(again.iter().any(|e| e.token == 7 && e.writable));

        poller.deregister(server.as_raw_fd()).unwrap();
        poller.wait(&mut again, Duration::from_millis(10)).unwrap();
        assert!(again.is_empty());
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(server.as_raw_fd(), 3, true, false).unwrap();
        drop(client);

        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller.wait(&mut events, Duration::from_millis(50)).unwrap();
            if events.iter().any(|e| e.token == 3 && e.readable) {
                break; // EOF surfaces as readable (read returns 0).
            }
            assert!(std::time::Instant::now() < deadline, "hangup never reported");
        }
    }

    #[test]
    fn rss_and_rlimit_helpers_answer() {
        let (soft, hard) = raise_nofile_limit().unwrap();
        assert!(soft >= 1 && hard >= soft);
        #[cfg(target_os = "linux")]
        assert!(current_rss_kb().unwrap() > 0);
    }

    #[test]
    fn sndbuf_can_be_pinned() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        set_sndbuf(server.as_raw_fd(), 8 * 1024).unwrap();
        set_rcvbuf(server.as_raw_fd(), 8 * 1024).unwrap();
    }
}
