//! Wire-level fault injection: a [`Read`]`+`[`Write`] wrapper that consults
//! the substrate's failpoint registry on every socket operation.
//!
//! This extends the `mdw_rdf::failpoint` discipline (so far covering fsync,
//! rename, journal I/O) to the serving layer's sockets. The chaos suite arms
//! these by name and drives a whole request through an in-memory stream on
//! one thread, making every wire failure deterministic; the TCP tests arm
//! the *global* registry so server pool threads see them too.
//!
//! Sites:
//!
//! * [`READ_STALL`] — the next read times out (a slow-loris client),
//! * [`READ_RESET`] — the next read fails with `ConnectionReset`,
//! * [`WRITE_PARTIAL`] — the next write delivers only half its buffer, then
//!   the connection breaks (the classic kill-mid-body), and
//! * [`WRITE_RESET`] — the next write fails with `BrokenPipe` outright.

use std::io::{self, Read, Write};

use mdw_rdf::failpoint;

/// Failpoint name: stall the next socket read (surfaces as a read timeout).
pub const READ_STALL: &str = "wire::read::stall";
/// Failpoint name: reset the connection on the next read.
pub const READ_RESET: &str = "wire::read::reset";
/// Failpoint name: deliver half the next write, then break the connection.
pub const WRITE_PARTIAL: &str = "wire::write::partial";
/// Failpoint name: break the connection on the next write.
pub const WRITE_RESET: &str = "wire::write::reset";
/// Failpoint name: fail the next `accept()` (checked by the listener loop,
/// not this wrapper).
pub const ACCEPT: &str = "wire::accept";
/// Failpoint name: simulate accept itself erroring (EMFILE-shaped storm) —
/// the event loop answers with listener backoff, not a hot spin. Checked by
/// the accept path, not this wrapper.
pub const ACCEPT_ERROR: &str = "wire::accept::error";

fn tripped(name: &str) -> bool {
    failpoint::check(name).is_err()
}

/// A stream whose reads and writes can be killed by armed failpoints. Once
/// a write fault fires the stream stays broken — exactly like a real peer
/// that went away.
pub struct FaultStream<S> {
    inner: S,
    broken: bool,
}

impl<S> FaultStream<S> {
    /// Wraps `inner`; faults fire only where failpoints are armed, so in
    /// production this is a zero-behavior-change passthrough.
    pub fn new(inner: S) -> Self {
        FaultStream { inner, broken: false }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.broken || tripped(READ_RESET) {
            self.broken = true;
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "injected read reset"));
        }
        if tripped(READ_STALL) {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "injected read stall"));
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.broken || tripped(WRITE_RESET) {
            self.broken = true;
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected write reset"));
        }
        if tripped(WRITE_PARTIAL) {
            // Deliver a strict prefix, then break: the client sees a frame
            // cut mid-body — which chunked encoding makes detectable.
            let half = (buf.len() / 2).max(1).min(buf.len());
            let sent = self.inner.write(&buf[..half])?;
            self.broken = true;
            return Ok(sent);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.broken {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected broken pipe"));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdw_rdf::failpoint::FailSpec;

    #[test]
    fn passthrough_when_nothing_is_armed() {
        failpoint::reset();
        let mut stream = FaultStream::new(io::Cursor::new(Vec::new()));
        assert_eq!(stream.write(b"hello").unwrap(), 5);
        stream.flush().unwrap();
        assert_eq!(stream.get_ref().get_ref(), b"hello");
    }

    #[test]
    fn partial_write_breaks_the_stream_for_good() {
        failpoint::reset();
        failpoint::arm(WRITE_PARTIAL, FailSpec::Once);
        let mut stream = FaultStream::new(io::Cursor::new(Vec::new()));
        let sent = stream.write(b"0123456789").unwrap();
        assert_eq!(sent, 5);
        let err = stream.write(b"more").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(stream.flush().is_err());
        failpoint::reset();
    }

    #[test]
    fn read_faults_surface_as_timeout_and_reset() {
        failpoint::reset();
        failpoint::arm(READ_STALL, FailSpec::Once);
        let mut stream = FaultStream::new(io::Cursor::new(b"data".to_vec()));
        let mut buf = [0u8; 4];
        assert_eq!(stream.read(&mut buf).unwrap_err().kind(), io::ErrorKind::TimedOut);
        // A stall is transient: the next read works.
        assert_eq!(stream.read(&mut buf).unwrap(), 4);

        failpoint::arm(READ_RESET, FailSpec::Once);
        let mut stream = FaultStream::new(io::Cursor::new(b"data".to_vec()));
        assert_eq!(
            stream.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        // A reset is terminal.
        assert!(stream.read(&mut buf).is_err());
        failpoint::reset();
    }
}
