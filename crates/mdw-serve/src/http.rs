//! A minimal HTTP/1.1 subset: incremental request parsing with hard size
//! limits and a chunked-transfer response writer.
//!
//! The server speaks just enough HTTP for curl and load generators:
//! GET/POST, headers, percent-encoded query strings, and HTTP/1.1
//! keep-alive. The parser is **incremental** — [`parse_head`] is fed a
//! growing buffer and says "need more bytes" until the blank line arrives —
//! because the event-driven transport ([`crate::server`]) never blocks on a
//! socket: bytes arrive when the readiness loop says so, and a request head
//! that outgrows its bounded buffer is rejected with `431` instead of
//! growing until OOM. Responses with bodies of unknown length use
//! `Transfer-Encoding: chunked`, which gives the wire a crucial property
//! for fault tolerance: a response is only *complete* when the terminal
//! `0\r\n\r\n` chunk arrives, so a connection killed mid-body can never be
//! mistaken for a full answer. The chaos suite leans on exactly this frame
//! discipline.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Longest accepted single header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Hard cap on the whole request head (request line + all headers). A head
/// that exceeds this without reaching its blank line is rejected with
/// `431 Request Header Fields Too Large`; the read buffer never grows past
/// it.
pub const MAX_HEAD: usize = 16 * 1024;
/// Largest request body the server will read (and discard).
pub const MAX_BODY: usize = 64 * 1024;

/// A parsed request head (the server ignores bodies beyond draining them).
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased as received).
    pub method: String,
    /// The path component of the target, percent-decoded.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header name → value, names lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Declared `Content-Length` (0 when absent) — the connection drains
    /// this many bytes before the next head can start.
    pub content_length: usize,
    /// Whether the client may reuse the connection: HTTP/1.1 defaults to
    /// keep-alive, HTTP/1.0 to close, and an explicit `Connection` header
    /// overrides either way.
    pub keep_alive: bool,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Header value (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str)
    }
}

/// Why a request could not be parsed. Maps to a `400`, `413`, or `431`
/// response.
#[derive(Debug)]
pub enum ParseError {
    /// The socket failed or timed out while reading the head.
    Io(io::Error),
    /// The peer closed before sending a full head.
    UnexpectedEof,
    /// The head was malformed (bad request line, header, or encoding).
    Malformed(&'static str),
    /// The declared body exceeded [`MAX_BODY`] (→ `413`).
    TooLarge(&'static str),
    /// The request line or headers exceeded their bounds (→ `431`).
    HeadTooLarge(&'static str),
}

impl ParseError {
    /// The status code this parse failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::TooLarge(_) => 413,
            ParseError::HeadTooLarge(_) => 431,
            _ => 400,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o: {e}"),
            ParseError::UnexpectedEof => f.write_str("connection closed mid-request"),
            ParseError::Malformed(what) => write!(f, "malformed request: {what}"),
            ParseError::TooLarge(what) => write!(f, "request too large: {what}"),
            ParseError::HeadTooLarge(what) => write!(f, "request head too large: {what}"),
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Percent-decodes a URL component; `+` becomes a space in query values.
pub fn percent_decode(text: &str, plus_is_space: bool) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(decoded) => {
                        out.push(decoded);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(pair, true), String::new()),
        })
        .collect()
}

/// Finds the end of the head in `buf`: the byte offset just past the first
/// empty line. Lines end at `\n`; a trailing `\r` is stripped. Returns
/// `None` when the blank line has not arrived yet.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut line_start = 0;
    for (i, b) in buf.iter().enumerate() {
        if *b == b'\n' {
            let mut line_len = i - line_start;
            if line_len > 0 && buf[i - 1] == b'\r' {
                line_len -= 1;
            }
            if line_len == 0 {
                return Some(i + 1);
            }
            line_start = i + 1;
        }
    }
    None
}

/// Incremental head parse. Feed the bytes received so far:
///
/// * `Ok(Some((request, consumed)))` — a full head was parsed; `consumed`
///   bytes (through the blank line) belong to it. Any remainder is the
///   body and/or a pipelined next request.
/// * `Ok(None)` — no blank line yet; read more. The caller's buffer is
///   bounded: once `buf.len()` passes [`MAX_HEAD`] this returns
///   `HeadTooLarge` instead, so a drip-feeding client cannot grow it
///   forever.
/// * `Err(…)` — the head is malformed or over a limit; the connection gets
///   an error response and closes.
pub fn parse_head(buf: &[u8]) -> Result<Option<(Request, usize)>, ParseError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return Err(ParseError::HeadTooLarge("head"));
        }
        // An over-long first line is rejected before its terminator shows
        // up — a request line alone must fit MAX_REQUEST_LINE.
        if !buf.contains(&b'\n') && buf.len() > MAX_REQUEST_LINE {
            return Err(ParseError::HeadTooLarge("request line"));
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD {
        return Err(ParseError::HeadTooLarge("head"));
    }
    let head =
        std::str::from_utf8(&buf[..head_end]).map_err(|_| ParseError::Malformed("non-utf8 head"))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    let request_line = lines.next().ok_or(ParseError::Malformed("empty head"))?;
    if request_line.len() > MAX_REQUEST_LINE {
        return Err(ParseError::HeadTooLarge("request line"));
    }
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(ParseError::Malformed("empty request line"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or(ParseError::Malformed("missing target"))?;
    let version = parts.next().ok_or(ParseError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported http version"));
    }
    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        if line.len() > MAX_HEADER_LINE {
            return Err(ParseError::HeadTooLarge("header line"));
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::HeadTooLarge("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("header without colon"))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    let content_length = match headers.get("content-length") {
        Some(v) => {
            let length: usize = v.parse().map_err(|_| ParseError::Malformed("bad content-length"))?;
            if length > MAX_BODY {
                return Err(ParseError::TooLarge("body"));
            }
            length
        }
        None => 0,
    };
    let keep_alive = match headers.get("connection").map(|v| v.to_ascii_lowercase()) {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => version.starts_with("HTTP/1.1"),
    };

    Ok(Some((
        Request {
            method,
            path: percent_decode(path_raw, false),
            query: parse_query(query_raw),
            headers,
            content_length,
            keep_alive,
        },
        head_end,
    )))
}

/// Blocking convenience over [`parse_head`]: reads from `stream` until one
/// full head arrives and drains the declared body (so the connection is
/// clean for the response even on POSTs). Used by unit tests and simple
/// callers; the server itself feeds [`parse_head`] from its event loop.
pub fn parse_request<S: Read>(mut stream: S) -> Result<Request, ParseError> {
    let mut buf = Vec::new();
    let mut scratch = [0u8; 4096];
    let (request, consumed) = loop {
        match parse_head(&buf)? {
            Some(done) => break done,
            None => {
                let got = stream.read(&mut scratch)?;
                if got == 0 {
                    return Err(ParseError::UnexpectedEof);
                }
                buf.extend_from_slice(&scratch[..got]);
            }
        }
    };
    // Drain the body: bytes already buffered count toward it.
    let mut remaining = request.content_length.saturating_sub(buf.len() - consumed);
    while remaining > 0 {
        let want = remaining.min(scratch.len());
        let got = stream.read(&mut scratch[..want])?;
        if got == 0 {
            return Err(ParseError::UnexpectedEof);
        }
        remaining -= got;
    }
    Ok(request)
}

/// The human phrase for the status codes the server emits.
pub fn status_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn connection_header(keep_alive: bool) -> &'static str {
    if keep_alive {
        "keep-alive"
    } else {
        "close"
    }
}

/// Writes a complete fixed-length response (status + headers + body) in one
/// go. Used for errors, health checks, and stats — everything that is not a
/// row stream.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nConnection: {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        status_phrase(status),
        connection_header(keep_alive),
        content_type,
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Starts a chunked response: status + headers, no body yet. Rows follow
/// via [`write_chunk`]; the frame is complete only after [`finish_chunks`].
pub fn start_chunked<W: Write>(
    w: &mut W,
    status: u16,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
    content_type: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nConnection: {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n",
        status,
        status_phrase(status),
        connection_header(keep_alive),
        content_type,
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())
}

/// Writes one chunk. Empty payloads are skipped (an empty chunk would read
/// as the terminator).
pub fn write_chunk<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", payload.len())?;
    w.write_all(payload)?;
    w.write_all(b"\r\n")
}

/// Terminates a chunked body. Until this lands on the wire the response is
/// *not* complete — the client-side parser must treat a missing terminator
/// as a broken transfer.
pub fn finish_chunks<W: Write>(w: &mut W) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// Appends one chunk frame (`size\r\npayload\r\n`) to a buffer — the
/// event-driven streamer's building block: frames are staged in the
/// connection's bounded write buffer and leave via the readiness loop.
pub fn push_chunk(out: &mut Vec<u8>, payload: &[u8]) {
    if payload.is_empty() {
        return;
    }
    out.extend_from_slice(format!("{:x}\r\n", payload.len()).as_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_line_query_and_headers() {
        let raw = b"GET /search?q=client%20data&max=3&flag HTTP/1.1\r\n\
                    Host: localhost\r\n\
                    X-Tenant: risk\r\n\
                    \r\n";
        let req = parse_request(&raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/search");
        assert_eq!(req.query_param("q"), Some("client data"));
        assert_eq!(req.query_param("max"), Some("3"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.header("x-tenant"), Some("risk"));
        assert_eq!(req.header("X-Tenant"), Some("risk"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_header_overrides_the_version_default() {
        let close = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(!parse_request(&close[..]).unwrap().keep_alive);
        let ten = b"GET / HTTP/1.0\r\n\r\n";
        assert!(!parse_request(&ten[..]).unwrap().keep_alive);
        let ten_ka = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        assert!(parse_request(&ten_ka[..]).unwrap().keep_alive);
    }

    #[test]
    fn incremental_parse_waits_for_the_blank_line() {
        let raw = b"GET /x HTTP/1.1\r\nHost: a\r\n\r\ntrailing";
        // Every strict prefix before the blank line: need more bytes.
        for cut in 0..raw.len() - 9 {
            assert!(
                parse_head(&raw[..cut]).unwrap().is_none(),
                "cut at {cut} should be incomplete"
            );
        }
        let (req, consumed) = parse_head(raw).unwrap().unwrap();
        assert_eq!(req.path, "/x");
        assert_eq!(consumed, raw.len() - 8, "body bytes are not consumed");
    }

    #[test]
    fn drains_declared_bodies() {
        let raw = b"POST /admin/drain HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse_request(&raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/admin/drain");
        assert_eq!(req.content_length, 5);
    }

    #[test]
    fn rejects_oversized_request_lines_with_431() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat(b'a').take(MAX_REQUEST_LINE + 10));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let err = parse_request(&raw[..]).unwrap_err();
        assert!(matches!(err, ParseError::HeadTooLarge(_)), "{err}");
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn rejects_oversized_heads_at_the_boundary() {
        // A head that stays under MAX_HEAD parses; one line more tips it
        // over and must be rejected even though no blank line arrived.
        let mut head = b"GET / HTTP/1.1\r\n".to_vec();
        let filler = b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
        while head.len() + filler.len() <= MAX_HEAD {
            head.extend_from_slice(filler);
        }
        // Still incomplete (no blank line), not yet over the cap…
        assert!(parse_head(&head).unwrap().is_none());
        // …but the next filler line pushes past MAX_HEAD: reject, bounded.
        head.extend_from_slice(filler);
        let err = parse_head(&head).unwrap_err();
        assert_eq!(err.status(), 431, "{err}");

        // Too many headers is also a 431, even under the byte cap.
        let mut many = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            many.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        assert_eq!(parse_head(&many).unwrap_err().status(), 431);
    }

    #[test]
    fn oversized_bodies_stay_413() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        let err = parse_head(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::TooLarge(_)));
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn rejects_truncated_heads() {
        let raw = b"GET /search HTTP/1.1\r\nHost: x";
        // EOF mid-header: never a valid request.
        assert!(parse_request(&raw[..]).is_err());
    }

    #[test]
    fn percent_decode_handles_plus_and_bad_escapes() {
        assert_eq!(percent_decode("a+b%2Fc", true), "a b/c");
        assert_eq!(percent_decode("a+b", false), "a+b");
        assert_eq!(percent_decode("50%", false), "50%");
        assert_eq!(percent_decode("%zz", false), "%zz");
    }

    #[test]
    fn chunked_frames_are_well_formed() {
        let mut out = Vec::new();
        start_chunked(&mut out, 200, false, &[], "application/x-ndjson").unwrap();
        write_chunk(&mut out, b"{\"a\":1}\n").unwrap();
        write_chunk(&mut out, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut out, b"{\"b\":2}\n").unwrap();
        finish_chunks(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: close"));
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }

    #[test]
    fn push_chunk_matches_write_chunk() {
        let mut pushed = Vec::new();
        push_chunk(&mut pushed, b"{\"a\":1}\n");
        push_chunk(&mut pushed, b"");
        let mut written = Vec::new();
        write_chunk(&mut written, b"{\"a\":1}\n").unwrap();
        write_chunk(&mut written, b"").unwrap();
        assert_eq!(pushed, written);
    }

    #[test]
    fn keep_alive_responses_advertise_it() {
        let mut out = Vec::new();
        write_response(&mut out, 200, true, &[], "text/plain", b"ok\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive"), "{text}");
    }
}
