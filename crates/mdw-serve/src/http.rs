//! A minimal HTTP/1.1 subset: request parsing with hard size limits and a
//! chunked-transfer response writer.
//!
//! The server speaks just enough HTTP for curl and load generators:
//! one request per connection (`Connection: close` on every response),
//! GET/POST, headers, and percent-encoded query strings. Responses with
//! bodies of unknown length use `Transfer-Encoding: chunked`, which gives
//! the wire a crucial property for fault tolerance: a response is only
//! *complete* when the terminal `0\r\n\r\n` chunk arrives, so a connection
//! killed mid-body can never be mistaken for a full answer. The chaos suite
//! leans on exactly this frame discipline.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Longest accepted single header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Largest request body the server will read (and discard).
pub const MAX_BODY: usize = 64 * 1024;

/// A parsed request head (the server ignores bodies beyond draining them).
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased as received).
    pub method: String,
    /// The path component of the target, percent-decoded.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header name → value, names lower-cased.
    pub headers: BTreeMap<String, String>,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Header value (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str)
    }
}

/// Why a request could not be parsed. Maps to a `400` (or `413`) response.
#[derive(Debug)]
pub enum ParseError {
    /// The socket failed or timed out while reading the head.
    Io(io::Error),
    /// The peer closed before sending a full head.
    UnexpectedEof,
    /// The head was malformed (bad request line, header, or encoding).
    Malformed(&'static str),
    /// The request exceeded a size limit.
    TooLarge(&'static str),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o: {e}"),
            ParseError::UnexpectedEof => f.write_str("connection closed mid-request"),
            ParseError::Malformed(what) => write!(f, "malformed request: {what}"),
            ParseError::TooLarge(what) => write!(f, "request too large: {what}"),
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads one line (up to CRLF or LF), enforcing `limit` bytes.
fn read_line<R: BufRead>(
    reader: &mut R,
    limit: usize,
    what: &'static str,
) -> Result<String, ParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                if line.is_empty() {
                    return Err(ParseError::UnexpectedEof);
                }
                break;
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > limit {
                    return Err(ParseError::TooLarge(what));
                }
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ParseError::Malformed("non-utf8 header bytes"))
}

/// Percent-decodes a URL component; `+` becomes a space in query values.
pub fn percent_decode(text: &str, plus_is_space: bool) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(decoded) => {
                        out.push(decoded);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(pair, true), String::new()),
        })
        .collect()
}

/// Parses one request head from `stream` and drains any declared body (so
/// the connection is clean for the response even on POSTs).
pub fn parse_request<S: Read>(stream: S) -> Result<Request, ParseError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader, MAX_REQUEST_LINE, "request line")?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseError::Malformed("empty request line"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or(ParseError::Malformed("missing target"))?;
    let version = parts.next().ok_or(ParseError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported http version"));
    }
    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    let mut headers = BTreeMap::new();
    loop {
        let line = read_line(&mut reader, MAX_HEADER_LINE, "header line")?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::TooLarge("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("header without colon"))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    if let Some(length) = headers.get("content-length") {
        let length: usize = length
            .parse()
            .map_err(|_| ParseError::Malformed("bad content-length"))?;
        if length > MAX_BODY {
            return Err(ParseError::TooLarge("body"));
        }
        let mut remaining = length;
        let mut sink = [0u8; 1024];
        while remaining > 0 {
            let want = remaining.min(sink.len());
            let got = reader.read(&mut sink[..want])?;
            if got == 0 {
                return Err(ParseError::UnexpectedEof);
            }
            remaining -= got;
        }
    }

    Ok(Request {
        method,
        path: percent_decode(path_raw, false),
        query: parse_query(query_raw),
        headers,
    })
}

/// The human phrase for the status codes the server emits.
pub fn status_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response (status + headers + body) in one
/// go. Used for errors, health checks, and stats — everything that is not a
/// row stream.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nConnection: close\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        status_phrase(status),
        content_type,
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Starts a chunked response: status + headers, no body yet. Rows follow
/// via [`write_chunk`]; the frame is complete only after [`finish_chunks`].
pub fn start_chunked<W: Write>(
    w: &mut W,
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nConnection: close\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n",
        status,
        status_phrase(status),
        content_type,
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())
}

/// Writes one chunk. Empty payloads are skipped (an empty chunk would read
/// as the terminator).
pub fn write_chunk<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", payload.len())?;
    w.write_all(payload)?;
    w.write_all(b"\r\n")
}

/// Terminates a chunked body. Until this lands on the wire the response is
/// *not* complete — the client-side parser must treat a missing terminator
/// as a broken transfer.
pub fn finish_chunks<W: Write>(w: &mut W) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_line_query_and_headers() {
        let raw = b"GET /search?q=client%20data&max=3&flag HTTP/1.1\r\n\
                    Host: localhost\r\n\
                    X-Tenant: risk\r\n\
                    \r\n";
        let req = parse_request(&raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/search");
        assert_eq!(req.query_param("q"), Some("client data"));
        assert_eq!(req.query_param("max"), Some("3"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.header("x-tenant"), Some("risk"));
        assert_eq!(req.header("X-Tenant"), Some("risk"));
    }

    #[test]
    fn drains_declared_bodies() {
        let raw = b"POST /admin/drain HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse_request(&raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/admin/drain");
    }

    #[test]
    fn rejects_oversized_request_lines() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat(b'a').take(MAX_REQUEST_LINE + 10));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert!(matches!(
            parse_request(&raw[..]),
            Err(ParseError::TooLarge(_))
        ));
    }

    #[test]
    fn rejects_truncated_heads() {
        let raw = b"GET /search HTTP/1.1\r\nHost: x";
        // EOF mid-header: never a valid request.
        assert!(parse_request(&raw[..]).is_err());
    }

    #[test]
    fn percent_decode_handles_plus_and_bad_escapes() {
        assert_eq!(percent_decode("a+b%2Fc", true), "a b/c");
        assert_eq!(percent_decode("a+b", false), "a+b");
        assert_eq!(percent_decode("50%", false), "50%");
        assert_eq!(percent_decode("%zz", false), "%zz");
    }

    #[test]
    fn chunked_frames_are_well_formed() {
        let mut out = Vec::new();
        start_chunked(&mut out, 200, &[], "application/x-ndjson").unwrap();
        write_chunk(&mut out, b"{\"a\":1}\n").unwrap();
        write_chunk(&mut out, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut out, b"{\"b\":2}\n").unwrap();
        finish_chunks(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
