//! # mdw-serve — the warehouse's serving layer, built failure-first
//!
//! The paper's warehouse is a shared bank-wide *service*: SODA-style search
//! frontends, lineage tools, and ad-hoc SPARQL consumers all query one
//! graph concurrently. This crate is that front door — a long-lived
//! HTTP/1.1 server (hand-rolled subset, no new dependencies) on an
//! event-driven core: a single epoll/poll event loop ([`epoll`], [`server`])
//! owns every nonblocking socket, each connection is an explicit state
//! machine ([`conn`]) with bounded buffers and per-state deadlines, and a
//! small worker pool executes queries so connections are decoupled from
//! threads. It pushes the robustness machinery of the substrate over the
//! wire, where real failures live:
//!
//! * **Budgets reach the socket** — `X-Deadline-Ms` / `X-Max-Rows` become a
//!   [`QueryBudget`](mdw_rdf::budget::QueryBudget); response bytes are
//!   charged *as they leave*, and a tripped budget yields a truthful
//!   `Truncated` summary, never a silently short answer.
//! * **Admission is per tenant** ([`tenant`]) — `X-Tenant` maps to a
//!   bounded FIFO gate; overload sheds `503 + Retry-After` scaled by queue
//!   depth.
//! * **Slow clients cannot park resources** ([`conn`]) — a head-read
//!   deadline defeats slowloris drip-feeders, a write-stall deadline
//!   defeats readers that stop reading mid-stream, and idle keep-alive
//!   connections are reaped; every firing is counted and visible in
//!   `GET /admin/stats`.
//! * **The wire can be killed deterministically** ([`fault`]) — the
//!   substrate's failpoint registry extends to reads, writes, accepts, and
//!   accept storms, so a chaos suite can cut every seam and assert no
//!   deadlock, no leaked permit, no half-frame that parses as complete
//!   ([`client`] is the strict judge of that).
//! * **Shutdown is a first-class path** ([`drain`], [`signal`]) — SIGTERM
//!   stops the intake, reaps parked keep-alive connections, lets in-flight
//!   requests finish until the drain grace, then cancels stragglers, which
//!   still return valid truncated prefixes.
//!
//! The connection machine is transport-agnostic and the blocking driver
//! ([`conn::handle_connection`]) is generic over `Read + Write`, so every
//! one of those behaviors is tested without a socket, on one thread,
//! deterministically.

pub mod chaos;
pub mod client;
pub mod conn;
pub mod drain;
pub mod epoll;
pub mod fault;
pub mod http;
pub mod router;
pub mod server;
pub mod signal;
pub mod tenant;

pub use conn::handle_connection;
pub use drain::DrainController;
pub use router::ConnOutcome;
pub use server::{serve, Counters, ServeState, ServerConfig, ServerHandle};
pub use tenant::TenantGates;
