//! Request routing: parse → admit → budget → query → stream.
//!
//! The handler is generic over any [`Read`]`+`[`Write`] stream, which is
//! the crate's keystone for determinism: the chaos suite drives a whole
//! request through an in-memory duplex on the test thread — thread-local
//! failpoints and all — while production hands in a [`std::net::TcpStream`]
//! wrapped in a [`FaultStream`](crate::fault::FaultStream).
//!
//! Responses stream as chunked `application/x-ndjson`: one JSON object per
//! row, then exactly one `{"summary": …}` line, then the chunk terminator.
//! The budget is charged **before** each row's bytes leave the socket, so
//! the byte cap reflects what the client actually received, and the summary
//! truthfully reports any truncation (budget, byte cap, deadline, drain
//! cancellation). A frame missing its summary or terminator is *detectably*
//! incomplete — that, not luck, is what the wire-failure model rests on.

use std::io::{Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use mdw_core::admission::QueryClass;
use mdw_core::error::MdwError;
use mdw_core::lineage::LineageRequest;
use mdw_core::search::SearchRequest;
use mdw_rdf::budget::{
    CancellationToken, Completeness, MonotonicTime, QueryBudget, TruncationReason,
};
use mdw_rdf::vocab;
use mdw_rdf::Term;
use mdw_sparql::SemMatch;
use serde_json::{json, Value};

use crate::chaos;
use crate::fault::FaultStream;
use crate::http::{self, ParseError, Request};
use crate::server::ServeState;
use crate::tenant::DEFAULT_TENANT;

/// Delay point: armed by drain tests to hold a request right before its
/// query runs.
pub const PAUSE_BEFORE_QUERY: &str = "serve::before_query";
/// Delay point: armed by drain tests to hold a request between its query
/// finishing and its rows streaming out.
pub const PAUSE_BEFORE_ROWS: &str = "serve::before_rows";

/// How one connection ended — the accept loop's bookkeeping signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnOutcome {
    /// A response frame was completed (including error responses).
    Served,
    /// The request never parsed (bad head, timeout, reset).
    BadRequest,
    /// The wire died mid-response; the frame is detectably incomplete.
    WireError,
    /// The handler panicked; a `500` was attempted.
    Panicked,
}

/// Serves exactly one request from `stream`, with wire fault injection and
/// panic isolation. Never panics outward; never leaks a permit or an
/// in-flight registration (both are RAII and released during unwind).
pub fn handle_connection<S: Read + Write>(state: &Arc<ServeState>, stream: S) -> ConnOutcome {
    let mut stream = FaultStream::new(stream);
    let outcome = catch_unwind(AssertUnwindSafe(|| handle_request(state, &mut stream)));
    match outcome {
        Ok(outcome) => outcome,
        Err(_) => {
            state.counters.panics.fetch_add(1, Ordering::Relaxed);
            // Best effort: if the head already went out this produces junk
            // past a started frame, which chunked framing keeps detectable.
            let _ = http::write_response(
                &mut stream,
                500,
                &[],
                "application/json",
                b"{\"error\":\"internal server error\"}\n",
            );
            ConnOutcome::Panicked
        }
    }
}

fn handle_request<S: Read + Write>(state: &Arc<ServeState>, stream: &mut S) -> ConnOutcome {
    let request = match http::parse_request(&mut *stream) {
        Ok(request) => request,
        Err(e) => {
            let status = match e {
                ParseError::TooLarge(_) => 413,
                _ => 400,
            };
            let body = format!("{{\"error\":{}}}\n", json_string(&e.to_string()));
            let _ = http::write_response(stream, status, &[], "application/json", body.as_bytes());
            return ConnOutcome::BadRequest;
        }
    };
    route(state, &request, stream)
}

fn route<S: Write>(state: &Arc<ServeState>, request: &Request, stream: &mut S) -> ConnOutcome {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => fixed(state, stream, 200, "text/plain", b"ok\n"),
        ("GET", "/stats") => {
            let body = format!("{}\n", stats_json(state));
            fixed(state, stream, 200, "application/json", body.as_bytes())
        }
        ("POST", "/admin/drain") => {
            state.request_drain();
            fixed(state, stream, 202, "application/json", b"{\"draining\":true}\n")
        }
        ("GET", "/search") | ("GET", "/lineage") | ("GET", "/sparql") => {
            query_endpoint(state, request, stream)
        }
        (_, "/healthz" | "/stats" | "/search" | "/lineage" | "/sparql" | "/admin/drain") => fixed(
            state,
            stream,
            405,
            "application/json",
            b"{\"error\":\"method not allowed\"}\n",
        ),
        _ => fixed(state, stream, 404, "application/json", b"{\"error\":\"no such endpoint\"}\n"),
    }
}

fn fixed<S: Write>(
    state: &ServeState,
    stream: &mut S,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> ConnOutcome {
    match http::write_response(stream, status, &[], content_type, body) {
        Ok(()) => {
            state.counters.served.fetch_add(1, Ordering::Relaxed);
            ConnOutcome::Served
        }
        Err(_) => {
            state.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
            ConnOutcome::WireError
        }
    }
}

fn overloaded_response<S: Write>(
    state: &ServeState,
    stream: &mut S,
    retry_after: Duration,
    detail: &str,
) -> ConnOutcome {
    state.counters.sheds.fetch_add(1, Ordering::Relaxed);
    // Retry-After is whole seconds; round up so the hint never understates.
    let secs = retry_after.as_secs() + u64::from(retry_after.subsec_nanos() > 0);
    let headers = [("Retry-After", secs.max(1).to_string())];
    let body = format!(
        "{{\"error\":\"overloaded\",\"detail\":{},\"retry_after_ms\":{}}}\n",
        json_string(detail),
        retry_after.as_millis()
    );
    match http::write_response(stream, 503, &headers, "application/json", body.as_bytes()) {
        Ok(()) => ConnOutcome::Served,
        Err(_) => {
            state.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
            ConnOutcome::WireError
        }
    }
}

fn query_endpoint<S: Write>(state: &ServeState, request: &Request, stream: &mut S) -> ConnOutcome {
    let class = match request.path.as_str() {
        "/search" => QueryClass::Search,
        "/lineage" => QueryClass::Lineage,
        _ => QueryClass::Sparql,
    };

    if state.drain.is_draining() {
        return overloaded_response(state, stream, state.config.drain_grace, "server draining");
    }

    let tenant = request.header("x-tenant").unwrap_or(DEFAULT_TENANT);
    // RAII permit: held for the whole request, released on every exit path.
    let _permit = match &state.tenants {
        Some(gates) => match gates.admit(tenant, class) {
            Ok(permit) => Some(permit),
            Err(shed) => {
                let detail = format!("tenant {tenant}: {shed}");
                return overloaded_response(state, stream, shed.retry_after, &detail);
            }
        },
        None => None,
    };

    // Budget: wire headers → deadline, row cap, byte cap, cancellation.
    let deadline = request
        .header("x-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(state.config.default_deadline)
        .min(state.config.max_deadline);
    let max_rows = request
        .header("x-max-rows")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(state.config.max_rows)
        .min(state.config.max_rows);
    let token = CancellationToken::new();
    let _inflight = state.drain.register(token.clone());
    let budget = QueryBudget::unlimited()
        .with_deadline(deadline, Arc::new(MonotonicTime::new()))
        .with_max_rows(max_rows)
        .with_max_bytes(state.config.max_response_bytes)
        .with_cancellation(&token);

    chaos::pause(PAUSE_BEFORE_QUERY, &token);

    // Chaos hook: lets the suite prove panic containment end-to-end — the
    // unwind must release the permit, the in-flight registration, and the
    // connection slot, and the process must keep serving.
    if request.header("x-chaos-panic").is_some() {
        panic!("injected handler panic (X-Chaos-Panic)");
    }

    let answer = match class {
        QueryClass::Search => run_search(state, request, budget.clone()),
        QueryClass::Lineage => run_lineage(state, request, budget.clone()),
        QueryClass::Sparql => run_sparql(state, request, budget.clone()),
    };
    let answer = match answer {
        Ok(answer) => answer,
        Err(RouteError::BadRequest(msg)) => {
            let body = format!("{{\"error\":{}}}\n", json_string(&msg));
            return fixed(state, stream, 400, "application/json", body.as_bytes());
        }
        Err(RouteError::Warehouse(MdwError::Overloaded(o))) => {
            return overloaded_response(state, stream, o.retry_after, &o.to_string());
        }
        Err(RouteError::Warehouse(MdwError::NotFound(what))) => {
            let body = format!("{{\"error\":{}}}\n", json_string(&format!("not found: {what}")));
            return fixed(state, stream, 404, "application/json", body.as_bytes());
        }
        Err(RouteError::Warehouse(MdwError::InvalidRequest(what))) => {
            let body = format!("{{\"error\":{}}}\n", json_string(&what));
            return fixed(state, stream, 400, "application/json", body.as_bytes());
        }
        Err(RouteError::Warehouse(other)) => {
            let body = format!("{{\"error\":{}}}\n", json_string(&other.to_string()));
            return fixed(state, stream, 500, "application/json", body.as_bytes());
        }
    };

    chaos::pause(PAUSE_BEFORE_ROWS, &token);
    stream_answer(state, stream, &budget, answer)
}

/// A fully-computed answer, ready to stream: pre-encoded ndjson rows plus
/// the query-side completeness verdict.
struct Answer {
    rows: Vec<String>,
    completeness: Completeness,
    degraded: bool,
}

enum RouteError {
    BadRequest(String),
    Warehouse(MdwError),
}

impl From<MdwError> for RouteError {
    fn from(e: MdwError) -> Self {
        RouteError::Warehouse(e)
    }
}

fn stream_answer<S: Write>(
    state: &ServeState,
    stream: &mut S,
    budget: &QueryBudget,
    answer: Answer,
) -> ConnOutcome {
    let mut wire_reason: Option<TruncationReason> = None;
    let mut sent = 0usize;
    let started = http::start_chunked(stream, 200, &[], "application/x-ndjson");
    if started.is_err() {
        state.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
        return ConnOutcome::WireError;
    }
    for line in &answer.rows {
        // Deadline or drain cancellation lands between rows…
        if let Err(reason) = budget.check_time() {
            wire_reason = Some(reason);
            break;
        }
        // …and the byte cap is charged before the row leaves the socket.
        if let Err(reason) = budget.charge_bytes(line.len() as u64) {
            wire_reason = Some(reason);
            break;
        }
        if http::write_chunk(stream, line.as_bytes()).is_err() {
            state.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
            return ConnOutcome::WireError;
        }
        sent += 1;
    }

    let reason = wire_reason.or(match answer.completeness {
        Completeness::Complete => None,
        Completeness::Truncated { reason } => Some(reason),
    });
    let summary = json!({
        "summary": {
            "rows": sent,
            "complete": reason.is_none(),
            "truncated": reason.map(|r| r.to_string()),
            "degraded": answer.degraded,
            "bytes": budget.bytes_charged(),
        }
    });
    let line = format!("{}\n", serde_json::to_string(&summary).expect("summary serializes"));
    if http::write_chunk(stream, line.as_bytes()).is_err() || http::finish_chunks(stream).is_err() {
        state.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
        return ConnOutcome::WireError;
    }
    state.counters.served.fetch_add(1, Ordering::Relaxed);
    ConnOutcome::Served
}

fn run_search(
    state: &ServeState,
    request: &Request,
    budget: QueryBudget,
) -> Result<Answer, RouteError> {
    let term = request
        .query_param("q")
        .filter(|q| !q.is_empty())
        .ok_or_else(|| RouteError::BadRequest("search needs ?q=TERM".to_string()))?;
    let mut search = SearchRequest::new(term).with_budget(budget);
    if request.query_param("synonyms").is_some() {
        search.expand_synonyms = true;
    }
    if let Some(max) = request.query_param("max").and_then(|v| v.parse().ok()) {
        search.max_results = max;
    }
    let results = state.warehouse.search(&search)?;
    let mut rows = Vec::new();
    for group in &results.groups {
        for hit in &group.hits {
            rows.push(ndjson_line(json!({
                "class": group.label.clone(),
                "instance": hit.instance.to_string(),
                "name": hit.name.clone(),
                "matched": hit.matched_term.clone(),
            })));
        }
    }
    Ok(Answer { rows, completeness: results.completeness, degraded: results.degraded })
}

fn run_lineage(
    state: &ServeState,
    request: &Request,
    budget: QueryBudget,
) -> Result<Answer, RouteError> {
    let item = request
        .query_param("item")
        .filter(|i| !i.is_empty())
        .ok_or_else(|| RouteError::BadRequest("lineage needs ?item=NAME".to_string()))?;
    let start = if item.starts_with("http://") || item.starts_with("https://") {
        Term::iri(item)
    } else {
        Term::iri(vocab::cs::dwh(item))
    };
    let mut lineage = match request.query_param("dir") {
        Some("up") | Some("upstream") => LineageRequest::upstream(start),
        _ => LineageRequest::downstream(start),
    };
    lineage = lineage.with_budget(budget);
    if let Some(depth) = request.query_param("depth").and_then(|v| v.parse().ok()) {
        lineage.max_depth = depth;
    }
    let result = state.warehouse.lineage(&lineage)?;
    let rows = result
        .endpoints
        .iter()
        .map(|endpoint| {
            ndjson_line(json!({
                "node": endpoint.node.to_string(),
                "name": endpoint.name.clone(),
                "distance": endpoint.distance,
                "classes": endpoint
                    .classes
                    .iter()
                    .map(|c| Value::String(c.to_string()))
                    .collect::<Vec<_>>(),
            }))
        })
        .collect();
    Ok(Answer { rows, completeness: result.completeness, degraded: result.degraded })
}

fn run_sparql(
    state: &ServeState,
    request: &Request,
    budget: QueryBudget,
) -> Result<Answer, RouteError> {
    let pattern = request
        .query_param("query")
        .filter(|q| !q.is_empty())
        .ok_or_else(|| RouteError::BadRequest("sparql needs ?query=PATTERN".to_string()))?;
    let mut sem = SemMatch::new(pattern)
        .alias("dm", vocab::cs::DM)
        .alias("dt", vocab::cs::DT)
        .alias("dwh", vocab::cs::DWH);
    if request.query_param("no-rulebase").is_none() {
        sem = sem.rulebase("OWLPRIME");
    }
    let output = state.warehouse.sem_match_with_budget(&sem, &budget)?;
    let rows = output
        .rows
        .iter()
        .map(|row| {
            let entries: Vec<(String, Value)> = output
                .columns
                .iter()
                .zip(row.iter())
                .map(|(col, term)| {
                    let value = match term {
                        Some(t) => Value::String(t.to_string()),
                        None => Value::Null,
                    };
                    (col.clone(), value)
                })
                .collect();
            ndjson_line(Value::Object(entries))
        })
        .collect();
    Ok(Answer { rows, completeness: output.completeness, degraded: output.degraded })
}

fn ndjson_line(value: Value) -> String {
    format!("{}\n", serde_json::to_string(&value).expect("row serializes"))
}

fn json_string(text: &str) -> String {
    serde_json::to_string(&Value::String(text.to_string())).expect("string serializes")
}

/// The `/stats` document.
pub fn stats_json(state: &ServeState) -> String {
    let tenants: Vec<Value> = state
        .tenants
        .as_ref()
        .map(|gates| {
            gates
                .stats()
                .into_iter()
                .map(|(tenant, stats, active, waiting)| {
                    json!({
                        "tenant": tenant,
                        "admitted": stats.total_admitted(),
                        "shed": stats.total_shed(),
                        "active": active,
                        "waiting": waiting,
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    let doc = json!({
        "served": state.counters.served.load(Ordering::Relaxed),
        "sheds": state.counters.sheds.load(Ordering::Relaxed),
        "panics": state.counters.panics.load(Ordering::Relaxed),
        "wire_errors": state.counters.wire_errors.load(Ordering::Relaxed),
        "accept_errors": state.counters.accept_errors.load(Ordering::Relaxed),
        "capacity_rejects": state.counters.capacity_rejects.load(Ordering::Relaxed),
        "inflight": state.drain.inflight(),
        "draining": state.drain.is_draining(),
        "tenants": tenants,
    });
    serde_json::to_string(&doc).expect("stats serialize")
}
