//! Request routing, split along the event-driven transport's seam:
//!
//! * [`prepare`] runs **on the event loop** and must never block: it maps a
//!   parsed request either to a ready-to-stage [`StagedResponse`] (health,
//!   stats, admin, 404/405) or to a [`QueryJob`] for the worker pool.
//! * [`QueryJob::run`] runs **on a worker thread** and may block: drain
//!   check, per-tenant admission (bounded FIFO wait), budget construction,
//!   the chaos pauses, and the query itself. It returns either a fixed
//!   response (errors, sheds) or a [`RowStreamer`].
//! * [`RowStreamer`] runs **back on the event loop**, interleaved with
//!   socket readiness: each step charges the budget (deadline, byte cap,
//!   drain cancellation) *before* appending one row's chunk frame to the
//!   connection's bounded write buffer, then a truthful summary and the
//!   chunk terminator. It holds the request's admission permit and
//!   in-flight registration until the frame is complete, so drain and the
//!   permit audit see streaming requests as live.
//!
//! Responses stream as chunked `application/x-ndjson`: one JSON object per
//! row, then exactly one `{"summary": …}` line, then the chunk terminator.
//! A frame missing its summary or terminator is *detectably* incomplete —
//! that, not luck, is what the wire-failure model rests on.
//!
//! The legacy blocking entry point ([`handle_connection`]) drives the same
//! state machine over any `Read + Write` stream on the calling thread —
//! the chaos suite's determinism keystone.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use mdw_core::admission::{Permit, QueryClass};
use mdw_core::answer::AnswerRequest;
use mdw_core::error::MdwError;
use mdw_core::lineage::LineageRequest;
use mdw_core::search::SearchRequest;
use mdw_rdf::budget::{
    CancellationToken, Completeness, MonotonicTime, QueryBudget, TruncationReason,
};
use mdw_rdf::vocab;
use mdw_rdf::Term;
use mdw_sparql::SemMatch;
use serde_json::{json, Value};

use crate::chaos;
use crate::drain::InFlightGuard;
use crate::http::{self, Request};
use crate::server::ServeState;
use crate::tenant::DEFAULT_TENANT;

pub use crate::conn::handle_connection;

/// Delay point: armed by drain tests to hold a request right before its
/// query runs.
pub const PAUSE_BEFORE_QUERY: &str = "serve::before_query";
/// Delay point: armed by drain tests to hold a request between its query
/// finishing and its rows streaming out.
pub const PAUSE_BEFORE_ROWS: &str = "serve::before_rows";

/// How one connection ended — the transport's bookkeeping signal. With
/// keep-alive a connection may carry many requests; this reports the last
/// notable thing that happened on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnOutcome {
    /// A response frame was completed (including error responses).
    Served,
    /// A request never parsed (bad head, timeout, reset, oversized).
    BadRequest,
    /// The wire died mid-response; the frame is detectably incomplete.
    WireError,
    /// The handler panicked; a `500` was attempted.
    Panicked,
}

/// A fixed-length response, fully decided, ready for the connection to
/// encode into its write buffer.
pub struct StagedResponse {
    /// The status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// The complete body.
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Bump the `served` counter when this response finishes flushing.
    pub count_served: bool,
    /// Count a failed flush as a wire error (routed responses do; responses
    /// to unparseable requests do not — the peer was already broken).
    pub count_wire_error: bool,
    /// Force the connection closed after this response regardless of the
    /// request's keep-alive wish.
    pub close: bool,
    /// What the connection's outcome becomes once this response lands.
    pub outcome: ConnOutcome,
}

impl StagedResponse {
    fn routed(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        StagedResponse {
            status,
            content_type,
            body,
            extra_headers: Vec::new(),
            count_served: true,
            count_wire_error: true,
            close: false,
            outcome: ConnOutcome::Served,
        }
    }

    fn error_json(status: u16, message: &str) -> Self {
        let body = format!("{{\"error\":{}}}\n", json_string(message)).into_bytes();
        StagedResponse::routed(status, "application/json", body)
    }

    /// The response to a request that never parsed: best-effort, counted as
    /// nothing, always closes (the connection's framing is untrustworthy).
    pub fn parse_error(status: u16, message: &str) -> Self {
        StagedResponse {
            count_served: false,
            count_wire_error: false,
            close: true,
            outcome: ConnOutcome::BadRequest,
            ..StagedResponse::error_json(status, message)
        }
    }

    /// The `500` attempted after a handler panic (counted as nothing; the
    /// `panics` counter is bumped where the unwind is caught).
    pub fn panic_response() -> Self {
        StagedResponse {
            count_served: false,
            count_wire_error: false,
            close: true,
            outcome: ConnOutcome::Panicked,
            ..StagedResponse::error_json(500, "internal server error")
        }
    }

    /// The inline `503` for connections past the capacity bound.
    pub fn capacity_shed() -> Self {
        StagedResponse {
            extra_headers: vec![("Retry-After", "1".to_string())],
            count_served: false,
            count_wire_error: false,
            close: true,
            ..StagedResponse::error_json(503, "server at connection capacity")
        }
    }
}

/// What [`prepare`] decided about a request.
pub enum Prepared {
    /// Answer immediately from the event loop.
    Fixed(StagedResponse),
    /// Hand to the worker pool; the result comes back asynchronously.
    Query(QueryJob),
}

/// Routes a parsed request. Runs on the event loop: no blocking, no query
/// work — anything that can wait goes into a [`QueryJob`].
pub fn prepare(state: &Arc<ServeState>, request: &Request) -> Prepared {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            Prepared::Fixed(StagedResponse::routed(200, "text/plain", b"ok\n".to_vec()))
        }
        ("GET", "/stats") => {
            let body = format!("{}\n", stats_json(state)).into_bytes();
            Prepared::Fixed(StagedResponse::routed(200, "application/json", body))
        }
        ("GET", "/admin/stats") => {
            let body = format!("{}\n", admin_stats_json(state)).into_bytes();
            Prepared::Fixed(StagedResponse::routed(200, "application/json", body))
        }
        ("POST", "/admin/drain") => {
            state.request_drain();
            Prepared::Fixed(StagedResponse::routed(
                202,
                "application/json",
                b"{\"draining\":true}\n".to_vec(),
            ))
        }
        ("GET", "/search") | ("GET", "/lineage") | ("GET", "/sparql") => {
            let class = match request.path.as_str() {
                "/search" => QueryClass::Search,
                "/lineage" => QueryClass::Lineage,
                _ => QueryClass::Sparql,
            };
            Prepared::Query(QueryJob { request: request.clone(), class })
        }
        ("POST", "/answer") => Prepared::Query(QueryJob {
            request: request.clone(),
            class: QueryClass::Answer,
        }),
        (
            _,
            "/healthz" | "/stats" | "/search" | "/lineage" | "/sparql" | "/answer"
            | "/admin/drain" | "/admin/stats",
        ) => Prepared::Fixed(StagedResponse::error_json(405, "method not allowed")),
        _ => Prepared::Fixed(StagedResponse::error_json(404, "no such endpoint")),
    }
}

/// A query request, parked until a worker picks it up. Everything blocking
/// or slow lives in [`QueryJob::run`].
pub struct QueryJob {
    request: Request,
    class: QueryClass,
}

/// What a worker hands back to the connection.
pub enum JobResult {
    /// A fixed response (errors, sheds, not-found …).
    Fixed(StagedResponse),
    /// A successful query: stream rows under budget.
    Stream(RowStreamer),
}

/// Runs `job` with panic containment: an unwinding handler becomes a `500`
/// and a bumped `panics` counter, and every RAII guard (permit, in-flight
/// registration) is released during the unwind. Workers and the blocking
/// driver both go through here.
pub fn execute_job(state: &Arc<ServeState>, job: QueryJob) -> JobResult {
    match catch_unwind(AssertUnwindSafe(|| job.run(state))) {
        Ok(result) => result,
        Err(_) => {
            state.counters.panics.fetch_add(1, Ordering::Relaxed);
            JobResult::Fixed(StagedResponse::panic_response())
        }
    }
}

/// The storm valve's shed: the event loop found the worker queue full at
/// dispatch time. A plain `503` — truthful, complete-framed, keep-alive —
/// built without touching the (possibly blocking) admission gate.
pub(crate) fn queue_full_shed(state: &ServeState) -> JobResult {
    JobResult::Fixed(overloaded(
        state,
        Duration::from_secs(1),
        "worker queue full",
    ))
}

fn overloaded(state: &ServeState, retry_after: Duration, detail: &str) -> StagedResponse {
    state.counters.sheds.fetch_add(1, Ordering::Relaxed);
    // Retry-After is whole seconds; round up so the hint never understates.
    let secs = retry_after.as_secs() + u64::from(retry_after.subsec_nanos() > 0);
    let body = format!(
        "{{\"error\":\"overloaded\",\"detail\":{},\"retry_after_ms\":{}}}\n",
        json_string(detail),
        retry_after.as_millis()
    );
    StagedResponse {
        status: 503,
        content_type: "application/json",
        body: body.into_bytes(),
        extra_headers: vec![("Retry-After", secs.max(1).to_string())],
        count_served: false,
        count_wire_error: true,
        close: false,
        outcome: ConnOutcome::Served,
    }
}

impl QueryJob {
    /// The blocking half of a query request: drain check → tenant admission
    /// → budget → chaos pauses → query. Returns a fixed error/shed response
    /// or a [`RowStreamer`] carrying the admission permit and in-flight
    /// registration.
    fn run(self, state: &Arc<ServeState>) -> JobResult {
        let request = &self.request;
        if state.drain.is_draining() {
            return JobResult::Fixed(overloaded(
                state,
                state.config.drain_grace,
                "server draining",
            ));
        }

        let tenant = request.header("x-tenant").unwrap_or(DEFAULT_TENANT);
        // RAII permit: held through streaming, released on every exit path.
        let permit = match &state.tenants {
            Some(gates) => match gates.admit(tenant, self.class) {
                Ok(permit) => Some(permit),
                Err(shed) => {
                    let detail = format!("tenant {tenant}: {shed}");
                    return JobResult::Fixed(overloaded(state, shed.retry_after, &detail));
                }
            },
            None => None,
        };

        // Budget: wire headers → deadline, row cap, byte cap, cancellation.
        let deadline = request
            .header("x-deadline-ms")
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(state.config.default_deadline)
            .min(state.config.max_deadline);
        let max_rows = request
            .header("x-max-rows")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(state.config.max_rows)
            .min(state.config.max_rows);
        let token = CancellationToken::new();
        let inflight = state.drain.register(token.clone());
        let budget = QueryBudget::unlimited()
            .with_deadline(deadline, Arc::new(MonotonicTime::new()))
            .with_max_rows(max_rows)
            .with_max_bytes(state.config.max_response_bytes)
            .with_cancellation(&token);

        chaos::pause(PAUSE_BEFORE_QUERY, &token);

        // Chaos hook: lets the suite prove panic containment end-to-end —
        // the unwind must release the permit, the in-flight registration,
        // and the connection slot, and the process must keep serving.
        if request.header("x-chaos-panic").is_some() {
            panic!("injected handler panic (X-Chaos-Panic)");
        }

        let answer = match self.class {
            QueryClass::Search => run_search(state, request, budget.clone()),
            QueryClass::Lineage => run_lineage(state, request, budget.clone()),
            QueryClass::Sparql => run_sparql(state, request, budget.clone()),
            QueryClass::Answer => run_answer(state, request, budget.clone()),
        };
        let answer = match answer {
            Ok(answer) => answer,
            Err(RouteError::BadRequest(msg)) => {
                return JobResult::Fixed(StagedResponse::error_json(400, &msg));
            }
            Err(RouteError::Warehouse(MdwError::Overloaded(o))) => {
                return JobResult::Fixed(overloaded(state, o.retry_after, &o.to_string()));
            }
            Err(RouteError::Warehouse(MdwError::NotFound(what))) => {
                return JobResult::Fixed(StagedResponse::error_json(
                    404,
                    &format!("not found: {what}"),
                ));
            }
            Err(RouteError::Warehouse(MdwError::InvalidRequest(what))) => {
                return JobResult::Fixed(StagedResponse::error_json(400, &what));
            }
            Err(RouteError::Warehouse(other)) => {
                return JobResult::Fixed(StagedResponse::error_json(500, &other.to_string()));
            }
        };

        chaos::pause(PAUSE_BEFORE_ROWS, &token);
        JobResult::Stream(RowStreamer::new(answer, budget, permit, inflight))
    }
}

/// A fully-computed answer, ready to stream: pre-encoded ndjson rows plus
/// the query-side completeness verdict. SPARQL answers also carry the
/// one-line query-plan summary for the trailer frame; keyword answers carry
/// the executed-candidate metadata instead.
struct Answer {
    rows: Vec<String>,
    completeness: Completeness,
    degraded: bool,
    plan: Option<String>,
    candidates: Option<Value>,
}

enum RouteError {
    BadRequest(String),
    Warehouse(MdwError),
}

impl From<MdwError> for RouteError {
    fn from(e: MdwError) -> Self {
        RouteError::Warehouse(e)
    }
}

enum StreamStage {
    Rows,
    Terminator,
    Done,
}

/// Streams an [`Answer`] as budget-charged chunk frames, one piece per
/// [`step`](RowStreamer::step). The budget is consulted **before** each row
/// is framed — a tripped deadline, byte cap, or drain cancellation stops
/// the rows and the summary says so truthfully. Holds the admission permit
/// and in-flight registration for the request's whole wire lifetime; both
/// release when the streamer drops (completion, wire death, or teardown).
pub struct RowStreamer {
    rows: Vec<String>,
    next: usize,
    base_reason: Option<TruncationReason>,
    degraded: bool,
    plan: Option<String>,
    candidates: Option<Value>,
    budget: QueryBudget,
    sent: usize,
    trip: Option<TruncationReason>,
    stage: StreamStage,
    _permit: Option<Permit>,
    _inflight: InFlightGuard,
}

impl RowStreamer {
    fn new(
        answer: Answer,
        budget: QueryBudget,
        permit: Option<Permit>,
        inflight: InFlightGuard,
    ) -> Self {
        let base_reason = match answer.completeness {
            Completeness::Complete => None,
            Completeness::Truncated { reason } => Some(reason),
        };
        RowStreamer {
            rows: answer.rows,
            next: 0,
            base_reason,
            degraded: answer.degraded,
            plan: answer.plan,
            candidates: answer.candidates,
            budget,
            sent: 0,
            trip: None,
            stage: StreamStage::Rows,
            _permit: permit,
            _inflight: inflight,
        }
    }

    /// Appends one protocol piece (a row frame, the summary frame, or the
    /// terminator) to `out`. Returns `false` once the frame is complete and
    /// nothing more will ever be appended.
    pub fn step(&mut self, out: &mut Vec<u8>) -> bool {
        match self.stage {
            StreamStage::Rows => {
                if self.trip.is_none() && self.next < self.rows.len() {
                    let row = &self.rows[self.next];
                    // Deadline or drain cancellation lands between rows, and
                    // the byte cap is charged before the row is framed.
                    match self.budget.check_time().and_then(|()| self.budget.charge_bytes(row.len() as u64)) {
                        Err(reason) => self.trip = Some(reason),
                        Ok(()) => {
                            http::push_chunk(out, row.as_bytes());
                            self.next += 1;
                            self.sent += 1;
                            return true;
                        }
                    }
                }
                // Rows exhausted or budget tripped: the summary frame.
                let reason = self.trip.or(self.base_reason);
                let Value::Object(mut fields) = json!({
                    "rows": self.sent,
                    "complete": reason.is_none(),
                    "truncated": reason.map(|r| r.to_string()),
                    "degraded": self.degraded,
                    "bytes": self.budget.bytes_charged(),
                }) else {
                    unreachable!("summary literal is an object");
                };
                // SPARQL answers carry the plan the executor ran.
                if let Some(plan) = &self.plan {
                    fields.push(("plan".to_string(), Value::String(plan.clone())));
                }
                // Keyword answers carry the executed candidates' metadata.
                if let Some(candidates) = &self.candidates {
                    fields.push(("candidates".to_string(), candidates.clone()));
                }
                let summary = Value::Object(vec![("summary".to_string(), Value::Object(fields))]);
                let line =
                    format!("{}\n", serde_json::to_string(&summary).expect("summary serializes"));
                http::push_chunk(out, line.as_bytes());
                self.stage = StreamStage::Terminator;
                true
            }
            StreamStage::Terminator => {
                out.extend_from_slice(b"0\r\n\r\n");
                self.stage = StreamStage::Done;
                true
            }
            StreamStage::Done => false,
        }
    }

    /// Steps until `out` holds at least `high_water` bytes or the frame is
    /// done — the event loop's refill, keeping write buffers bounded.
    pub fn fill(&mut self, out: &mut Vec<u8>, high_water: usize) -> bool {
        while out.len() < high_water {
            if !self.step(out) {
                return false;
            }
        }
        !matches!(self.stage, StreamStage::Done)
    }
}

fn run_search(
    state: &ServeState,
    request: &Request,
    budget: QueryBudget,
) -> Result<Answer, RouteError> {
    let term = request
        .query_param("q")
        .filter(|q| !q.is_empty())
        .ok_or_else(|| RouteError::BadRequest("search needs ?q=TERM".to_string()))?;
    let mut search = SearchRequest::new(term).with_budget(budget);
    if request.query_param("synonyms").is_some() {
        search.expand_synonyms = true;
    }
    if let Some(max) = request.query_param("max").and_then(|v| v.parse().ok()) {
        search.max_results = max;
    }
    let results = state.warehouse.search(&search)?;
    let mut rows = Vec::new();
    for group in &results.groups {
        for hit in &group.hits {
            rows.push(ndjson_line(json!({
                "class": group.label.clone(),
                "instance": hit.instance.to_string(),
                "name": hit.name.clone(),
                "matched": hit.matched_term.clone(),
            })));
        }
    }
    Ok(Answer {
        rows,
        completeness: results.completeness,
        degraded: results.degraded,
        plan: None,
        candidates: None,
    })
}

fn run_lineage(
    state: &ServeState,
    request: &Request,
    budget: QueryBudget,
) -> Result<Answer, RouteError> {
    let item = request
        .query_param("item")
        .filter(|i| !i.is_empty())
        .ok_or_else(|| RouteError::BadRequest("lineage needs ?item=NAME".to_string()))?;
    let start = if item.starts_with("http://") || item.starts_with("https://") {
        Term::iri(item)
    } else {
        Term::iri(vocab::cs::dwh(item))
    };
    let mut lineage = match request.query_param("dir") {
        Some("up") | Some("upstream") => LineageRequest::upstream(start),
        _ => LineageRequest::downstream(start),
    };
    lineage = lineage.with_budget(budget);
    if let Some(depth) = request.query_param("depth").and_then(|v| v.parse().ok()) {
        lineage.max_depth = depth;
    }
    let result = state.warehouse.lineage(&lineage)?;
    let rows = result
        .endpoints
        .iter()
        .map(|endpoint| {
            ndjson_line(json!({
                "node": endpoint.node.to_string(),
                "name": endpoint.name.clone(),
                "distance": endpoint.distance,
                "classes": endpoint
                    .classes
                    .iter()
                    .map(|c| Value::String(c.to_string()))
                    .collect::<Vec<_>>(),
            }))
        })
        .collect();
    Ok(Answer {
        rows,
        completeness: result.completeness,
        degraded: result.degraded,
        plan: None,
        candidates: None,
    })
}

fn run_sparql(
    state: &ServeState,
    request: &Request,
    budget: QueryBudget,
) -> Result<Answer, RouteError> {
    let pattern = request
        .query_param("query")
        .filter(|q| !q.is_empty())
        .ok_or_else(|| RouteError::BadRequest("sparql needs ?query=PATTERN".to_string()))?;
    let mut sem = SemMatch::new(pattern)
        .alias("dm", vocab::cs::DM)
        .alias("dt", vocab::cs::DT)
        .alias("dwh", vocab::cs::DWH);
    if request.query_param("no-rulebase").is_none() {
        sem = sem.rulebase("OWLPRIME");
    }
    let use_planner = request.query_param("no-planner").is_none();
    let (output, report) = state.warehouse.sem_match_explained(&sem, &budget, use_planner)?;
    let rows = output
        .rows
        .iter()
        .map(|row| {
            let entries: Vec<(String, Value)> = output
                .columns
                .iter()
                .zip(row.iter())
                .map(|(col, term)| {
                    let value = match term {
                        Some(t) => Value::String(t.to_string()),
                        None => Value::Null,
                    };
                    (col.clone(), value)
                })
                .collect();
            ndjson_line(Value::Object(entries))
        })
        .collect();
    Ok(Answer {
        rows,
        completeness: output.completeness,
        degraded: output.degraded,
        plan: Some(report.summary()),
        candidates: None,
    })
}

fn run_answer(
    state: &ServeState,
    request: &Request,
    budget: QueryBudget,
) -> Result<Answer, RouteError> {
    let keywords = request
        .query_param("q")
        .filter(|q| !q.is_empty())
        .ok_or_else(|| RouteError::BadRequest("answer needs ?q=KEYWORDS".to_string()))?;
    let mut answer = AnswerRequest::new(keywords).with_budget(budget);
    if let Some(top_k) = request.query_param("top-k").and_then(|v| v.parse().ok()) {
        answer = answer.with_top_k(top_k);
    }
    let result = state.warehouse.answer(&answer)?;
    let rows = result
        .answers
        .iter()
        .map(|row| {
            ndjson_line(json!({
                "name": row.name.clone(),
                "instance": row.instance.to_string(),
                "candidate": row.candidate,
            }))
        })
        .collect();
    let candidates: Vec<Value> = result
        .executed
        .iter()
        .map(|ex| {
            json!({
                "sparql": ex.sparql.clone(),
                "rank": ex.rank,
                "rows": ex.rows,
            })
        })
        .collect();
    Ok(Answer {
        rows,
        completeness: result.completeness,
        degraded: result.degraded,
        plan: None,
        candidates: Some(Value::Array(candidates)),
    })
}

fn ndjson_line(value: Value) -> String {
    format!("{}\n", serde_json::to_string(&value).expect("row serializes"))
}

fn json_string(text: &str) -> String {
    serde_json::to_string(&Value::String(text.to_string())).expect("string serializes")
}

/// The `/stats` document: service-level counters plus per-tenant admission.
pub fn stats_json(state: &ServeState) -> String {
    let tenants: Vec<Value> = state
        .tenants
        .as_ref()
        .map(|gates| {
            gates
                .stats()
                .into_iter()
                .map(|(tenant, stats, active, waiting)| {
                    json!({
                        "tenant": tenant,
                        "admitted": stats.total_admitted(),
                        "shed": stats.total_shed(),
                        "active": active,
                        "waiting": waiting,
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    let doc = json!({
        "served": state.counters.served.load(Ordering::Relaxed),
        "sheds": state.counters.sheds.load(Ordering::Relaxed),
        "panics": state.counters.panics.load(Ordering::Relaxed),
        "wire_errors": state.counters.wire_errors.load(Ordering::Relaxed),
        "accept_errors": state.counters.accept_errors.load(Ordering::Relaxed),
        "capacity_rejects": state.counters.capacity_rejects.load(Ordering::Relaxed),
        "inflight": state.drain.inflight(),
        "draining": state.drain.is_draining(),
        "tenants": tenants,
    });
    serde_json::to_string(&doc).expect("stats serialize")
}

/// The `GET /admin/stats` document: the transport's own counters — what the
/// event loop accepted, timed out (by state), shed, backed off, and reused.
/// The wire drill's exit report reads this.
pub fn admin_stats_json(state: &ServeState) -> String {
    let counters = &state.counters;
    let planner = state.warehouse.planner_stats();
    let answer = state.warehouse.answer_stats();
    let doc = json!({
        "planner": {
            "planned": planner.planned,
            "unplanned": planner.unplanned,
            "reordered": planner.reordered,
            "filters_pushed": planner.filters_pushed,
        },
        "answer": {
            "answered": answer.answered,
            "candidates_planned": answer.candidates_planned,
            "candidates_executed": answer.candidates_executed,
            "truncated": answer.truncated,
        },
        "accepted": counters.accepted.load(Ordering::Relaxed),
        "served": counters.served.load(Ordering::Relaxed),
        "sheds": counters.sheds.load(Ordering::Relaxed),
        "panics": counters.panics.load(Ordering::Relaxed),
        "wire_errors": counters.wire_errors.load(Ordering::Relaxed),
        "accept_errors": counters.accept_errors.load(Ordering::Relaxed),
        "accept_backoffs": counters.accept_backoffs.load(Ordering::Relaxed),
        "capacity_rejects": counters.capacity_rejects.load(Ordering::Relaxed),
        "sockopt_errors": counters.sockopt_errors.load(Ordering::Relaxed),
        "head_timeouts": counters.head_timeouts.load(Ordering::Relaxed),
        "write_stall_timeouts": counters.write_stall_timeouts.load(Ordering::Relaxed),
        "idle_reaped": counters.idle_reaped.load(Ordering::Relaxed),
        "keepalive_reuses": counters.keepalive_reuses.load(Ordering::Relaxed),
        "queue_sheds": counters.queue_sheds.load(Ordering::Relaxed),
        "active_connections": state.active_connections(),
        "inflight": state.drain.inflight(),
        "draining": state.drain.is_draining(),
    });
    serde_json::to_string(&doc).expect("admin stats serialize")
}
