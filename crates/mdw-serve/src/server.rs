//! The listener: bounded thread-per-connection serving over
//! [`std::net::TcpListener`], built failure-first.
//!
//! Invariants the accept loop maintains:
//!
//! * **Bounded concurrency** — at most `max_connections` worker threads;
//!   excess connections get an immediate `503` and close, never an
//!   unbounded backlog.
//! * **Slow-loris defense** — every accepted socket carries read and write
//!   timeouts before the handler ever touches it.
//! * **The loop never dies** — accept errors (real or injected via the
//!   [`ACCEPT`](crate::fault::ACCEPT) failpoint) are counted and skipped;
//!   handler panics are caught per connection.
//! * **Drain stops the intake first** — once [`DrainController::begin`]
//!   fires the loop stops accepting and exits; in-flight workers finish
//!   under the drain ladder's rules.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mdw_core::admission::AdmissionConfig;
use mdw_core::warehouse::MetadataWarehouse;
use mdw_rdf::failpoint;

use crate::drain::DrainController;
use crate::fault;
use crate::router;
use crate::tenant::TenantGates;

/// Server sizing and limits.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Concurrent connections; beyond this, connect attempts get `503`.
    pub max_connections: usize,
    /// Socket read timeout (slow-loris bound on request heads).
    pub read_timeout: Duration,
    /// Socket write timeout (slow-reader bound on responses).
    pub write_timeout: Duration,
    /// Deadline applied when a request sends no `X-Deadline-Ms`.
    pub default_deadline: Duration,
    /// Hard ceiling on any requested deadline.
    pub max_deadline: Duration,
    /// Row cap (default and ceiling for `X-Max-Rows`).
    pub max_rows: u64,
    /// Byte budget per response body, charged as rows leave the socket.
    pub max_response_bytes: u64,
    /// How long a drain lets in-flight requests finish before cancelling.
    pub drain_grace: Duration,
    /// Per-tenant admission quota shape; `None` turns admission off (the
    /// drill's baseline mode).
    pub admission: Option<AdmissionConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            default_deadline: Duration::from_secs(2),
            max_deadline: Duration::from_secs(30),
            max_rows: 10_000,
            max_response_bytes: 8 * 1024 * 1024,
            drain_grace: Duration::from_secs(5),
            admission: Some(AdmissionConfig::default()),
        }
    }
}

/// Monotonic counters the accept loop and handlers bump; surfaced by
/// `/stats` and asserted by the chaos suite.
#[derive(Debug, Default)]
pub struct Counters {
    /// Responses whose frames completed (including error responses).
    pub served: AtomicU64,
    /// Requests shed with `503` (admission, capacity, drain).
    pub sheds: AtomicU64,
    /// Handler panics turned into `500`s.
    pub panics: AtomicU64,
    /// Connections whose wire died mid-request or mid-response.
    pub wire_errors: AtomicU64,
    /// Accept calls that failed (and were survived).
    pub accept_errors: AtomicU64,
    /// Connections turned away at the concurrency bound.
    pub capacity_rejects: AtomicU64,
}

/// Everything a connection handler needs, shared across worker threads.
/// Tests build one directly (no listener required) and drive
/// [`router::handle_connection`] with in-memory streams.
pub struct ServeState {
    /// The sizing this server runs under.
    pub config: ServerConfig,
    /// The shared warehouse service handle.
    pub warehouse: Arc<MetadataWarehouse>,
    /// Per-tenant admission gates (`None` = admission off).
    pub tenants: Option<TenantGates>,
    /// Drain controller / in-flight registry.
    pub drain: Arc<DrainController>,
    /// Monotonic counters.
    pub counters: Counters,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
}

impl ServeState {
    /// Fresh state for `warehouse` under `config`.
    pub fn new(warehouse: Arc<MetadataWarehouse>, config: ServerConfig) -> Arc<Self> {
        let tenants = config.admission.clone().map(TenantGates::new);
        Arc::new(ServeState {
            config,
            warehouse,
            tenants,
            drain: Arc::new(DrainController::new()),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
        })
    }

    /// Connections currently being handled (including pre-parse).
    pub fn active_connections(&self) -> usize {
        self.active_connections.load(Ordering::Acquire)
    }

    /// Starts the drain ladder on a background thread (idempotent). Used by
    /// `POST /admin/drain`; signal-driven shutdown runs the ladder
    /// synchronously via [`ServerHandle::drain`] instead.
    pub fn request_drain(self: &Arc<Self>) {
        if self.drain.begin() {
            let state = Arc::clone(self);
            std::thread::spawn(move || {
                if !state.drain.wait_idle(state.config.drain_grace) {
                    state.drain.cancel_stragglers();
                    state.drain.wait_idle(state.config.drain_grace);
                }
            });
        }
    }
}

/// A running server: its bound address, shared state, and accept thread.
pub struct ServerHandle {
    state: Arc<ServeState>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (stats, drain controller).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Graceful drain: stop accepting, let in-flight requests finish for
    /// `grace`, cancel stragglers, and wait for them to flush truthful
    /// prefixes. Returns how many requests had to be cancelled.
    pub fn drain(&mut self, grace: Duration) -> usize {
        self.state.drain.begin();
        let cancelled = {
            let drain = &self.state.drain;
            if drain.wait_idle(grace) {
                0
            } else {
                let n = drain.cancel_stragglers();
                drain.wait_idle(grace);
                n
            }
        };
        self.join_accept_thread();
        // Workers past their registered request (writing a final 503, say)
        // get a bounded window to clear out.
        let deadline = std::time::Instant::now() + grace;
        while self.state.active_connections() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        cancelled
    }

    /// Hard stop: no grace, no cancellation wait (tests and error paths).
    pub fn shutdown(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.drain.begin();
        self.state.drain.cancel_stragglers();
        self.join_accept_thread();
    }

    fn join_accept_thread(&mut self) {
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds and starts serving `warehouse` under `config`; returns once the
/// listener is live.
pub fn serve(
    warehouse: Arc<MetadataWarehouse>,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let state = ServeState::new(warehouse, config);
    let accept_state = Arc::clone(&state);
    let accept_thread = std::thread::Builder::new()
        .name("mdw-serve-accept".to_string())
        .spawn(move || accept_loop(listener, accept_state))?;
    Ok(ServerHandle { state, addr, accept_thread: Some(accept_thread) })
}

fn accept_loop(listener: TcpListener, state: Arc<ServeState>) {
    loop {
        if state.shutdown.load(Ordering::Acquire) || state.drain.is_draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Injected accept failure: count it, survive it.
                if failpoint::check(fault::ACCEPT).is_err() {
                    state.counters.accept_errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                dispatch(&state, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                state.counters.accept_errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn dispatch(state: &Arc<ServeState>, stream: TcpStream) {
    // Claim a connection slot optimistically; over the bound, shed inline
    // (a one-write 503 is cheaper than a thread).
    let claimed = state.active_connections.fetch_add(1, Ordering::AcqRel) + 1;
    if claimed > state.config.max_connections {
        state.active_connections.fetch_sub(1, Ordering::AcqRel);
        state.counters.capacity_rejects.fetch_add(1, Ordering::Relaxed);
        let mut stream = stream;
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let _ = stream.set_write_timeout(Some(state.config.write_timeout));
        // Drain the request head first: closing with unread bytes in the
        // socket buffer makes the kernel RST the connection, destroying the
        // 503 before the client can read it.
        let mut scratch = [0u8; 1024];
        let _ = io::Read::read(&mut stream, &mut scratch);
        let _ = crate::http::write_response(
            &mut stream,
            503,
            &[("Retry-After", "1".to_string())],
            "application/json",
            b"{\"error\":\"server at connection capacity\"}\n",
        );
        return;
    }
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let worker_state = Arc::clone(state);
    let spawned = std::thread::Builder::new()
        .name("mdw-serve-conn".to_string())
        .spawn(move || {
            let mut stream = stream;
            let _slot = ConnSlot(&worker_state.active_connections);
            let _outcome = router::handle_connection(&worker_state, &stream);
            let _ = stream.flush();
            let _ = stream.shutdown(std::net::Shutdown::Both);
        });
    if spawned.is_err() {
        // Thread spawn failed (resource exhaustion): release the slot and
        // shed rather than crash.
        state.active_connections.fetch_sub(1, Ordering::AcqRel);
        state.counters.capacity_rejects.fetch_add(1, Ordering::Relaxed);
    }
}

/// RAII connection-slot release (survives handler panics — though
/// [`router::handle_connection`] already catches them).
struct ConnSlot<'a>(&'a AtomicUsize);

impl Drop for ConnSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}
