//! The serving core: one event loop, many connections, a small worker
//! pool — readiness-based I/O over the [`crate::epoll`] shim (epoll on
//! Linux, poll(2) elsewhere), no thread per connection.
//!
//! ```text
//!            ┌────────────── event loop thread ──────────────┐
//!  accept ──▶│ nonblocking sockets, one Conn state machine   │
//!            │ each; parse / stage / flush; per-state        │◀─ waker
//!            │ deadlines swept every ~20ms                   │
//!            └──────┬────────────────────────────▲───────────┘
//!                   │ QueryJob (token)           │ JobResult (token)
//!            ┌──────▼────────────────────────────┴───────────┐
//!            │ worker pool: admission, budgets, query        │
//!            │ execution, chaos pauses, panic isolation      │
//!            └───────────────────────────────────────────────┘
//! ```
//!
//! Invariants the loop maintains:
//!
//! * **Bounded everything** — at most `max_connections` served
//!   connections; beyond that, new sockets become lightweight shed
//!   connections (read the head, answer `503`, close) within a fixed
//!   headroom, and are dropped outright past it. Read buffers are bounded
//!   by the request-head cap, write buffers by the streamer's high-water
//!   refill.
//! * **Slow clients cannot park resources** — per-state deadlines: a head
//!   that doesn't arrive in time gets `408` (slowloris), a peer that stops
//!   reading gets hard-closed (write stall), an idle keep-alive connection
//!   is reaped. All three are counted.
//! * **The loop never dies** — accept errors (real or injected via
//!   [`ACCEPT`](crate::fault::ACCEPT) /
//!   [`ACCEPT_ERROR`](crate::fault::ACCEPT_ERROR)) are counted and
//!   survived; an accept *storm* (EMFILE and friends) turns the listener
//!   off and backs off exponentially instead of hot-spinning; socket-option
//!   failures close the connection rather than serving it unprotected.
//!   Query panics are caught on the workers.
//! * **Drain stops the intake first** — [`DrainController::begin`] closes
//!   the listener, reaps parked keep-alive connections immediately, lets
//!   in-flight requests finish under the drain ladder's rules (cancelled
//!   stragglers still flush truthful truncated frames), and the loop exits
//!   once the last connection closes.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mdw_core::admission::AdmissionConfig;
use mdw_core::warehouse::MetadataWarehouse;
use mdw_rdf::failpoint;

use crate::conn::{Conn, ConnTimeouts, Wants};
use crate::drain::DrainController;
use crate::epoll::{self, PollEvent, Poller};
use crate::fault::{self, FaultStream};
use crate::router::{self, QueryJob};

/// Token the listener is registered under; connection tokens start at 1.
const LISTENER_TOKEN: u64 = 0;
/// Deadline sweep cadence: the longest the loop will sleep.
const SWEEP: Duration = Duration::from_millis(20);
/// Most sockets accepted per readiness event (fairness under a storm).
const ACCEPT_BATCH: usize = 256;
/// How many shed connections (capacity 503s in flight) may exist beyond
/// `max_connections` before new sockets are dropped outright.
const SHED_HEADROOM: usize = 1024;
/// Accept-error backoff bounds: starts at the minimum, doubles per
/// consecutive failure round, resets on a healthy accept.
const BACKOFF_MIN: Duration = Duration::from_millis(100);
const BACKOFF_MAX: Duration = Duration::from_secs(1);

/// Server sizing and limits.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Connections served concurrently; beyond this, connect attempts get
    /// `503` from a shed connection (bounded by a fixed headroom).
    pub max_connections: usize,
    /// Query worker threads (execution is decoupled from connections).
    pub workers: usize,
    /// Head-read deadline: the full request head must arrive within this
    /// of the first byte (slowloris bound).
    pub read_timeout: Duration,
    /// Write-stall deadline: a flush may go this long without the peer
    /// accepting a byte before the connection is hard-closed.
    pub write_timeout: Duration,
    /// How long a keep-alive connection may idle between requests.
    pub idle_timeout: Duration,
    /// Deadline applied when a request sends no `X-Deadline-Ms`.
    pub default_deadline: Duration,
    /// Hard ceiling on any requested deadline.
    pub max_deadline: Duration,
    /// Row cap (default and ceiling for `X-Max-Rows`).
    pub max_rows: u64,
    /// Byte budget per response body, charged as rows leave the socket.
    pub max_response_bytes: u64,
    /// How long a drain lets in-flight requests finish before cancelling.
    pub drain_grace: Duration,
    /// Per-tenant admission quota shape; `None` turns admission off (the
    /// drill's baseline mode).
    pub admission: Option<AdmissionConfig>,
    /// Worker-queue depth bound: requests dispatched while this many jobs
    /// already wait are shed at once with `503` instead of parking behind
    /// the workers (admission's blocking FIFO wait runs on workers, so the
    /// event loop needs its own storm valve in front of them).
    pub max_queued_jobs: usize,
    /// Pin each socket's kernel send buffer (deterministic write-stall
    /// tests); `None` leaves the kernel default.
    pub sndbuf_bytes: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 1024,
            workers: workers.clamp(2, 8),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            default_deadline: Duration::from_secs(2),
            max_deadline: Duration::from_secs(30),
            max_rows: 10_000,
            max_response_bytes: 8 * 1024 * 1024,
            drain_grace: Duration::from_secs(5),
            admission: Some(AdmissionConfig::default()),
            max_queued_jobs: 256,
            sndbuf_bytes: None,
        }
    }
}

/// Monotonic counters the event loop, workers, and connection machines
/// bump; surfaced by `/stats` and `/admin/stats`, asserted by the chaos
/// suite.
#[derive(Debug, Default)]
pub struct Counters {
    /// Sockets accepted into service (served + shed connections).
    pub accepted: AtomicU64,
    /// Responses whose frames completed (including error responses).
    pub served: AtomicU64,
    /// Requests shed with `503` (admission, drain).
    pub sheds: AtomicU64,
    /// Query panics turned into `500`s.
    pub panics: AtomicU64,
    /// Connections whose wire died mid-request or mid-response.
    pub wire_errors: AtomicU64,
    /// Accept calls that failed (and were survived).
    pub accept_errors: AtomicU64,
    /// Times the accept loop turned the listener off and backed off.
    pub accept_backoffs: AtomicU64,
    /// Connections turned away at the concurrency bound.
    pub capacity_rejects: AtomicU64,
    /// Sockets closed because a socket option could not be applied —
    /// better than serving a connection without its protections.
    pub sockopt_errors: AtomicU64,
    /// Request heads that timed out (slowloris defense fired; `408`).
    pub head_timeouts: AtomicU64,
    /// Connections hard-closed because the peer stopped reading.
    pub write_stall_timeouts: AtomicU64,
    /// Idle keep-alive connections reaped.
    pub idle_reaped: AtomicU64,
    /// Requests served on a reused (keep-alive) connection.
    pub keepalive_reuses: AtomicU64,
    /// Requests shed at dispatch because the worker queue was full
    /// (also counted in `sheds`).
    pub queue_sheds: AtomicU64,
}

/// Everything a connection needs, shared across the loop and the workers.
/// Tests build one directly (no listener required) and drive
/// [`crate::conn::handle_connection`] with in-memory streams.
pub struct ServeState {
    /// The sizing this server runs under.
    pub config: ServerConfig,
    /// The shared warehouse service handle.
    pub warehouse: Arc<MetadataWarehouse>,
    /// Per-tenant admission gates (`None` = admission off).
    pub tenants: Option<crate::tenant::TenantGates>,
    /// Drain controller / in-flight registry.
    pub drain: Arc<DrainController>,
    /// Monotonic counters.
    pub counters: Counters,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    waker: Mutex<Option<epoll::Waker>>,
}

impl ServeState {
    /// Fresh state for `warehouse` under `config`.
    pub fn new(warehouse: Arc<MetadataWarehouse>, config: ServerConfig) -> Arc<Self> {
        let tenants = config.admission.clone().map(crate::tenant::TenantGates::new);
        Arc::new(ServeState {
            config,
            warehouse,
            tenants,
            drain: Arc::new(DrainController::new()),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            waker: Mutex::new(None),
        })
    }

    /// Served connections currently open (excludes shed connections).
    pub fn active_connections(&self) -> usize {
        self.active_connections.load(Ordering::Acquire)
    }

    /// Starts the drain ladder on a background thread (idempotent) and
    /// nudges the event loop so it stops the intake immediately. Used by
    /// `POST /admin/drain`; signal-driven shutdown runs the ladder
    /// synchronously via [`ServerHandle::drain`] instead.
    pub fn request_drain(self: &Arc<Self>) {
        if self.drain.begin() {
            let state = Arc::clone(self);
            std::thread::spawn(move || {
                if !state.drain.wait_idle(state.config.drain_grace) {
                    state.drain.cancel_stragglers();
                    state.drain.wait_idle(state.config.drain_grace);
                }
            });
        }
        self.wake();
    }

    fn wake(&self) {
        if let Some(waker) = self.waker.lock().unwrap().as_ref() {
            waker.wake();
        }
    }
}

/// A running server: its bound address, shared state, and event-loop
/// thread (which owns the worker pool).
pub struct ServerHandle {
    state: Arc<ServeState>,
    addr: SocketAddr,
    loop_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (stats, drain controller).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Graceful drain: stop accepting, reap parked connections, let
    /// in-flight requests finish for `grace`, cancel stragglers, and wait
    /// for them to flush truthful prefixes. Returns how many requests had
    /// to be cancelled.
    pub fn drain(&mut self, grace: Duration) -> usize {
        self.state.drain.begin();
        self.state.wake();
        let cancelled = {
            let drain = &self.state.drain;
            if drain.wait_idle(grace) {
                0
            } else {
                let n = drain.cancel_stragglers();
                drain.wait_idle(grace);
                n
            }
        };
        // Connections past their registered request (flushing a final
        // frame, a shed 503 mid-write) get a bounded window to clear out.
        let deadline = Instant::now() + grace;
        while self.state.active_connections() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.shutdown();
        cancelled
    }

    /// Hard stop: no grace, no cancellation wait (tests and error paths).
    pub fn shutdown(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.drain.begin();
        self.state.drain.cancel_stragglers();
        self.state.wake();
        if let Some(thread) = self.loop_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds and starts serving `warehouse` under `config`; returns once the
/// listener is live and registered with the event loop.
pub fn serve(
    warehouse: Arc<MetadataWarehouse>,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let mut poller = Poller::new()?;
    poller.register(fd_of(&listener), LISTENER_TOKEN, true, false)?;
    let state = ServeState::new(warehouse, config);
    *state.waker.lock().unwrap() = Some(poller.waker());
    let loop_state = Arc::clone(&state);
    let loop_thread = std::thread::Builder::new()
        .name("mdw-serve-loop".to_string())
        .spawn(move || event_loop(poller, listener, loop_state))?;
    Ok(ServerHandle { state, addr, loop_thread: Some(loop_thread) })
}

#[cfg(unix)]
fn fd_of<F: std::os::fd::AsRawFd>(f: &F) -> i32 {
    f.as_raw_fd()
}

#[cfg(not(unix))]
fn fd_of<F>(_f: &F) -> i32 {
    // Unreachable in practice: Poller::new() fails first on these targets.
    -1
}

/// One connection as the event loop sees it.
struct ConnEntry {
    stream: FaultStream<TcpStream>,
    fd: i32,
    conn: Conn,
    /// Accepted purely to be told 503 (doesn't hold a served slot).
    shed: bool,
    /// (readable, writable) interest currently registered.
    interest: (bool, bool),
}

/// The job queue the loop feeds and the workers drain.
struct WorkQueue {
    /// (pending jobs, closed flag).
    jobs: Mutex<(VecDeque<(u64, QueryJob)>, bool)>,
    available: Condvar,
}

fn worker_loop(
    state: Arc<ServeState>,
    queue: Arc<WorkQueue>,
    results: mpsc::Sender<(u64, router::JobResult)>,
    waker: epoll::Waker,
) {
    loop {
        let next = {
            let mut guard = queue.jobs.lock().unwrap();
            loop {
                if let Some(job) = guard.0.pop_front() {
                    break Some(job);
                }
                if guard.1 {
                    break None;
                }
                guard = queue.available.wait(guard).unwrap();
            }
        };
        let Some((token, job)) = next else { return };
        // Admission waits, budget setup, chaos pauses, the query itself,
        // and panic isolation all happen here, off the event loop.
        let result = router::execute_job(&state, job);
        if results.send((token, result)).is_err() {
            return; // loop is gone; dropping the result releases its permit
        }
        waker.wake();
    }
}

fn event_loop(mut poller: Poller, listener: TcpListener, state: Arc<ServeState>) {
    let timeouts = ConnTimeouts::from(&state.config);
    let queue = Arc::new(WorkQueue { jobs: Mutex::new((VecDeque::new(), false)), available: Condvar::new() });
    let (results_tx, results_rx) = mpsc::channel();
    let mut workers = Vec::new();
    for i in 0..state.config.workers.max(1) {
        let handle = std::thread::Builder::new()
            .name(format!("mdw-serve-worker-{i}"))
            .spawn({
                let state = Arc::clone(&state);
                let queue = Arc::clone(&queue);
                let results = results_tx.clone();
                let waker = poller.waker();
                move || worker_loop(state, queue, results, waker)
            })
            .expect("spawning a worker thread");
        workers.push(handle);
    }
    drop(results_tx);

    let mut listener = Some(listener);
    let mut conns: HashMap<u64, ConnEntry> = HashMap::new();
    let mut next_token: u64 = LISTENER_TOKEN + 1;
    let mut events: Vec<PollEvent> = Vec::new();
    let mut touched: Vec<u64> = Vec::new();
    let mut scratch = vec![0u8; 16 * 1024];
    let mut backoff = BACKOFF_MIN;
    let mut backoff_until: Option<Instant> = None;

    loop {
        if state.shutdown.load(Ordering::Acquire) {
            break;
        }
        if state.drain.is_draining() {
            if let Some(l) = listener.take() {
                // Intake first: nobody new gets in once a drain starts.
                let _ = poller.deregister(fd_of(&l));
            }
            // Parked keep-alive connections are cancelled outright…
            let parked: Vec<u64> = conns
                .iter()
                .filter(|(_, e)| e.conn.is_parked())
                .map(|(t, _)| *t)
                .collect();
            for token in parked {
                teardown(&mut poller, &mut conns, &state, token);
            }
            // …while in-flight ones finish under the drain ladder; the
            // loop's work is done when the last of them closes.
            if conns.is_empty() {
                break;
            }
        }

        let _ = poller.wait(&mut events, SWEEP);
        let now = Instant::now();
        touched.clear();

        // Worker results first, so a freshly staged response flushes in
        // this same iteration.
        while let Ok((token, result)) = results_rx.try_recv() {
            if let Some(entry) = conns.get_mut(&token) {
                entry.conn.complete_job(&state, result, now);
                touched.push(token);
            }
            // A result for a torn-down connection is dropped here, which
            // releases its admission permit and in-flight registration.
        }

        let mut accept_ready = false;
        for ev in &events {
            if ev.token == LISTENER_TOKEN {
                accept_ready = true;
                continue;
            }
            let Some(entry) = conns.get_mut(&ev.token) else { continue };
            if ev.readable || ev.hangup {
                read_conn(&state, entry, &mut scratch, now);
            }
            if ev.writable && entry.conn.wants() == Wants::Write {
                entry.conn.on_writable(&state, &mut entry.stream, now);
            }
            touched.push(ev.token);
        }

        // Deadline sweep: slowloris heads, stalled writers, idle parkers.
        for (token, entry) in conns.iter_mut() {
            if entry.conn.check_deadline(&state, now) {
                touched.push(*token);
            }
        }

        touched.sort_unstable();
        touched.dedup();
        for token in touched.drain(..) {
            post_process(&mut poller, &mut conns, &state, &queue, token, now);
        }

        if let Some(l) = &listener {
            if let Some(until) = backoff_until {
                if now >= until {
                    // Backoff over: re-arm the listener and try at once —
                    // connections queued up while it was off.
                    backoff_until = None;
                    let _ = poller.register(fd_of(l), LISTENER_TOKEN, true, false);
                    accept_ready = true;
                }
            }
            if accept_ready && backoff_until.is_none() {
                let storm = accept_round(
                    l,
                    &mut poller,
                    &mut conns,
                    &state,
                    &mut next_token,
                    timeouts,
                    &mut backoff,
                    now,
                );
                if storm {
                    // Accept keeps failing (EMFILE-shaped): stop asking
                    // for readiness instead of hot-spinning on the error.
                    state.counters.accept_backoffs.fetch_add(1, Ordering::Relaxed);
                    let _ = poller.deregister(fd_of(l));
                    backoff_until = Some(now + backoff);
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                }
            }
        }
    }

    // Hard exit: close everything still open (streamer drops release any
    // held permits and in-flight registrations), then stop the workers.
    let tokens: Vec<u64> = conns.keys().copied().collect();
    for token in tokens {
        teardown(&mut poller, &mut conns, &state, token);
    }
    if let Some(l) = listener.take() {
        let _ = poller.deregister(fd_of(&l));
    }
    {
        let mut guard = queue.jobs.lock().unwrap();
        guard.1 = true;
    }
    queue.available.notify_all();
    for worker in workers {
        let _ = worker.join();
    }
}

/// Reads until the socket would block or the connection stops wanting
/// bytes (a complete request parsed). Bounded per request by the head cap
/// and the declared body length.
fn read_conn(state: &Arc<ServeState>, entry: &mut ConnEntry, scratch: &mut [u8], now: Instant) {
    loop {
        if entry.conn.wants() != Wants::Read {
            return;
        }
        let cap = entry.conn.read_cap().min(scratch.len());
        match entry.stream.read(&mut scratch[..cap]) {
            Ok(0) => return entry.conn.on_read_eof(state, now),
            Ok(n) => entry.conn.feed(state, &scratch[..n], now),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return entry.conn.on_read_error(state, e, now),
        }
    }
}

/// Settles a connection after activity: hands queued jobs to the workers,
/// flushes opportunistically, then syncs poll interest or tears down.
fn post_process(
    poller: &mut Poller,
    conns: &mut HashMap<u64, ConnEntry>,
    state: &Arc<ServeState>,
    queue: &Arc<WorkQueue>,
    token: u64,
    now: Instant,
) {
    let Some(entry) = conns.get_mut(&token) else { return };
    loop {
        match entry.conn.wants() {
            Wants::Execute => {
                let job = entry.conn.take_job().expect("Execute implies a queued job");
                let queued = {
                    let mut guard = queue.jobs.lock().unwrap();
                    if guard.0.len() >= state.config.max_queued_jobs {
                        false
                    } else {
                        guard.0.push_back((token, job));
                        true
                    }
                };
                if queued {
                    queue.available.notify_one();
                } else {
                    // Storm valve: admission's blocking FIFO wait lives on
                    // the workers, so a full queue must shed here — parking
                    // ten thousand requests behind two workers would turn
                    // every deadline into a timeout.
                    state.counters.queue_sheds.fetch_add(1, Ordering::Relaxed);
                    let shed = router::queue_full_shed(state);
                    entry.conn.complete_job(state, shed, now);
                }
            }
            Wants::Write => {
                // Try at once — the socket is almost always writable; this
                // saves a poll round-trip per response.
                entry.conn.on_writable(state, &mut entry.stream, now);
                if entry.conn.wants() == Wants::Write {
                    break; // genuinely blocked; wait for writability
                }
            }
            _ => break,
        }
    }
    match entry.conn.wants() {
        Wants::Close => teardown(poller, conns, state, token),
        wants => {
            let desired = match wants {
                Wants::Read => (true, false),
                Wants::Write => (false, true),
                _ => (false, false),
            };
            if desired != entry.interest {
                if poller.modify(entry.fd, token, desired.0, desired.1).is_ok() {
                    entry.interest = desired;
                } else {
                    // Can't watch it → can't serve it safely.
                    state.counters.sockopt_errors.fetch_add(1, Ordering::Relaxed);
                    teardown(poller, conns, state, token);
                }
            }
        }
    }
}

fn teardown(
    poller: &mut Poller,
    conns: &mut HashMap<u64, ConnEntry>,
    state: &Arc<ServeState>,
    token: u64,
) {
    if let Some(entry) = conns.remove(&token) {
        let _ = poller.deregister(entry.fd);
        if !entry.shed {
            state.active_connections.fetch_sub(1, Ordering::AcqRel);
        }
        // Dropping the entry closes the socket and releases anything the
        // connection still held (streamer → permit + in-flight guard).
    }
}

/// Accepts a batch of pending sockets. Returns `true` when the loop should
/// back off (accept itself keeps failing — the storm case).
#[allow(clippy::too_many_arguments)]
fn accept_round(
    listener: &TcpListener,
    poller: &mut Poller,
    conns: &mut HashMap<u64, ConnEntry>,
    state: &Arc<ServeState>,
    next_token: &mut u64,
    timeouts: ConnTimeouts,
    backoff: &mut Duration,
    now: Instant,
) -> bool {
    for _ in 0..ACCEPT_BATCH {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Injected accept failure: count it, survive it.
                if failpoint::check(fault::ACCEPT).is_err() {
                    state.counters.accept_errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                // Injected accept *storm* (EMFILE-shaped): the socket is
                // lost and the listener backs off.
                if failpoint::check(fault::ACCEPT_ERROR).is_err() {
                    state.counters.accept_errors.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                *backoff = BACKOFF_MIN;
                setup_conn(poller, conns, state, next_token, timeouts, stream, now);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                state.counters.accept_errors.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
    }
    false // batch exhausted; level-triggered readiness re-fires next round
}

fn setup_conn(
    poller: &mut Poller,
    conns: &mut HashMap<u64, ConnEntry>,
    state: &Arc<ServeState>,
    next_token: &mut u64,
    timeouts: ConnTimeouts,
    stream: TcpStream,
    now: Instant,
) {
    let served = state.active_connections.load(Ordering::Acquire);
    let shed = served >= state.config.max_connections;
    if shed {
        state.counters.capacity_rejects.fetch_add(1, Ordering::Relaxed);
        let shed_open = conns.len().saturating_sub(served);
        if shed_open >= SHED_HEADROOM {
            return; // even the polite-503 lane is full; drop outright
        }
    }
    // A socket whose protections can't be applied is closed, not served
    // unprotected (and the failure is visible in the stats).
    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
        state.counters.sockopt_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let fd = fd_of(&stream);
    if let Some(bytes) = state.config.sndbuf_bytes {
        if epoll::set_sndbuf(fd, bytes).is_err() {
            state.counters.sockopt_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    let token = *next_token;
    *next_token += 1;
    if poller.register(fd, token, true, false).is_err() {
        state.counters.sockopt_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    state.counters.accepted.fetch_add(1, Ordering::Relaxed);
    if !shed {
        state.active_connections.fetch_add(1, Ordering::AcqRel);
    }
    conns.insert(
        token,
        ConnEntry {
            stream: FaultStream::new(stream),
            fd,
            conn: Conn::new(timeouts, shed, now),
            shed,
            interest: (true, false),
        },
    );
}
