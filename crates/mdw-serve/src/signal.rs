//! SIGTERM/SIGINT without new dependencies: the process-level half of
//! graceful drain.
//!
//! The handler does the only async-signal-safe thing — set an atomic flag —
//! and `mdwh serve` polls [`termination_requested`] to run the drain ladder
//! from its main thread. The libc `signal()` symbol is declared directly
//! (std already links libc); non-unix builds compile to a no-op stub.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::*;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_termination(_signum: i32) {
        // Async-signal-safe: a single atomic store, nothing else.
        TERMINATION.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_termination as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs SIGTERM/SIGINT handlers that set the termination flag. Safe to
/// call more than once.
pub fn install_termination_handler() {
    imp::install();
}

/// True once SIGTERM or SIGINT has been received (or [`request_termination`]
/// was called).
pub fn termination_requested() -> bool {
    TERMINATION.load(Ordering::SeqCst)
}

/// Sets the flag programmatically — lets tests (and `/admin/drain`-style
/// paths) drive the same code path a signal would.
pub fn request_termination() {
    TERMINATION.store(true, Ordering::SeqCst);
}

/// Clears the flag (test hygiene between cases).
pub fn reset_termination() {
    TERMINATION.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_roundtrip() {
        reset_termination();
        assert!(!termination_requested());
        request_termination();
        assert!(termination_requested());
        reset_termination();
        assert!(!termination_requested());
    }

    #[cfg(unix)]
    #[test]
    fn installing_the_handler_is_harmless() {
        install_termination_handler();
        install_termination_handler();
    }
}
