//! Per-tenant admission: one bounded [`AdmissionController`] per tenant,
//! created on first sight.
//!
//! The paper's warehouse serves many consuming applications (SODA-style
//! search frontends, lineage tools, ad-hoc SPARQL) that must not starve
//! each other. The warehouse-internal gate protects the *process*; these
//! gates partition that capacity per `X-Tenant`, so one chatty tenant sheds
//! against its own quota while the others keep flowing. Tenants inherit a
//! single configured quota shape; unknown tenants are lazily admitted with
//! the same shape rather than rejected — metadata consumers come and go.

use std::collections::BTreeMap;
use std::sync::Mutex;

use mdw_core::admission::{
    AdmissionConfig, AdmissionController, AdmissionStats, Overloaded, Permit, QueryClass,
};

/// The tenant used when a request carries no `X-Tenant` header.
pub const DEFAULT_TENANT: &str = "public";

/// Lazily-populated map of tenant name → admission gate.
pub struct TenantGates {
    config: AdmissionConfig,
    gates: Mutex<BTreeMap<String, AdmissionController>>,
}

impl TenantGates {
    /// Gates that hand every tenant a clone of `config`.
    pub fn new(config: AdmissionConfig) -> Self {
        TenantGates { config, gates: Mutex::new(BTreeMap::new()) }
    }

    fn gate(&self, tenant: &str) -> AdmissionController {
        let mut gates = self.gates.lock().unwrap();
        gates
            .entry(tenant.to_string())
            .or_insert_with(|| AdmissionController::new(self.config.clone()))
            .clone()
    }

    /// Admits a request for `tenant`, waiting (bounded) in the tenant's
    /// FIFO queue. The returned [`Permit`] is RAII: dropping it — normally,
    /// on error, or during a panic unwind — frees the slot.
    pub fn admit(&self, tenant: &str, class: QueryClass) -> Result<Permit, Overloaded> {
        self.gate(tenant).admit(class)
    }

    /// Snapshot of `(tenant, stats, active, waiting)` for every tenant seen
    /// so far, sorted by name.
    pub fn stats(&self) -> Vec<(String, AdmissionStats, usize, usize)> {
        let gates = self.gates.lock().unwrap();
        gates
            .iter()
            .map(|(name, gate)| (name.clone(), gate.stats(), gate.active(), gate.waiting()))
            .collect()
    }

    /// Total permits currently held across all tenants. The chaos suite
    /// asserts this returns to zero after every injected wire failure —
    /// a leaked permit would eventually wedge its tenant.
    pub fn total_active(&self) -> usize {
        self.gates.lock().unwrap().values().map(|g| g.active()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn gates(quota: usize) -> TenantGates {
        TenantGates::new(AdmissionConfig {
            max_queued: 0,
            max_wait: Duration::ZERO,
            ..AdmissionConfig::with_quotas(quota, quota)
        })
    }

    #[test]
    fn tenants_shed_independently() {
        let gates = gates(1);
        let held = gates.admit("risk", QueryClass::Search).unwrap();
        // risk is at quota…
        assert!(gates.admit("risk", QueryClass::Search).is_err());
        // …but finance has its own gate.
        let other = gates.admit("finance", QueryClass::Search).unwrap();
        assert_eq!(gates.total_active(), 2);
        drop(held);
        drop(other);
        assert_eq!(gates.total_active(), 0);
    }

    #[test]
    fn stats_cover_every_tenant_seen() {
        let gates = gates(1);
        let _p = gates.admit("a", QueryClass::Lineage).unwrap();
        let _ = gates.admit("a", QueryClass::Lineage);
        let _ = gates.admit("b", QueryClass::Sparql).unwrap();
        let stats = gates.stats();
        let names: Vec<_> = stats.iter().map(|(n, ..)| n.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        let (_, a_stats, a_active, _) = &stats[0];
        assert_eq!(a_stats.total_admitted(), 1);
        assert_eq!(a_stats.total_shed(), 1);
        assert_eq!(*a_active, 1);
    }
}
