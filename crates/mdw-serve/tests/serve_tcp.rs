//! End-to-end tests over real TCP sockets: the full event-loop → state
//! machine → worker-pool path, including injected accept failures and
//! accept-storm backoff, the connection-capacity bound, keep-alive reuse,
//! panic survival, and — the headline — a graceful drain that cancels an
//! in-flight query and still hands the client a *complete frame* with a
//! truthful `"cancelled"` summary.
//!
//! Unlike the wire chaos suite these tests cross threads, so fault arming
//! uses the failpoint registry's **global** scope and the chaos delay
//! registry (also global). A single mutex serializes the tests to keep that
//! global state deterministic.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use mdw_core::admission::AdmissionConfig;
use mdw_core::warehouse::MetadataWarehouse;
use mdw_corpus::{generate, CorpusConfig, Scale};
use mdw_rdf::failpoint::{self, FailSpec};
use mdw_serve::router::{PAUSE_BEFORE_QUERY, PAUSE_BEFORE_ROWS};
use mdw_serve::{chaos, client, fault, serve, ServerConfig, ServerHandle};

fn warehouse() -> Arc<MetadataWarehouse> {
    static SHARED: OnceLock<Arc<MetadataWarehouse>> = OnceLock::new();
    SHARED
        .get_or_init(|| {
            let corpus = generate(&CorpusConfig::preset(Scale::Small));
            let mut warehouse = MetadataWarehouse::new();
            warehouse.ingest(corpus.into_extracts()).expect("ingest");
            warehouse.build_semantic_index().expect("index");
            warehouse.into_shared()
        })
        .clone()
}

/// Serializes tests: global failpoints and chaos delays are process-wide.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    failpoint::reset_global();
    chaos::reset_delays();
    guard
}

fn start_server(config: ServerConfig) -> ServerHandle {
    serve(warehouse(), config).expect("bind")
}

fn test_config() -> ServerConfig {
    ServerConfig {
        admission: Some(AdmissionConfig::with_quotas(8, 8)),
        ..ServerConfig::default()
    }
}

const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn serves_search_end_to_end_over_tcp() {
    let _guard = chaos_lock();
    let server = start_server(test_config());
    let resp = client::get(
        server.addr(),
        "/search?q=client",
        &[("X-Tenant", "e2e".to_string()), ("X-Deadline-Ms", "5000".to_string())],
        CLIENT_TIMEOUT,
    )
    .expect("search response");
    assert_eq!(resp.status, 200);
    assert!(resp.answer_complete(), "body: {}", resp.body);
    assert!(resp.lines().len() >= 2);

    let stats = client::get(server.addr(), "/stats", &[], CLIENT_TIMEOUT).expect("stats");
    assert!(stats.body.contains("\"tenant\":\"e2e\""), "stats: {}", stats.body);
}

#[test]
fn serves_keyword_answer_end_to_end_over_tcp() {
    let _guard = chaos_lock();
    let server = start_server(test_config());
    let resp = client::post(server.addr(), "/answer?q=customer+report", CLIENT_TIMEOUT)
        .expect("answer response");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert!(resp.answer_complete(), "body: {}", resp.body);
    // The trailer carries the executed candidates' metadata.
    let summary = resp.summary_line().expect("summary line");
    assert!(summary.contains("\"candidates\":["), "summary: {summary}");
    assert!(summary.contains("\"sparql\":"), "summary: {summary}");
    assert!(summary.contains("\"rank\":"), "summary: {summary}");

    // GET on the POST-only route is a 405, not a 404.
    let wrong = client::get(server.addr(), "/answer?q=customer", &[], CLIENT_TIMEOUT)
        .expect("405 response");
    assert_eq!(wrong.status, 405, "body: {}", wrong.body);

    // The admin stats document exposes the answer counters.
    let admin = client::get(server.addr(), "/admin/stats", &[], CLIENT_TIMEOUT).expect("admin");
    assert!(admin.body.contains("\"answer\":{\"answered\":"), "admin: {}", admin.body);
}

#[test]
fn survives_injected_accept_failures() {
    let _guard = chaos_lock();
    let server = start_server(test_config());
    // The next two accepted connections are dropped by the injected fault;
    // the loop must survive and keep serving afterwards.
    failpoint::arm_global(fault::ACCEPT, FailSpec::Times(2));
    let mut drops = 0;
    let mut served = 0;
    for _ in 0..5 {
        match client::get(server.addr(), "/healthz", &[], CLIENT_TIMEOUT) {
            Ok(resp) if resp.status == 200 && resp.complete_frame => served += 1,
            _ => drops += 1,
        }
        if served >= 1 && drops >= 2 {
            break;
        }
    }
    assert_eq!(drops, 2, "exactly the injected failures should drop");
    assert!(served >= 1, "the loop must keep serving after injected faults");
    let counters = &server.state().counters;
    assert_eq!(counters.accept_errors.load(std::sync::atomic::Ordering::Relaxed), 2);
    failpoint::reset_global();
}

#[test]
fn connection_capacity_sheds_with_retry_after() {
    let _guard = chaos_lock();
    let server = start_server(ServerConfig { max_connections: 1, ..test_config() });
    // Hold the only slot: a request parked at the pre-query chaos pause.
    chaos::arm_delay(PAUSE_BEFORE_QUERY, Duration::from_millis(400));
    let addr = server.addr();
    let holder = std::thread::spawn(move || {
        client::get(addr, "/search?q=client", &[], CLIENT_TIMEOUT)
    });
    wait_until("holder to occupy the slot", || server.state().active_connections() >= 1);

    // Second connection: inline 503 from the accept loop, never a thread.
    let shed = client::get(addr, "/healthz", &[], CLIENT_TIMEOUT).expect("shed response");
    assert_eq!(shed.status, 503);
    assert!(shed.complete_frame);
    assert_eq!(shed.retry_after_secs(), Some(1));
    assert!(shed.body.contains("capacity"));
    assert_eq!(
        server.state().counters.capacity_rejects.load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    // The holder still completes truthfully once its pause elapses.
    let held = holder.join().unwrap().expect("holder response");
    assert_eq!(held.status, 200);
    assert!(held.answer_complete(), "body: {}", held.body);
    chaos::reset_delays();
}

#[test]
fn graceful_drain_cancels_stragglers_with_truthful_prefixes() {
    let _guard = chaos_lock();
    let mut server = start_server(test_config());
    // Park a request between query and rows for far longer than the drain
    // grace — it can only finish via cancellation.
    chaos::arm_delay(PAUSE_BEFORE_ROWS, Duration::from_secs(30));
    let addr = server.addr();
    let inflight_client = std::thread::spawn(move || {
        client::get(addr, "/search?q=client", &[], CLIENT_TIMEOUT)
    });
    wait_until("request to register in flight", || server.state().drain.inflight() >= 1);

    let cancelled = server.drain(Duration::from_millis(200));
    assert_eq!(cancelled, 1, "the parked request had to be cancelled");

    // The cancelled client still got a VALID frame: terminated chunk stream
    // and a summary that says so. Never silence, never a forged complete.
    let resp = inflight_client.join().unwrap().expect("drained response");
    assert_eq!(resp.status, 200);
    assert!(resp.complete_frame, "drain must flush a whole frame: {}", resp.body);
    let summary = resp.summary_line().expect("summary even when cancelled");
    assert!(summary.contains("\"complete\":false"), "summary: {summary}");
    assert!(summary.contains("cancel"), "summary: {summary}");

    // Fully quiescent: nothing in flight, no permits held.
    assert_eq!(server.state().drain.inflight(), 0);
    if let Some(gates) = &server.state().tenants {
        assert_eq!(gates.total_active(), 0);
    }
    // And the listener is gone: new connections fail outright or are torn
    // down without a served response.
    let after = client::get(addr, "/healthz", &[], Duration::from_millis(500));
    assert!(
        !matches!(&after, Ok(resp) if resp.status == 200),
        "drained server must not serve new requests"
    );
    chaos::reset_delays();
}

#[test]
fn drain_with_idle_server_cancels_nothing() {
    let _guard = chaos_lock();
    let mut server = start_server(test_config());
    let resp = client::get(server.addr(), "/healthz", &[], CLIENT_TIMEOUT).expect("healthz");
    assert_eq!(resp.status, 200);
    assert_eq!(server.drain(Duration::from_millis(100)), 0);
}

#[test]
fn handler_panic_over_tcp_leaves_the_server_serving() {
    let _guard = chaos_lock();
    let server = start_server(test_config());
    let resp = client::get(
        server.addr(),
        "/search?q=client",
        &[("X-Chaos-Panic", "1".to_string())],
        CLIENT_TIMEOUT,
    )
    .expect("panic response");
    assert_eq!(resp.status, 500);
    assert_eq!(server.state().counters.panics.load(std::sync::atomic::Ordering::Relaxed), 1);

    // The process (and this server) keep going.
    let resp = client::get(server.addr(), "/search?q=client", &[], CLIENT_TIMEOUT)
        .expect("post-panic response");
    assert!(resp.answer_complete());
    assert_eq!(server.state().drain.inflight(), 0);
    if let Some(gates) = &server.state().tenants {
        assert_eq!(gates.total_active(), 0);
    }
}

#[test]
fn keep_alive_reuses_one_tcp_connection() {
    let _guard = chaos_lock();
    let server = start_server(test_config());
    let mut conn = client::WireConn::connect(server.addr(), CLIENT_TIMEOUT).expect("connect");
    for round in 0..3 {
        let resp = conn
            .get("/search?q=client", &[("X-Tenant", "ka".to_string())])
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(resp.status, 200);
        assert!(resp.answer_complete(), "round {round}: {}", resp.body);
    }
    let counters = &server.state().counters;
    assert_eq!(counters.served.load(std::sync::atomic::Ordering::Relaxed), 3);
    assert_eq!(counters.keepalive_reuses.load(std::sync::atomic::Ordering::Relaxed), 2);
    // Three requests, one socket.
    assert_eq!(counters.accepted.load(std::sync::atomic::Ordering::Relaxed), 1);
}

#[test]
fn accept_storm_backs_off_and_recovers() {
    let _guard = chaos_lock();
    let server = start_server(test_config());
    // The next accept "fails" EMFILE-style: the socket is lost and the
    // listener goes quiet for a backoff interval instead of hot-spinning.
    failpoint::arm_global(fault::ACCEPT_ERROR, FailSpec::Once);
    let stormed = client::get(server.addr(), "/healthz", &[], Duration::from_secs(2));
    assert!(
        !matches!(&stormed, Ok(resp) if resp.status == 200),
        "the stormed connection must not be served"
    );
    let counters = &server.state().counters;
    assert_eq!(counters.accept_errors.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert_eq!(counters.accept_backoffs.load(std::sync::atomic::Ordering::Relaxed), 1);
    // After the backoff the listener comes back and serves normally.
    let resp = client::get(server.addr(), "/healthz", &[], CLIENT_TIMEOUT).expect("recovered");
    assert_eq!(resp.status, 200);
    assert!(resp.complete_frame);
    failpoint::reset_global();
}

#[test]
fn full_worker_queue_sheds_at_dispatch() {
    let _guard = chaos_lock();
    // A zero-depth queue: every query request finds it "full" and must be
    // shed by the event loop's storm valve, never parked behind workers.
    let server = start_server(ServerConfig { max_queued_jobs: 0, ..test_config() });
    let resp = client::get(server.addr(), "/search?q=client", &[], CLIENT_TIMEOUT).expect("shed");
    assert_eq!(resp.status, 503);
    assert!(resp.complete_frame);
    assert!(resp.body.contains("worker queue full"), "body: {}", resp.body);
    let counters = &server.state().counters;
    assert_eq!(counters.queue_sheds.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert_eq!(counters.sheds.load(std::sync::atomic::Ordering::Relaxed), 1);
    // Fixed routes never touch the queue; the server stays responsive.
    let resp = client::get(server.addr(), "/healthz", &[], CLIENT_TIMEOUT).expect("healthz");
    assert_eq!(resp.status, 200);
    if let Some(gates) = &server.state().tenants {
        assert_eq!(gates.total_active(), 0);
    }
}

#[test]
fn admin_stats_exposes_server_counters() {
    let _guard = chaos_lock();
    let server = start_server(test_config());
    let resp = client::get(server.addr(), "/search?q=client", &[], CLIENT_TIMEOUT).expect("warm");
    assert_eq!(resp.status, 200);
    let stats = client::get(server.addr(), "/admin/stats", &[], CLIENT_TIMEOUT).expect("stats");
    assert_eq!(stats.status, 200);
    assert!(stats.complete_frame);
    for key in [
        "\"accepted\"",
        "\"served\":1",
        "\"head_timeouts\"",
        "\"write_stall_timeouts\"",
        "\"idle_reaped\"",
        "\"keepalive_reuses\"",
        "\"accept_backoffs\"",
        "\"sockopt_errors\"",
        "\"capacity_rejects\"",
        "\"active_connections\"",
        "\"draining\":false",
    ] {
        assert!(stats.body.contains(key), "missing {key} in {}", stats.body);
    }
}

#[test]
fn admin_drain_endpoint_starts_the_ladder() {
    let _guard = chaos_lock();
    let server = start_server(test_config());
    let resp = client::post(server.addr(), "/admin/drain", CLIENT_TIMEOUT).expect("drain resp");
    assert_eq!(resp.status, 202);
    assert!(server.state().drain.is_draining());
    // Queries arriving during the drain are shed; the accept loop may also
    // already be gone — either way nothing serves.
    let after = client::get(server.addr(), "/search?q=client", &[], Duration::from_millis(500));
    assert!(!matches!(&after, Ok(resp) if resp.status == 200));
}
