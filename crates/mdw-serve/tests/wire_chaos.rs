//! The wire chaos suite: kill the socket at every seam, deterministically,
//! and prove three invariants hold every time:
//!
//! 1. the server never deadlocks (every handler call returns),
//! 2. it never leaks an admission permit or an in-flight registration, and
//! 3. it never emits a half-frame that parses as complete — a response is
//!    either provably whole (terminated chunk stream, truthful summary) or
//!    provably cut.
//!
//! Determinism comes from the handler being generic over `Read + Write`:
//! each test drives one request through an in-memory stream **on the test
//! thread**, so thread-local failpoint arming is visible to the handler and
//! every fault fires exactly where the test put it.

use std::io::{self, Read, Write};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use mdw_core::admission::AdmissionConfig;
use mdw_core::warehouse::MetadataWarehouse;
use mdw_corpus::{generate, CorpusConfig, Scale};
use mdw_rdf::failpoint::{self, FailSpec};
use mdw_serve::client::{frame_length, parse_response, WireResponse};
use mdw_serve::conn::{Conn, ConnTimeouts, Wants};
use mdw_serve::http;
use mdw_serve::router::{execute_job, handle_connection};
use mdw_serve::server::{ServeState, ServerConfig};
use mdw_serve::{fault, ConnOutcome};

/// One shared warehouse for the whole suite (building it is the slow part;
/// it is immutable behind the service handle, so sharing is safe).
fn warehouse() -> Arc<MetadataWarehouse> {
    static SHARED: OnceLock<Arc<MetadataWarehouse>> = OnceLock::new();
    SHARED
        .get_or_init(|| {
            let corpus = generate(&CorpusConfig::preset(Scale::Small));
            let mut warehouse = MetadataWarehouse::new();
            warehouse.ingest(corpus.into_extracts()).expect("ingest");
            warehouse.build_semantic_index().expect("index");
            warehouse.into_shared()
        })
        .clone()
}

fn test_config() -> ServerConfig {
    ServerConfig {
        default_deadline: Duration::from_secs(5),
        admission: Some(AdmissionConfig::with_quotas(4, 4)),
        ..ServerConfig::default()
    }
}

fn state_with(config: ServerConfig) -> Arc<ServeState> {
    ServeState::new(warehouse(), config)
}

/// An in-memory duplex: reads serve the canned request, writes collect the
/// response.
struct MemStream {
    input: io::Cursor<Vec<u8>>,
    output: Vec<u8>,
}

impl MemStream {
    fn new(request: &str) -> Self {
        MemStream { input: io::Cursor::new(request.as_bytes().to_vec()), output: Vec::new() }
    }
}

impl Read for MemStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.input.read(buf)
    }
}

impl Write for MemStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.output.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn get_request(target: &str, headers: &[(&str, &str)]) -> String {
    let mut request = format!("GET {target} HTTP/1.1\r\nHost: test\r\n");
    for (name, value) in headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str("\r\n");
    request
}

fn drive(state: &Arc<ServeState>, request: &str) -> (ConnOutcome, Vec<u8>) {
    let mut stream = MemStream::new(request);
    let outcome = handle_connection(state, &mut stream);
    (outcome, stream.output)
}

/// The permit-audit invariant: after any request, nothing is held.
fn assert_nothing_leaked(state: &ServeState) {
    if let Some(gates) = &state.tenants {
        assert_eq!(gates.total_active(), 0, "leaked admission permit");
    }
    assert_eq!(state.drain.inflight(), 0, "leaked in-flight registration");
}

#[test]
fn healthz_and_stats_frames_are_complete() {
    failpoint::reset();
    let state = state_with(test_config());
    let (outcome, raw) = drive(&state, &get_request("/healthz", &[]));
    assert_eq!(outcome, ConnOutcome::Served);
    let resp = parse_response(&raw).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.complete_frame);
    assert_eq!(resp.body, "ok\n");

    let (_, raw) = drive(&state, &get_request("/stats", &[]));
    let resp = parse_response(&raw).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.complete_frame);
    assert!(resp.body.contains("\"served\":1"));
    assert!(resp.body.contains("\"tenants\""));
    assert_nothing_leaked(&state);
}

#[test]
fn search_streams_rows_and_a_truthful_summary() {
    failpoint::reset();
    let state = state_with(test_config());
    let (outcome, raw) =
        drive(&state, &get_request("/search?q=client", &[("X-Tenant", "risk")]));
    assert_eq!(outcome, ConnOutcome::Served);
    let resp = parse_response(&raw).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.complete_frame);
    assert!(resp.answer_complete(), "expected a complete answer: {}", resp.body);
    assert!(resp.lines().len() >= 2, "rows + summary expected: {}", resp.body);
    assert_nothing_leaked(&state);

    // The tenant shows up in /stats with its admission.
    let (_, raw) = drive(&state, &get_request("/stats", &[]));
    let stats = parse_response(&raw).unwrap();
    assert!(stats.body.contains("\"tenant\":\"risk\""));
}

#[test]
fn lineage_and_sparql_roundtrip() {
    failpoint::reset();
    let state = state_with(test_config());

    let (_, raw) = drive(&state, &get_request("/lineage?item=dwh_stage0_item0&dir=down", &[]));
    let resp = parse_response(&raw).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.answer_complete(), "lineage should complete: {}", resp.body);

    // A row-capped scan must come back truthfully truncated, not short and
    // silent: the summary says complete:false and names the row limit.
    let (_, raw) = drive(
        &state,
        &get_request("/sparql?query=%7B%20%3Fa%20%3Fp%20%3Fb%20%7D", &[("X-Max-Rows", "5")]),
    );
    let resp = parse_response(&raw).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.complete_frame);
    let summary = resp.summary_line().expect("summary line");
    assert!(summary.contains("\"complete\":false"), "summary: {summary}");
    assert!(summary.contains("row limit"), "summary: {summary}");
    assert_nothing_leaked(&state);
}

#[test]
fn sparql_summary_carries_plan_and_admin_stats_count_planner() {
    failpoint::reset();
    let state = state_with(test_config());

    // `{ ?a ?p ?b . ?b ?q ?c }` — a join, planned by default.
    let (_, raw) = drive(
        &state,
        &get_request("/sparql?query=%7B%20%3Fa%20%3Fp%20%3Fb%20.%20%3Fb%20%3Fq%20%3Fc%20%7D", &[]),
    );
    let resp = parse_response(&raw).unwrap();
    assert_eq!(resp.status, 200);
    let summary = resp.summary_line().expect("summary line");
    assert!(summary.contains("\"plan\":\"planner=cost-based"), "summary: {summary}");

    // The same query with ?no-planner runs in written order.
    let (_, raw) = drive(
        &state,
        &get_request(
            "/sparql?query=%7B%20%3Fa%20%3Fp%20%3Fb%20.%20%3Fb%20%3Fq%20%3Fc%20%7D&no-planner",
            &[],
        ),
    );
    let resp = parse_response(&raw).unwrap();
    let summary = resp.summary_line().expect("summary line");
    assert!(summary.contains("\"plan\":\"planner=written-order"), "summary: {summary}");

    // Search answers carry no plan entry.
    let (_, raw) = drive(&state, &get_request("/search?q=client", &[]));
    let resp = parse_response(&raw).unwrap();
    assert!(!resp.summary_line().expect("summary line").contains("\"plan\""));

    // The warehouse's cumulative planner counters surface in /admin/stats.
    let (_, raw) = drive(&state, &get_request("/admin/stats", &[]));
    let resp = parse_response(&raw).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"planner\""), "admin stats: {}", resp.body);
    assert!(resp.body.contains("\"planned\":"), "admin stats: {}", resp.body);
    assert_nothing_leaked(&state);
}

#[test]
fn bad_requests_get_4xx_complete_frames() {
    failpoint::reset();
    let state = state_with(test_config());
    for (target, expect) in [
        ("/search", 400),            // missing ?q
        ("/lineage", 400),           // missing ?item
        ("/sparql", 400),            // missing ?query
        ("/nosuch", 404),
    ] {
        let (_, raw) = drive(&state, &get_request(target, &[]));
        let resp = parse_response(&raw).unwrap();
        assert_eq!(resp.status, expect, "{target}");
        assert!(resp.complete_frame, "{target}");
    }
    // Wrong method on a real endpoint.
    let (_, raw) = drive(&state, "POST /search HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
    assert_eq!(parse_response(&raw).unwrap().status, 405);
    assert_nothing_leaked(&state);
}

#[test]
fn zero_quota_sheds_with_scaled_retry_after() {
    failpoint::reset();
    let state = state_with(ServerConfig {
        admission: Some(AdmissionConfig {
            max_queued: 0,
            max_wait: Duration::ZERO,
            ..AdmissionConfig::with_quotas(0, 0)
        }),
        ..test_config()
    });
    let (outcome, raw) = drive(&state, &get_request("/search?q=client", &[]));
    assert_eq!(outcome, ConnOutcome::Served);
    let resp = parse_response(&raw).unwrap();
    assert_eq!(resp.status, 503);
    assert!(resp.complete_frame);
    assert!(resp.retry_after_secs().is_some_and(|s| s >= 1));
    assert!(resp.body.contains("retry_after_ms"));
    assert_eq!(
        state.counters.sheds.load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_nothing_leaked(&state);
}

#[test]
fn byte_cap_truncates_truthfully() {
    failpoint::reset();
    let state = state_with(ServerConfig {
        max_response_bytes: 256,
        ..test_config()
    });
    let (_, raw) =
        drive(&state, &get_request("/sparql?query=%7B%20%3Fa%20%3Fp%20%3Fb%20%7D", &[]));
    let resp = parse_response(&raw).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.complete_frame, "frame must close even when the byte cap trips");
    let summary = resp.summary_line().expect("summary line");
    assert!(summary.contains("\"complete\":false"), "summary: {summary}");
    assert!(summary.contains("byte limit"), "summary: {summary}");
    // Body stayed within cap + summary line.
    assert!(resp.body.len() < 1024, "body ran away: {} bytes", resp.body.len());
    assert_nothing_leaked(&state);
}

#[test]
fn expired_deadline_yields_a_truthful_truncation() {
    failpoint::reset();
    let state = state_with(test_config());
    let (_, raw) = drive(&state, &get_request("/search?q=client", &[("X-Deadline-Ms", "0")]));
    let resp = parse_response(&raw).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.complete_frame);
    let summary = resp.summary_line().expect("summary line");
    assert!(summary.contains("\"complete\":false"), "summary: {summary}");
    assert!(summary.contains("deadline"), "summary: {summary}");
    assert_nothing_leaked(&state);
}

#[test]
fn draining_server_sheds_new_queries() {
    failpoint::reset();
    let state = state_with(test_config());
    state.drain.begin();
    let (_, raw) = drive(&state, &get_request("/search?q=client", &[]));
    let resp = parse_response(&raw).unwrap();
    assert_eq!(resp.status, 503);
    assert!(resp.complete_frame);
    assert!(resp.body.contains("draining"));
    assert_nothing_leaked(&state);
}

#[test]
fn handler_panic_is_contained_and_leaks_nothing() {
    failpoint::reset();
    let state = state_with(test_config());
    let (outcome, raw) =
        drive(&state, &get_request("/search?q=client", &[("X-Chaos-Panic", "1")]));
    assert_eq!(outcome, ConnOutcome::Panicked);
    let resp = parse_response(&raw).unwrap();
    assert_eq!(resp.status, 500);
    assert!(resp.complete_frame);
    assert_eq!(state.counters.panics.load(std::sync::atomic::Ordering::Relaxed), 1);
    assert_nothing_leaked(&state);

    // The state keeps serving afterwards.
    let (_, raw) = drive(&state, &get_request("/search?q=client", &[]));
    assert!(parse_response(&raw).unwrap().answer_complete());
}

/// Whether a parse verdict claims a *successful, complete* answer. Error
/// statuses with complete frames are truthful; a 200 row stream is only
/// acceptable if its summary closed the frame.
fn claims_complete_success(resp: &Result<WireResponse, mdw_serve::client::WireError>) -> bool {
    match resp {
        Ok(r) => r.status == 200 && r.answer_complete(),
        Err(_) => false,
    }
}

#[test]
fn every_wire_seam_fails_safe() {
    // Kill each socket seam on its own fresh state; after every failure the
    // handler must have returned (no deadlock — this test finishing proves
    // it), released every permit, and not produced a false complete.
    for name in [fault::READ_STALL, fault::READ_RESET, fault::WRITE_RESET, fault::WRITE_PARTIAL] {
        failpoint::reset();
        let state = state_with(test_config());
        failpoint::arm(name, FailSpec::Once);
        let (outcome, raw) = drive(&state, &get_request("/search?q=client", &[]));
        let parsed = parse_response(&raw);
        match name {
            fault::READ_STALL | fault::READ_RESET => {
                // The request never parsed; the server answered 400 (stall)
                // or gave up (reset) — both without leaking anything.
                assert_eq!(outcome, ConnOutcome::BadRequest, "{name}");
            }
            _ => {
                // The response path died: the frame on the wire must be
                // detectably incomplete.
                assert_eq!(outcome, ConnOutcome::WireError, "{name}");
                assert!(!claims_complete_success(&parsed), "{name} forged a complete frame");
            }
        }
        assert_nothing_leaked(&state);
        failpoint::reset();
    }
}

/// Arms a failpoint after `n` successful write calls pass through — the
/// deterministic way to land a fault *mid-body* rather than on the head.
struct ArmAfterWrites<S> {
    inner: S,
    writes_left: u32,
    name: &'static str,
}

impl<S: Read> Read for ArmAfterWrites<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl<S: Write> Write for ArmAfterWrites<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let written = self.inner.write(buf)?;
        if self.writes_left > 0 {
            self.writes_left -= 1;
            if self.writes_left == 0 {
                failpoint::arm(self.name, FailSpec::Once);
            }
        }
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[test]
fn mid_body_write_faults_cut_frames_detectably() {
    // The blocking driver writes one protocol piece per call: the chunked
    // head is write #1 and each streamer piece (row frame, summary,
    // terminator) is its own write. Arming after 2 writes lands the fault
    // inside the row stream, after real bytes (status line + first row)
    // reached the client.
    for name in [fault::WRITE_RESET, fault::WRITE_PARTIAL] {
        failpoint::reset();
        let state = state_with(test_config());
        let mut stream = ArmAfterWrites {
            inner: MemStream::new(&get_request("/search?q=client", &[])),
            writes_left: 2,
            name,
        };
        let outcome = handle_connection(&state, &mut stream);
        assert_eq!(outcome, ConnOutcome::WireError, "{name}");
        let raw = stream.inner.output;
        assert!(!raw.is_empty(), "{name}: the cut must land mid-frame, not before it");
        let parsed = parse_response(&raw);
        assert!(!claims_complete_success(&parsed), "{name} forged a complete frame");
        if let Ok(resp) = parsed {
            assert!(!resp.complete_frame, "{name}: cut frame parsed as complete");
        }
        assert_nothing_leaked(&state);
        failpoint::reset();
    }
}

/// Flushes whatever the state machine has staged into a Vec.
fn drain_conn_writes(conn: &mut Conn, state: &Arc<ServeState>) -> Vec<u8> {
    let mut out = Vec::new();
    while conn.wants() == Wants::Write {
        conn.flush_step(state, &mut out);
    }
    out
}

#[test]
fn slowloris_drip_feed_hits_the_head_deadline() {
    // A client that dribbles one header byte at a time must not park a
    // connection forever: the head-read deadline fires, the client gets a
    // complete 408 frame, and the slot is reclaimed with nothing held.
    failpoint::reset();
    let state = state_with(test_config());
    let timeouts = ConnTimeouts {
        head: Duration::from_millis(80),
        write_stall: Duration::from_secs(1),
        idle: Duration::from_secs(1),
    };
    let t0 = Instant::now();
    let mut conn = Conn::new(timeouts, false, t0);
    for (i, byte) in b"GET /search?q=client HTT".iter().enumerate() {
        conn.feed(&state, &[*byte], t0 + Duration::from_millis(i as u64));
        assert_eq!(conn.wants(), Wants::Read, "still dripping");
    }
    assert!(!conn.check_deadline(&state, t0 + Duration::from_millis(79)));
    assert!(conn.check_deadline(&state, t0 + Duration::from_millis(81)), "deadline must fire");
    assert_eq!(state.counters.head_timeouts.load(Ordering::Relaxed), 1);
    let raw = drain_conn_writes(&mut conn, &state);
    let resp = parse_response(&raw).unwrap();
    assert_eq!(resp.status, 408);
    assert!(resp.complete_frame, "408 must be a whole frame");
    assert_eq!(conn.wants(), Wants::Close, "slot reclaimed");
    assert_nothing_leaked(&state);
}

#[test]
fn slow_reader_stall_reclaims_slot_and_permit() {
    // A client that requests a row stream and then never reads: the write
    // buffer stays full, the write-stall deadline fires, and — the part
    // that matters — the admission permit held by the in-flight streamer is
    // released when the connection is torn down.
    failpoint::reset();
    let state = state_with(test_config());
    let timeouts = ConnTimeouts {
        head: Duration::from_secs(1),
        write_stall: Duration::from_millis(60),
        idle: Duration::from_secs(1),
    };
    let t0 = Instant::now();
    let mut conn = Conn::new(timeouts, false, t0);
    conn.feed(&state, get_request("/search?q=client", &[("X-Tenant", "slow")]).as_bytes(), t0);
    assert_eq!(conn.wants(), Wants::Execute);
    let job = conn.take_job().expect("query job");
    conn.complete_job(&state, execute_job(&state, job), t0);
    assert_eq!(conn.wants(), Wants::Write, "rows staged for a reader that never reads");
    let gates = state.tenants.as_ref().expect("admission on");
    assert_eq!(gates.total_active(), 1, "the streamer holds the permit while in flight");

    assert!(conn.check_deadline(&state, t0 + Duration::from_millis(61)), "stall must fire");
    assert_eq!(state.counters.write_stall_timeouts.load(Ordering::Relaxed), 1);
    assert_eq!(state.counters.wire_errors.load(Ordering::Relaxed), 1);
    assert_eq!(conn.wants(), Wants::Close, "slot reclaimed");
    assert_eq!(conn.outcome(), ConnOutcome::WireError);
    assert_nothing_leaked(&state);
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    failpoint::reset();
    let state = state_with(test_config());
    let mut request = get_request("/healthz", &[]);
    request.push_str(&get_request("/search?q=client", &[("Connection", "close")]));
    let (outcome, raw) = drive(&state, &request);
    assert_eq!(outcome, ConnOutcome::Served);
    // Two complete frames back-to-back on the one connection.
    let first_len = frame_length(&raw).expect("first frame closed");
    let first = parse_response(&raw[..first_len]).unwrap();
    assert_eq!(first.status, 200);
    assert!(first.complete_frame);
    assert_eq!(first.body, "ok\n");
    let second = parse_response(&raw[first_len..]).unwrap();
    assert_eq!(second.status, 200);
    assert!(second.answer_complete(), "body: {}", second.body);
    assert_eq!(state.counters.keepalive_reuses.load(Ordering::Relaxed), 1);
    assert_eq!(state.counters.served.load(Ordering::Relaxed), 2);
    assert_nothing_leaked(&state);
}

#[test]
fn oversized_request_head_gets_431_over_the_wire() {
    failpoint::reset();
    let state = state_with(test_config());
    let flood = format!("GET / HTTP/1.1\r\nX-Flood: {}\r\n", "a".repeat(http::MAX_HEAD));
    let (outcome, raw) = drive(&state, &flood);
    assert_eq!(outcome, ConnOutcome::BadRequest);
    let resp = parse_response(&raw).unwrap();
    assert_eq!(resp.status, 431);
    assert!(resp.complete_frame, "431 must be a whole frame");
    assert_nothing_leaked(&state);
}

#[test]
fn chaos_storm_full_sweep_never_wedges_the_state() {
    // A storm: every fault (plus none) across every endpoint, repeatedly,
    // on one shared state. Afterwards the state must be fully quiescent and
    // still able to serve a clean, complete answer.
    let state = state_with(test_config());
    let faults = [
        None,
        Some(fault::READ_STALL),
        Some(fault::READ_RESET),
        Some(fault::WRITE_RESET),
        Some(fault::WRITE_PARTIAL),
    ];
    let targets = ["/search?q=client", "/lineage?item=dwh_stage0_item0", "/healthz", "/stats"];
    for round in 0..3 {
        for (i, target) in targets.iter().enumerate() {
            let fault_name = faults[(round + i) % faults.len()];
            failpoint::reset();
            if let Some(name) = fault_name {
                failpoint::arm(name, FailSpec::Once);
            }
            let (_, raw) = drive(&state, &get_request(target, &[("X-Tenant", "storm")]));
            let parsed = parse_response(&raw);
            if fault_name.is_some() && matches!(*target, "/search?q=client") {
                assert!(
                    !claims_complete_success(&parsed) || fault_name == Some(fault::READ_STALL),
                    "forged completion under {fault_name:?}"
                );
            }
            assert_nothing_leaked(&state);
        }
    }
    failpoint::reset();
    let (_, raw) = drive(&state, &get_request("/search?q=client", &[]));
    assert!(parse_response(&raw).unwrap().answer_complete());
    assert_nothing_leaked(&state);
}
