//! The abstract syntax tree of the SPARQL subset.

use std::collections::BTreeMap;

use mdw_rdf::term::Term;

/// A SPARQL variable (without the leading `?`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub String);

impl Var {
    /// Creates a variable from its name.
    pub fn new(name: impl Into<String>) -> Self {
        Var(name.into())
    }

    /// The variable name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

/// A position in a triple pattern: variable or constant term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeRef {
    /// A variable.
    Var(Var),
    /// A constant RDF term.
    Term(Term),
}

impl NodeRef {
    /// The variable, if this is one.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            NodeRef::Var(v) => Some(v),
            NodeRef::Term(_) => None,
        }
    }
}

/// A SPARQL 1.1 property path expression.
///
/// The paper's lineage use case is *defined* by a path expression —
/// "the path used can be described by the regular expression:
/// `(isMappedTo)* rdf:type`" (Figure 8) — so the engine supports the
/// path operators needed to write that query natively:
/// `iri`, `^p` (inverse), `p/q` (sequence), `p|q` (alternative),
/// `p*`, `p+`, `p?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathExpr {
    /// A single predicate IRI.
    Iri(Term),
    /// `^p` — traverse p backwards.
    Inverse(Box<PathExpr>),
    /// `p/q` — p then q.
    Seq(Box<PathExpr>, Box<PathExpr>),
    /// `p|q` — either.
    Alt(Box<PathExpr>, Box<PathExpr>),
    /// `p*` — zero or more.
    ZeroOrMore(Box<PathExpr>),
    /// `p+` — one or more.
    OneOrMore(Box<PathExpr>),
    /// `p?` — zero or one.
    ZeroOrOne(Box<PathExpr>),
}

impl PathExpr {
    /// True if this path can match with zero hops (start = end).
    pub fn is_nullable(&self) -> bool {
        match self {
            PathExpr::Iri(_) => false,
            PathExpr::Inverse(p) => p.is_nullable(),
            PathExpr::Seq(a, b) => a.is_nullable() && b.is_nullable(),
            PathExpr::Alt(a, b) => a.is_nullable() || b.is_nullable(),
            PathExpr::ZeroOrMore(_) | PathExpr::ZeroOrOne(_) => true,
            PathExpr::OneOrMore(p) => p.is_nullable(),
        }
    }
}

/// The predicate position of a triple pattern: a plain node (variable or
/// IRI) or a property path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verb {
    /// A variable or constant predicate.
    Node(NodeRef),
    /// A property path (never a variable inside, per SPARQL).
    Path(PathExpr),
}

impl Verb {
    /// The variable, if the verb is one.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Verb::Node(n) => n.as_var(),
            Verb::Path(_) => None,
        }
    }

    /// Convenience constructor for a constant predicate.
    pub fn iri(term: Term) -> Self {
        Verb::Node(NodeRef::Term(term))
    }
}

/// A triple pattern in a basic graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternTriple {
    /// Subject position.
    pub s: NodeRef,
    /// Predicate position (node or property path).
    pub p: Verb,
    /// Object position.
    pub o: NodeRef,
}

impl PatternTriple {
    /// All variables used by this pattern.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        [self.s.as_var(), self.p.as_var(), self.o.as_var()]
            .into_iter()
            .flatten()
    }
}

/// A filter / projection expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable reference.
    Var(Var),
    /// A constant term.
    Const(Term),
    /// `=`.
    Eq(Box<Expr>, Box<Expr>),
    /// `!=`.
    Ne(Box<Expr>, Box<Expr>),
    /// `<` (numeric if both sides are numeric, else lexicographic).
    Lt(Box<Expr>, Box<Expr>),
    /// `<=`.
    Le(Box<Expr>, Box<Expr>),
    /// `>`.
    Gt(Box<Expr>, Box<Expr>),
    /// `>=`.
    Ge(Box<Expr>, Box<Expr>),
    /// `&&`.
    And(Box<Expr>, Box<Expr>),
    /// `||`.
    Or(Box<Expr>, Box<Expr>),
    /// `!`.
    Not(Box<Expr>),
    /// `regex(expr, "pattern", "flags")` — `regexp_like` in the paper's SQL.
    Regex {
        /// The expression whose string value is tested.
        target: Box<Expr>,
        /// The pattern.
        pattern: String,
        /// Flags (only `i` is supported).
        flags: String,
    },
    /// `bound(?v)`.
    Bound(Var),
    /// `str(expr)` — the string form of a term.
    Str(Box<Expr>),
    /// `EXISTS { … }` — true if the pattern matches under the current
    /// binding.
    Exists(Box<GraphPattern>),
    /// `NOT EXISTS { … }`.
    NotExists(Box<GraphPattern>),
}

/// A graph pattern (the contents of a `WHERE` clause).
#[derive(Debug, Clone, PartialEq)]
pub enum GraphPattern {
    /// A basic graph pattern: a conjunction of triple patterns.
    Bgp(Vec<PatternTriple>),
    /// Sequential join of two patterns.
    Join(Box<GraphPattern>, Box<GraphPattern>),
    /// Left outer join: `lhs OPTIONAL { rhs }`.
    Optional(Box<GraphPattern>, Box<GraphPattern>),
    /// `{ lhs } UNION { rhs }`.
    Union(Box<GraphPattern>, Box<GraphPattern>),
    /// `pattern FILTER(expr)`.
    Filter(Expr, Box<GraphPattern>),
}

impl GraphPattern {
    /// Collects all variables mentioned anywhere in the pattern,
    /// in first-occurrence order.
    pub fn all_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        let push = |v: &Var, out: &mut Vec<Var>| {
            if !out.contains(v) {
                out.push(v.clone());
            }
        };
        match self {
            GraphPattern::Bgp(triples) => {
                for t in triples {
                    for v in t.vars() {
                        push(v, out);
                    }
                }
            }
            GraphPattern::Join(a, b)
            | GraphPattern::Optional(a, b)
            | GraphPattern::Union(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            GraphPattern::Filter(expr, inner) => {
                inner.collect_vars(out);
                expr_vars(expr, out);
            }
        }
    }
}

/// Collects the variables an expression mentions (including those inside
/// EXISTS sub-patterns) into `out`, first occurrence first, no duplicates.
pub(crate) fn expr_vars(expr: &Expr, out: &mut Vec<Var>) {
    let push = |v: &Var, out: &mut Vec<Var>| {
        if !out.contains(v) {
            out.push(v.clone());
        }
    };
    match expr {
        Expr::Var(v) | Expr::Bound(v) => push(v, out),
        Expr::Const(_) => {}
        Expr::Eq(a, b)
        | Expr::Ne(a, b)
        | Expr::Lt(a, b)
        | Expr::Le(a, b)
        | Expr::Gt(a, b)
        | Expr::Ge(a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
        Expr::Not(a) | Expr::Str(a) => expr_vars(a, out),
        Expr::Regex { target, .. } => expr_vars(target, out),
        Expr::Exists(p) | Expr::NotExists(p) => p.collect_vars(out),
    }
}

/// One item of the `SELECT` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// A plain variable projection.
    Var(Var),
    /// `(COUNT(?v) AS ?alias)` or `(COUNT(*) AS ?alias)`.
    Count {
        /// The counted variable; `None` means `COUNT(*)`.
        var: Option<Var>,
        /// `COUNT(DISTINCT …)`.
        distinct: bool,
        /// The output column.
        alias: Var,
    },
}

impl SelectItem {
    /// The output column name of this item.
    pub fn output_var(&self) -> &Var {
        match self {
            SelectItem::Var(v) => v,
            SelectItem::Count { alias, .. } => alias,
        }
    }
}

/// The `SELECT` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// `SELECT *`.
    Star,
    /// An explicit projection list.
    Items(Vec<SelectItem>),
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// The sort variable.
    pub var: Var,
    /// Ascending (`true`) or descending.
    pub ascending: bool,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `PREFIX` table: prefix → namespace IRI.
    pub prefixes: BTreeMap<String, String>,
    /// `ASK` form: the answer is a single boolean (does the pattern match?).
    pub ask: bool,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// The projection.
    pub selection: Selection,
    /// The `WHERE` pattern.
    pub pattern: GraphPattern,
    /// `GROUP BY` variables.
    pub group_by: Vec<Var>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`.
    pub limit: Option<usize>,
    /// `OFFSET`.
    pub offset: Option<usize>,
}

impl Query {
    /// The output column names in order.
    pub fn output_columns(&self) -> Vec<String> {
        if self.ask {
            return vec!["ask".to_string()];
        }
        match &self.selection {
            Selection::Star => self.pattern.all_vars().into_iter().map(|v| v.0).collect(),
            Selection::Items(items) => {
                items.iter().map(|i| i.output_var().0.clone()).collect()
            }
        }
    }

    /// True if the query uses aggregation.
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || matches!(&self.selection, Selection::Items(items)
                if items.iter().any(|i| matches!(i, SelectItem::Count { .. })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Var {
        Var::new(name)
    }

    #[test]
    fn pattern_triple_vars() {
        let t = PatternTriple {
            s: NodeRef::Var(v("s")),
            p: Verb::iri(Term::iri("p")),
            o: NodeRef::Var(v("o")),
        };
        let vars: Vec<_> = t.vars().collect();
        assert_eq!(vars, vec![&v("s"), &v("o")]);
    }

    #[test]
    fn all_vars_dedup_in_order() {
        let pattern = GraphPattern::Filter(
            Expr::Regex {
                target: Box::new(Expr::Var(v("name"))),
                pattern: "customer".into(),
                flags: "i".into(),
            },
            Box::new(GraphPattern::Bgp(vec![
                PatternTriple {
                    s: NodeRef::Var(v("x")),
                    p: Verb::iri(Term::iri("p")),
                    o: NodeRef::Var(v("name")),
                },
                PatternTriple {
                    s: NodeRef::Var(v("x")),
                    p: Verb::iri(Term::iri("q")),
                    o: NodeRef::Var(v("y")),
                },
            ])),
        );
        assert_eq!(pattern.all_vars(), vec![v("x"), v("name"), v("y")]);
    }

    #[test]
    fn output_columns_star_and_items() {
        let q = Query {
            prefixes: BTreeMap::new(),
            ask: false,
            distinct: false,
            selection: Selection::Items(vec![
                SelectItem::Var(v("class")),
                SelectItem::Count { var: None, distinct: false, alias: v("n") },
            ]),
            pattern: GraphPattern::Bgp(vec![]),
            group_by: vec![v("class")],
            order_by: vec![],
            limit: None,
            offset: None,
        };
        assert_eq!(q.output_columns(), vec!["class", "n"]);
        assert!(q.is_aggregate());
    }
}
