//! Error type for the SPARQL engine.

use std::fmt;

/// Errors from parsing or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Query text failed to parse.
    Parse {
        /// 1-based line in the query text.
        line: usize,
        /// 1-based character column within that line.
        column: usize,
        /// What went wrong.
        message: String,
    },
    /// The query references an undefined prefix.
    UndefinedPrefix(String),
    /// A semantic error (e.g. projecting an unbound variable under
    /// aggregation, unknown model name).
    Semantic(String),
    /// A regex filter failed to compile.
    BadRegex(String),
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Parse { line, column, message } => {
                write!(f, "query parse error at line {line}, column {column}: {message}")
            }
            SparqlError::UndefinedPrefix(p) => write!(f, "undefined prefix: {p}:"),
            SparqlError::Semantic(m) => write!(f, "semantic error: {m}"),
            SparqlError::BadRegex(m) => write!(f, "bad regex: {m}"),
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SparqlError::Parse { line: 2, column: 7, message: "expected WHERE".into() };
        assert_eq!(e.to_string(), "query parse error at line 2, column 7: expected WHERE");
        assert_eq!(
            SparqlError::UndefinedPrefix("dm".into()).to_string(),
            "undefined prefix: dm:"
        );
    }
}
