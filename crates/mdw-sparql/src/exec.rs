//! Query execution: binding sets over a [`TripleSource`].
//!
//! Basic graph patterns are evaluated with a greedy, selectivity-ordered
//! nested index-loop join: at every step the executor picks the remaining
//! triple pattern with the most bound positions (constants or
//! already-bound variables), breaking ties with a capped cardinality
//! estimate from the source. This mirrors what any triple store's BGP
//! optimizer does and keeps the paper's Listing 1/2 queries index-driven.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};

use mdw_rdf::dict::{Dictionary, TermId};
use mdw_rdf::store::TripleSource;
use mdw_rdf::term::Term;
use mdw_rdf::triple::TriplePattern;

use crate::ast::*;
use crate::error::SparqlError;
use crate::regex_lite::Regex;

/// One output row: values aligned with [`QueryOutput::columns`];
/// `None` is an unbound (OPTIONAL) cell.
pub type ResultRow = Vec<Option<Term>>;

/// The result table of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Output column names, in `SELECT` order.
    pub columns: Vec<String>,
    /// The rows.
    pub rows: Vec<ResultRow>,
}

impl QueryOutput {
    /// Renders the table as aligned plain text (used by examples and the
    /// reproduction harness).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, cell)| {
                        let s = cell
                            .as_ref()
                            .map(term_display)
                            .unwrap_or_else(|| "—".to_string());
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-+-"));
        out.push('\n');
        for row in rendered {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        out
    }
}

fn term_display(t: &Term) -> String {
    match t {
        Term::Iri(_) => t.label().to_string(),
        Term::BlankNode(b) => format!("_:{b}"),
        Term::Literal(lit) => lit.lexical.to_string(),
    }
}

/// Executes a parsed query against a triple source and its dictionary.
pub fn execute(
    query: &Query,
    source: &dyn TripleSource,
    dict: &Dictionary,
) -> Result<QueryOutput, SparqlError> {
    Executor { source, dict, regex_cache: RefCell::new(HashMap::new()) }.run(query)
}

/// A binding: var-index → term id (None = unbound).
type Binding = Vec<Option<TermId>>;

struct Executor<'a> {
    source: &'a dyn TripleSource,
    dict: &'a Dictionary,
    regex_cache: RefCell<HashMap<(String, String), Regex>>,
}

struct VarTable {
    names: Vec<String>,
}

impl VarTable {
    fn new(query: &Query) -> Self {
        let mut names: Vec<String> = query.pattern.all_vars().into_iter().map(|v| v.0).collect();
        if let Selection::Items(items) = &query.selection {
            for item in items {
                let v = item.output_var();
                if !names.contains(&v.0) {
                    names.push(v.0.clone());
                }
            }
        }
        VarTable { names }
    }

    fn index(&self, var: &Var) -> Option<usize> {
        self.names.iter().position(|n| *n == var.0)
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

impl<'a> Executor<'a> {
    fn run(&self, query: &Query) -> Result<QueryOutput, SparqlError> {
        let vars = VarTable::new(query);
        let empty = vec![None; vars.len()];
        let bindings = self.eval_pattern(&query.pattern, &vars, vec![empty])?;

        let columns = query.output_columns();
        if query.ask {
            let answer = !bindings.is_empty();
            return Ok(QueryOutput {
                columns,
                rows: vec![vec![Some(Term::typed(
                    answer.to_string(),
                    mdw_rdf::vocab::xsd::BOOLEAN,
                ))]],
            });
        }
        let mut rows: Vec<ResultRow> = if query.is_aggregate() {
            self.aggregate(query, &vars, bindings)?
        } else {
            let indices: Vec<Option<usize>> = match &query.selection {
                Selection::Star => vars.names.iter().enumerate().map(|(i, _)| Some(i)).collect(),
                Selection::Items(items) => items
                    .iter()
                    .map(|item| match item {
                        SelectItem::Var(v) => Ok(vars.index(v)),
                        SelectItem::Count { .. } => unreachable!("aggregate handled above"),
                    })
                    .collect::<Result<_, SparqlError>>()?,
            };
            bindings
                .into_iter()
                .map(|b| {
                    indices
                        .iter()
                        .map(|idx| {
                            idx.and_then(|i| b[i]).map(|id| self.dict.term_unchecked(id).clone())
                        })
                        .collect()
                })
                .collect()
        };

        if query.distinct {
            let mut seen = std::collections::BTreeSet::new();
            rows.retain(|row| seen.insert(row.clone()));
        }

        if !query.order_by.is_empty() {
            let key_indices: Vec<(usize, bool)> = query
                .order_by
                .iter()
                .filter_map(|k| {
                    columns
                        .iter()
                        .position(|c| *c == k.var.0)
                        .map(|i| (i, k.ascending))
                })
                .collect();
            rows.sort_by(|a, b| {
                for &(i, asc) in &key_indices {
                    let ord = compare_cells(&a[i], &b[i]);
                    if ord != Ordering::Equal {
                        return if asc { ord } else { ord.reverse() };
                    }
                }
                Ordering::Equal
            });
        }

        let offset = query.offset.unwrap_or(0);
        if offset > 0 {
            rows = rows.into_iter().skip(offset).collect();
        }
        if let Some(limit) = query.limit {
            rows.truncate(limit);
        }

        Ok(QueryOutput { columns, rows })
    }

    fn aggregate(
        &self,
        query: &Query,
        vars: &VarTable,
        bindings: Vec<Binding>,
    ) -> Result<Vec<ResultRow>, SparqlError> {
        let Selection::Items(items) = &query.selection else {
            return Err(SparqlError::Semantic(
                "SELECT * cannot be combined with aggregation".to_string(),
            ));
        };
        let group_indices: Vec<usize> = query
            .group_by
            .iter()
            .map(|v| {
                vars.index(v).ok_or_else(|| {
                    SparqlError::Semantic(format!("GROUP BY variable ?{} not in pattern", v.0))
                })
            })
            .collect::<Result<_, _>>()?;

        // Group key → (representative binding, group members).
        let mut groups: Vec<(Vec<Option<TermId>>, Vec<Binding>)> = Vec::new();
        let mut lookup: HashMap<Vec<Option<TermId>>, usize> = HashMap::new();
        for b in bindings {
            let key: Vec<Option<TermId>> = group_indices.iter().map(|&i| b[i]).collect();
            match lookup.get(&key) {
                Some(&g) => groups[g].1.push(b),
                None => {
                    lookup.insert(key.clone(), groups.len());
                    groups.push((key, vec![b]));
                }
            }
        }
        // With no GROUP BY, COUNT over the whole solution is one group —
        // even when empty.
        if groups.is_empty() && query.group_by.is_empty() {
            groups.push((vec![], vec![]));
        }

        let mut rows = Vec::with_capacity(groups.len());
        for (_, members) in &groups {
            let mut row: ResultRow = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    SelectItem::Var(v) => {
                        let idx = vars.index(v).ok_or_else(|| {
                            SparqlError::Semantic(format!("unknown variable ?{}", v.0))
                        })?;
                        if !query.group_by.contains(v) {
                            return Err(SparqlError::Semantic(format!(
                                "variable ?{} projected without being grouped",
                                v.0
                            )));
                        }
                        let value = members
                            .first()
                            .and_then(|m| m[idx])
                            .map(|id| self.dict.term_unchecked(id).clone());
                        row.push(value);
                    }
                    SelectItem::Count { var, distinct, .. } => {
                        let count = match var {
                            None => members.len(),
                            Some(v) => {
                                let idx = vars.index(v).ok_or_else(|| {
                                    SparqlError::Semantic(format!("unknown variable ?{}", v.0))
                                })?;
                                if *distinct {
                                    let mut ids: Vec<TermId> =
                                        members.iter().filter_map(|m| m[idx]).collect();
                                    ids.sort_unstable();
                                    ids.dedup();
                                    ids.len()
                                } else {
                                    members.iter().filter(|m| m[idx].is_some()).count()
                                }
                            }
                        };
                        row.push(Some(Term::integer(count as i64)));
                    }
                }
            }
            rows.push(row);
        }
        Ok(rows)
    }

    fn eval_pattern(
        &self,
        pattern: &GraphPattern,
        vars: &VarTable,
        input: Vec<Binding>,
    ) -> Result<Vec<Binding>, SparqlError> {
        match pattern {
            GraphPattern::Bgp(triples) => {
                let mut out = Vec::new();
                for binding in input {
                    self.eval_bgp(triples, vars, binding, &mut out)?;
                }
                Ok(out)
            }
            GraphPattern::Join(a, b) => {
                let left = self.eval_pattern(a, vars, input)?;
                self.eval_pattern(b, vars, left)
            }
            GraphPattern::Optional(a, b) => {
                let left = self.eval_pattern(a, vars, input)?;
                let mut out = Vec::new();
                for binding in left {
                    let extended = self.eval_pattern(b, vars, vec![binding.clone()])?;
                    if extended.is_empty() {
                        out.push(binding);
                    } else {
                        out.extend(extended);
                    }
                }
                Ok(out)
            }
            GraphPattern::Union(a, b) => {
                let mut left = self.eval_pattern(a, vars, input.clone())?;
                let right = self.eval_pattern(b, vars, input)?;
                left.extend(right);
                Ok(left)
            }
            GraphPattern::Filter(expr, inner) => {
                let rows = self.eval_pattern(inner, vars, input)?;
                let mut out = Vec::with_capacity(rows.len());
                for b in rows {
                    // SPARQL semantics: an erroring filter is falsy.
                    if self.eval_expr(expr, vars, &b)?.unwrap_or(false) {
                        out.push(b);
                    }
                }
                Ok(out)
            }
        }
    }

    /// Evaluates a BGP for one input binding, appending solutions to `out`.
    fn eval_bgp(
        &self,
        triples: &[PatternTriple],
        vars: &VarTable,
        binding: Binding,
        out: &mut Vec<Binding>,
    ) -> Result<(), SparqlError> {
        // Pre-resolve constants; a constant absent from the dictionary can
        // never match, so the BGP is empty. (Property paths are exempt: a
        // nullable path can match even when its predicate is unknown.)
        let mut resolved: Vec<ResolvedUnit> = Vec::with_capacity(triples.len());
        for t in triples {
            let Some(rt) = self.resolve_unit(t, vars) else {
                return Ok(());
            };
            resolved.push(rt);
        }
        let mut remaining: Vec<ResolvedUnit> = resolved;
        self.bgp_step(&mut remaining, binding, out);
        Ok(())
    }

    fn bgp_step(&self, remaining: &mut Vec<ResolvedUnit>, binding: Binding, out: &mut Vec<Binding>) {
        if remaining.is_empty() {
            out.push(binding);
            return;
        }
        // Greedy: pick the unit with the most bound positions under the
        // current binding; tie-break with a capped estimate. Paths are
        // costed by whether an endpoint is bound.
        let mut best = 0;
        let mut best_score = (usize::MAX, usize::MAX); // (unbound, estimate)
        for (i, unit) in remaining.iter().enumerate() {
            let score = match unit {
                ResolvedUnit::Triple(rt) => {
                    let pat = rt.to_pattern(&binding);
                    (3 - pat.bound_count(), self.source.estimate(pat, 64))
                }
                ResolvedUnit::Path { s, o, .. } => {
                    let s_bound = s.resolve_pos(&binding).is_some();
                    let o_bound = o.resolve_pos(&binding).is_some();
                    match (s_bound, o_bound) {
                        (true, true) => (1, 64),
                        (true, false) | (false, true) => (2, 512),
                        // An unbounded closure scan — do it last.
                        (false, false) => (3, usize::MAX),
                    }
                }
            };
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        let unit = remaining.remove(best);
        match &unit {
            ResolvedUnit::Triple(rt) => {
                let pat = rt.to_pattern(&binding);
                let matches: Vec<_> = self.source.scan_pattern(pat).collect();
                for t in matches {
                    let mut next = binding.clone();
                    if rt.extend(&mut next, t) {
                        self.bgp_step(remaining, next, out);
                    }
                }
            }
            ResolvedUnit::Path { s, path, o } => {
                let pairs = self.eval_path(
                    path,
                    s.resolve_pos(&binding),
                    o.resolve_pos(&binding),
                );
                for (from, to) in pairs {
                    let mut next = binding.clone();
                    if s.bind(&mut next, from) && o.bind(&mut next, to) {
                        self.bgp_step(remaining, next, out);
                    }
                }
            }
        }
        remaining.insert(best, unit);
    }

    fn resolve_unit(&self, t: &PatternTriple, vars: &VarTable) -> Option<ResolvedUnit> {
        let pos = |n: &NodeRef| -> Option<ResolvedPos> {
            Some(match n {
                NodeRef::Var(v) => ResolvedPos::Var(vars.index(v).expect("var table complete")),
                NodeRef::Term(term) => ResolvedPos::Const(self.dict.lookup(term)?),
            })
        };
        Some(match &t.p {
            Verb::Node(p) => ResolvedUnit::Triple(ResolvedTriple {
                s: pos(&t.s)?,
                p: pos(p)?,
                o: pos(&t.o)?,
            }),
            Verb::Path(path) => ResolvedUnit::Path {
                s: pos(&t.s)?,
                path: self.compile_path(path),
                o: pos(&t.o)?,
            },
        })
    }

    fn compile_path(&self, path: &PathExpr) -> CompiledPath {
        match path {
            // An unknown predicate can never match a hop, but nullable
            // closures around it still match zero hops.
            PathExpr::Iri(term) => CompiledPath::Pred(self.dict.lookup(term)),
            PathExpr::Inverse(p) => CompiledPath::Inverse(Box::new(self.compile_path(p))),
            PathExpr::Seq(a, b) => CompiledPath::Seq(
                Box::new(self.compile_path(a)),
                Box::new(self.compile_path(b)),
            ),
            PathExpr::Alt(a, b) => CompiledPath::Alt(
                Box::new(self.compile_path(a)),
                Box::new(self.compile_path(b)),
            ),
            PathExpr::ZeroOrMore(p) => {
                CompiledPath::ZeroOrMore(Box::new(self.compile_path(p)))
            }
            PathExpr::OneOrMore(p) => CompiledPath::OneOrMore(Box::new(self.compile_path(p))),
            PathExpr::ZeroOrOne(p) => CompiledPath::ZeroOrOne(Box::new(self.compile_path(p))),
        }
    }

    /// Evaluates a property path, returning `(from, to)` pairs consistent
    /// with the given endpoint bindings.
    fn eval_path(
        &self,
        path: &CompiledPath,
        s: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<(TermId, TermId)> {
        match (s, o) {
            (Some(s), Some(o)) => {
                let targets = self.path_from(path, s);
                if targets.contains(&o) {
                    vec![(s, o)]
                } else {
                    Vec::new()
                }
            }
            (Some(s), None) => self.path_from(path, s).into_iter().map(|t| (s, t)).collect(),
            (None, Some(o)) => {
                let rev = path.reversed();
                self.path_from(&rev, o).into_iter().map(|t| (t, o)).collect()
            }
            (None, None) => {
                // Both ends free: enumerate candidate start nodes from the
                // path's base predicates, then evaluate forward. Per the
                // SPARQL spec zero-length paths range over all graph terms;
                // we restrict to terms incident to the path's predicates,
                // which is what every practical query needs.
                let mut out = std::collections::BTreeSet::new();
                let starts = self.path_start_candidates(path);
                for s in starts {
                    for t in self.path_from(path, s) {
                        out.insert((s, t));
                    }
                }
                out.into_iter().collect()
            }
        }
    }

    /// All nodes reachable from `from` via `path`.
    fn path_from(&self, path: &CompiledPath, from: TermId) -> BTreeSet<TermId> {
        let mut out = BTreeSet::new();
        match path {
            CompiledPath::Pred(Some(p)) => {
                for t in self.source.scan_pattern(TriplePattern::with_sp(from, *p)) {
                    out.insert(t.o);
                }
            }
            CompiledPath::Pred(None) => {}
            CompiledPath::Inverse(inner) => match inner.as_ref() {
                // Base case: traverse one predicate backwards via the
                // object index (avoids re-wrapping into Inverse forever).
                CompiledPath::Pred(Some(p)) => {
                    for t in self.source.scan_pattern(TriplePattern::with_po(*p, from)) {
                        out.insert(t.s);
                    }
                }
                CompiledPath::Pred(None) => {}
                other => out.extend(self.path_from(&other.reversed(), from)),
            },
            CompiledPath::Seq(a, b) => {
                for mid in self.path_from(a, from) {
                    out.extend(self.path_from(b, mid));
                }
            }
            CompiledPath::Alt(a, b) => {
                out.extend(self.path_from(a, from));
                out.extend(self.path_from(b, from));
            }
            CompiledPath::ZeroOrMore(p) => {
                out = self.closure_from(p, from);
                out.insert(from);
            }
            CompiledPath::OneOrMore(p) => {
                out = self.closure_from(p, from);
            }
            CompiledPath::ZeroOrOne(p) => {
                out = self.path_from(p, from);
                out.insert(from);
            }
        }
        out
    }

    /// BFS closure: every node reachable in ≥1 application of `step`.
    fn closure_from(&self, step: &CompiledPath, from: TermId) -> BTreeSet<TermId> {
        let mut seen = BTreeSet::new();
        let mut frontier = vec![from];
        while let Some(node) = frontier.pop() {
            for next in self.path_from(step, node) {
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
        seen
    }

    /// Candidate start nodes when both path endpoints are unbound: the
    /// subjects (and, under inverses, objects) of the base predicates.
    fn path_start_candidates(&self, path: &CompiledPath) -> BTreeSet<TermId> {
        let mut out = BTreeSet::new();
        self.collect_start_candidates(path, false, &mut out);
        out
    }

    fn collect_start_candidates(
        &self,
        path: &CompiledPath,
        inverted: bool,
        out: &mut BTreeSet<TermId>,
    ) {
        match path {
            CompiledPath::Pred(Some(p)) => {
                for t in self.source.scan_pattern(TriplePattern::with_p(*p)) {
                    out.insert(if inverted { t.o } else { t.s });
                    // Nullable wrappers above may pair any incident node
                    // with itself; include both endpoints to be safe.
                    out.insert(if inverted { t.s } else { t.o });
                }
            }
            CompiledPath::Pred(None) => {}
            CompiledPath::Inverse(p) => self.collect_start_candidates(p, !inverted, out),
            CompiledPath::Seq(a, _) => self.collect_start_candidates(a, inverted, out),
            CompiledPath::Alt(a, b) => {
                self.collect_start_candidates(a, inverted, out);
                self.collect_start_candidates(b, inverted, out);
            }
            CompiledPath::ZeroOrMore(p)
            | CompiledPath::OneOrMore(p)
            | CompiledPath::ZeroOrOne(p) => self.collect_start_candidates(p, inverted, out),
        }
    }

    /// Evaluates a filter expression to a boolean; `Ok(None)` is an error
    /// value (treated as false by the caller).
    fn eval_expr(
        &self,
        expr: &Expr,
        vars: &VarTable,
        binding: &Binding,
    ) -> Result<Option<bool>, SparqlError> {
        Ok(match self.eval_value(expr, vars, binding)? {
            Some(Value::Bool(b)) => Some(b),
            Some(Value::Term(_)) => None, // a bare term is not a boolean
            None => None,
        })
    }

    fn eval_value(
        &self,
        expr: &Expr,
        vars: &VarTable,
        binding: &Binding,
    ) -> Result<Option<Value>, SparqlError> {
        let v = match expr {
            Expr::Var(v) => {
                let idx = vars
                    .index(v)
                    .ok_or_else(|| SparqlError::Semantic(format!("unknown variable ?{}", v.0)))?;
                binding[idx].map(|id| Value::Term(self.dict.term_unchecked(id).clone()))
            }
            Expr::Const(t) => Some(Value::Term(t.clone())),
            Expr::Bound(v) => {
                let idx = vars
                    .index(v)
                    .ok_or_else(|| SparqlError::Semantic(format!("unknown variable ?{}", v.0)))?;
                Some(Value::Bool(binding[idx].is_some()))
            }
            Expr::Str(inner) => match self.eval_value(inner, vars, binding)? {
                Some(Value::Term(t)) => Some(Value::Term(Term::plain(term_string(&t)))),
                other => other,
            },
            Expr::Not(inner) => self
                .eval_expr(inner, vars, binding)?
                .map(|b| Value::Bool(!b)),
            Expr::And(a, b) => {
                let l = self.eval_expr(a, vars, binding)?;
                let r = self.eval_expr(b, vars, binding)?;
                match (l, r) {
                    (Some(false), _) | (_, Some(false)) => Some(Value::Bool(false)),
                    (Some(true), Some(true)) => Some(Value::Bool(true)),
                    _ => None,
                }
            }
            Expr::Or(a, b) => {
                let l = self.eval_expr(a, vars, binding)?;
                let r = self.eval_expr(b, vars, binding)?;
                match (l, r) {
                    (Some(true), _) | (_, Some(true)) => Some(Value::Bool(true)),
                    (Some(false), Some(false)) => Some(Value::Bool(false)),
                    _ => None,
                }
            }
            Expr::Eq(a, b) => self.compare(a, b, vars, binding)?.map(|o| Value::Bool(o == Ordering::Equal)),
            Expr::Ne(a, b) => self.compare(a, b, vars, binding)?.map(|o| Value::Bool(o != Ordering::Equal)),
            Expr::Lt(a, b) => self.compare(a, b, vars, binding)?.map(|o| Value::Bool(o == Ordering::Less)),
            Expr::Le(a, b) => self.compare(a, b, vars, binding)?.map(|o| Value::Bool(o != Ordering::Greater)),
            Expr::Gt(a, b) => self.compare(a, b, vars, binding)?.map(|o| Value::Bool(o == Ordering::Greater)),
            Expr::Ge(a, b) => self.compare(a, b, vars, binding)?.map(|o| Value::Bool(o != Ordering::Less)),
            Expr::Exists(pattern) => {
                let rows = self.eval_pattern(pattern, vars, vec![binding.clone()])?;
                Some(Value::Bool(!rows.is_empty()))
            }
            Expr::NotExists(pattern) => {
                let rows = self.eval_pattern(pattern, vars, vec![binding.clone()])?;
                Some(Value::Bool(rows.is_empty()))
            }
            Expr::Regex { target, pattern, flags } => {
                let target = self.eval_value(target, vars, binding)?;
                match target {
                    Some(Value::Term(t)) => {
                        let key = (pattern.clone(), flags.clone());
                        {
                            let cache = self.regex_cache.borrow();
                            if let Some(re) = cache.get(&key) {
                                return Ok(Some(Value::Bool(re.is_match(&term_string(&t)))));
                            }
                        }
                        let re = Regex::with_flags(pattern, flags)
                            .map_err(|e| SparqlError::BadRegex(e.to_string()))?;
                        let matched = re.is_match(&term_string(&t));
                        self.regex_cache.borrow_mut().insert(key, re);
                        Some(Value::Bool(matched))
                    }
                    _ => None,
                }
            }
        };
        Ok(v)
    }

    fn compare(
        &self,
        a: &Expr,
        b: &Expr,
        vars: &VarTable,
        binding: &Binding,
    ) -> Result<Option<Ordering>, SparqlError> {
        let (Some(Value::Term(l)), Some(Value::Term(r))) = (
            self.eval_value(a, vars, binding)?,
            self.eval_value(b, vars, binding)?,
        ) else {
            return Ok(None);
        };
        Ok(Some(compare_terms(&l, &r)))
    }
}

#[derive(Debug, Clone)]
enum Value {
    Term(Term),
    Bool(bool),
}

#[derive(Debug, Clone, Copy)]
enum ResolvedPos {
    Var(usize),
    Const(TermId),
}

impl ResolvedPos {
    /// The concrete id under a binding, if any.
    fn resolve_pos(self, binding: &Binding) -> Option<TermId> {
        match self {
            ResolvedPos::Const(id) => Some(id),
            ResolvedPos::Var(idx) => binding[idx],
        }
    }

    /// Binds (or checks) the position against a concrete id.
    fn bind(self, binding: &mut Binding, id: TermId) -> bool {
        match self {
            ResolvedPos::Const(c) => c == id,
            ResolvedPos::Var(idx) => match binding[idx] {
                Some(existing) => existing == id,
                None => {
                    binding[idx] = Some(id);
                    true
                }
            },
        }
    }
}

/// One planned unit of a BGP: a plain triple pattern or a property path.
#[derive(Debug, Clone)]
enum ResolvedUnit {
    Triple(ResolvedTriple),
    Path {
        s: ResolvedPos,
        path: CompiledPath,
        o: ResolvedPos,
    },
}

/// A property path with dictionary-resolved predicates. `Pred(None)` is a
/// predicate the graph has never seen — it matches no hop (but nullable
/// wrappers around it still match zero hops).
#[derive(Debug, Clone)]
enum CompiledPath {
    Pred(Option<TermId>),
    Inverse(Box<CompiledPath>),
    Seq(Box<CompiledPath>, Box<CompiledPath>),
    Alt(Box<CompiledPath>, Box<CompiledPath>),
    ZeroOrMore(Box<CompiledPath>),
    OneOrMore(Box<CompiledPath>),
    ZeroOrOne(Box<CompiledPath>),
}

impl CompiledPath {
    /// The path that matches exactly the reversed pairs.
    fn reversed(&self) -> CompiledPath {
        match self {
            CompiledPath::Pred(p) => CompiledPath::Inverse(Box::new(CompiledPath::Pred(*p))),
            CompiledPath::Inverse(p) => (**p).clone(),
            CompiledPath::Seq(a, b) => {
                CompiledPath::Seq(Box::new(b.reversed()), Box::new(a.reversed()))
            }
            CompiledPath::Alt(a, b) => {
                CompiledPath::Alt(Box::new(a.reversed()), Box::new(b.reversed()))
            }
            CompiledPath::ZeroOrMore(p) => CompiledPath::ZeroOrMore(Box::new(p.reversed())),
            CompiledPath::OneOrMore(p) => CompiledPath::OneOrMore(Box::new(p.reversed())),
            CompiledPath::ZeroOrOne(p) => CompiledPath::ZeroOrOne(Box::new(p.reversed())),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ResolvedTriple {
    s: ResolvedPos,
    p: ResolvedPos,
    o: ResolvedPos,
}

impl ResolvedTriple {
    fn to_pattern(self, binding: &Binding) -> TriplePattern {
        let resolve = |p: ResolvedPos| match p {
            ResolvedPos::Const(id) => Some(id),
            ResolvedPos::Var(idx) => binding[idx],
        };
        TriplePattern {
            s: resolve(self.s),
            p: resolve(self.p),
            o: resolve(self.o),
        }
    }

    /// Extends `binding` with the triple's values; `false` if a repeated
    /// variable disagrees.
    fn extend(self, binding: &mut Binding, t: mdw_rdf::triple::Triple) -> bool {
        let mut set = |pos: ResolvedPos, id: TermId| -> bool {
            match pos {
                ResolvedPos::Const(c) => c == id,
                ResolvedPos::Var(idx) => match binding[idx] {
                    Some(existing) => existing == id,
                    None => {
                        binding[idx] = Some(id);
                        true
                    }
                },
            }
        };
        set(self.s, t.s) && set(self.p, t.p) && set(self.o, t.o)
    }
}

/// The string form of a term for regex / str(): literal lexical form, IRI
/// text, or blank label.
fn term_string(t: &Term) -> String {
    match t {
        Term::Iri(iri) => iri.to_string(),
        Term::BlankNode(b) => b.to_string(),
        Term::Literal(lit) => lit.lexical.to_string(),
    }
}

/// Compares two terms: numerically when both are numeric literals, else by
/// string form, else by full term order.
fn compare_terms(a: &Term, b: &Term) -> Ordering {
    if let (Some(la), Some(lb)) = (a.as_literal(), b.as_literal()) {
        if let (Some(na), Some(nb)) = (la.as_integer(), lb.as_integer()) {
            return na.cmp(&nb);
        }
        return la.lexical.cmp(&lb.lexical);
    }
    a.cmp(b)
}

fn compare_cells(a: &Option<Term>, b: &Option<Term>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => compare_terms(x, y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use mdw_rdf::store::Store;
    use mdw_rdf::vocab;

    fn sample_store() -> Store {
        let mut store = Store::new();
        store.create_model("m").unwrap();
        let data: Vec<(&str, &str, Term)> = vec![
            ("john", vocab::rdf::TYPE, Term::iri("Customer")),
            ("jane", vocab::rdf::TYPE, Term::iri("Customer")),
            ("acme", vocab::rdf::TYPE, Term::iri("Institution")),
            ("john", "hasName", Term::plain("John Doe")),
            ("jane", "hasName", Term::plain("Jane Customer")),
            ("acme", "hasName", Term::plain("ACME AG")),
            ("john", "hasAge", Term::integer(42)),
            ("jane", "hasAge", Term::integer(29)),
            ("Customer", vocab::rdfs::LABEL, Term::plain("Customer")),
            ("Institution", vocab::rdfs::LABEL, Term::plain("Institution")),
        ];
        for (s, p, o) in data {
            store.insert("m", &Term::iri(s), &Term::iri(p), &o).unwrap();
        }
        store
    }

    fn run(store: &Store, q: &str) -> QueryOutput {
        let query = parse(q).unwrap();
        execute(&query, store.model("m").unwrap(), store.dict()).unwrap()
    }

    #[test]
    fn simple_bgp() {
        let store = sample_store();
        let out = run(&store, "SELECT ?x WHERE { ?x a <Customer> }");
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn join_across_patterns() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x ?name WHERE { ?x a <Customer> . ?x <hasName> ?name }",
        );
        assert_eq!(out.rows.len(), 2);
        let names: Vec<String> = out
            .rows
            .iter()
            .map(|r| r[1].as_ref().unwrap().label().to_string())
            .collect();
        assert!(names.contains(&"John Doe".to_string()));
        assert!(names.contains(&"Jane Customer".to_string()));
    }

    #[test]
    fn filter_regex_case_insensitive() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x WHERE { ?x <hasName> ?n FILTER(regex(?n, \"customer\", \"i\")) }",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "jane");
    }

    #[test]
    fn filter_numeric_comparison() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x WHERE { ?x <hasAge> ?age FILTER(?age > 30) }",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "john");
    }

    #[test]
    fn filter_equality_on_terms() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x WHERE { ?x a ?c FILTER(?c = <Institution>) }",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "acme");
    }

    #[test]
    fn optional_with_bound_check() {
        let store = sample_store();
        // acme has no hasAge → unbound cell.
        let out = run(
            &store,
            "SELECT ?x ?age WHERE { ?x <hasName> ?n OPTIONAL { ?x <hasAge> ?age } } ORDER BY ?x",
        );
        assert_eq!(out.rows.len(), 3);
        let acme_row = out
            .rows
            .iter()
            .find(|r| r[0].as_ref().unwrap().label() == "acme")
            .unwrap();
        assert!(acme_row[1].is_none());
    }

    #[test]
    fn negated_bound_finds_missing() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x WHERE { ?x <hasName> ?n OPTIONAL { ?x <hasAge> ?age } FILTER(!bound(?age)) }",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "acme");
    }

    #[test]
    fn union_combines() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x WHERE { { ?x a <Customer> } UNION { ?x a <Institution> } }",
        );
        assert_eq!(out.rows.len(), 3);
    }

    #[test]
    fn group_by_count_listing1_shape() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?class (COUNT(?x) AS ?n) WHERE { ?x a ?c . ?c <http://www.w3.org/2000/01/rdf-schema#label> ?class } GROUP BY ?class ORDER BY ?class",
        );
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "Customer");
        assert_eq!(out.rows[0][1].as_ref().unwrap().label(), "2");
        assert_eq!(out.rows[1][0].as_ref().unwrap().label(), "Institution");
        assert_eq!(out.rows[1][1].as_ref().unwrap().label(), "1");
    }

    #[test]
    fn count_star_on_empty_is_zero() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT (COUNT(*) AS ?n) WHERE { ?x a <Nothing> }",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "0");
    }

    #[test]
    fn distinct_dedups() {
        let store = sample_store();
        let out = run(&store, "SELECT DISTINCT ?c WHERE { ?x a ?c }");
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn order_by_desc_limit_offset() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x ?age WHERE { ?x <hasAge> ?age } ORDER BY DESC(?age) LIMIT 1",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "john");

        let out = run(
            &store,
            "SELECT ?x ?age WHERE { ?x <hasAge> ?age } ORDER BY DESC(?age) LIMIT 1 OFFSET 1",
        );
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "jane");
    }

    #[test]
    fn unknown_constant_yields_empty() {
        let store = sample_store();
        let out = run(&store, "SELECT ?x WHERE { ?x a <NeverSeen> }");
        assert!(out.rows.is_empty());
    }

    #[test]
    fn repeated_variable_consistency() {
        let mut store = Store::new();
        store.create_model("m").unwrap();
        store
            .insert("m", &Term::iri("a"), &Term::iri("p"), &Term::iri("a"))
            .unwrap();
        store
            .insert("m", &Term::iri("a"), &Term::iri("p"), &Term::iri("b"))
            .unwrap();
        let out = run(&store, "SELECT ?x WHERE { ?x <p> ?x }");
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "a");
    }

    #[test]
    fn variable_predicate() {
        let store = sample_store();
        let out = run(&store, "SELECT DISTINCT ?p WHERE { <john> ?p ?o }");
        assert_eq!(out.rows.len(), 3); // rdf:type, hasName, hasAge
    }

    #[test]
    fn exists_and_not_exists() {
        let store = sample_store();
        // Customers WITH an age.
        let out = run(
            &store,
            "SELECT ?x WHERE { ?x a <Customer> FILTER(EXISTS { ?x <hasAge> ?age }) } ORDER BY ?x",
        );
        assert_eq!(out.rows.len(), 2);
        // Entities WITHOUT an age — the governance-gap query shape.
        let out = run(
            &store,
            "SELECT ?x WHERE { ?x <hasName> ?n FILTER(NOT EXISTS { ?x <hasAge> ?age }) }",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "acme");
        // EXISTS sees the outer binding (correlated).
        let out = run(
            &store,
            "SELECT ?x WHERE { ?x a <Institution> FILTER(EXISTS { ?x <hasName> ?n }) }",
        );
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn ask_query_answers_boolean() {
        let store = sample_store();
        let yes = run(&store, "ASK { ?x a <Customer> }");
        assert_eq!(yes.columns, vec!["ask"]);
        assert_eq!(yes.rows[0][0].as_ref().unwrap().label(), "true");
        let no = run(&store, "ASK { ?x a <Spaceship> }");
        assert_eq!(no.rows[0][0].as_ref().unwrap().label(), "false");
        // ASK with a filter.
        let filtered = run(&store, "ASK { ?x <hasAge> ?a FILTER(?a > 100) }");
        assert_eq!(filtered.rows[0][0].as_ref().unwrap().label(), "false");
    }

    #[test]
    fn table_rendering() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x ?age WHERE { ?x <hasAge> ?age } ORDER BY ?age",
        );
        let table = out.to_table();
        assert!(table.contains("x"));
        assert!(table.contains("jane"));
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn union_inside_join_with_filter() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x ?n WHERE {\n\
               { ?x a <Customer> } UNION { ?x a <Institution> }\n\
               ?x <hasName> ?n\n\
               FILTER(regex(?n, \"a\", \"i\"))\n\
             } ORDER BY ?x",
        );
        // Jane Customer and ACME AG contain 'a' (case-insensitive);
        // "John Doe" does not.
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn optional_inside_union_branch() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x ?age WHERE { { ?x a <Institution> OPTIONAL { ?x <hasAge> ?age } } UNION { ?x a <Customer> } } ORDER BY ?x",
        );
        assert_eq!(out.rows.len(), 3);
        // The institution row has no age.
        let acme = out.rows.iter().find(|r| r[0].as_ref().unwrap().label() == "acme").unwrap();
        assert!(acme[1].is_none());
    }

    #[test]
    fn multi_key_order_by() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?c ?x WHERE { ?x a ?c } ORDER BY ?c DESC(?x)",
        );
        assert_eq!(out.rows.len(), 3);
        // Within class Customer (first group), jane sorts after john under DESC.
        let labels: Vec<&str> = out.rows.iter().map(|r| r[1].as_ref().unwrap().label()).collect();
        assert_eq!(labels, vec!["john", "jane", "acme"]);
    }

    #[test]
    fn offset_beyond_result_set_is_empty() {
        let store = sample_store();
        let out = run(&store, "SELECT ?x WHERE { ?x a <Customer> } OFFSET 10");
        assert!(out.rows.is_empty());
    }

    #[test]
    fn projecting_ungrouped_var_is_error() {
        let store = sample_store();
        let query = parse(
            "SELECT ?x (COUNT(?c) AS ?n) WHERE { ?x a ?c } GROUP BY ?c",
        )
        .unwrap();
        let err = execute(&query, store.model("m").unwrap(), store.dict()).unwrap_err();
        assert!(matches!(err, SparqlError::Semantic(_)));
    }

    #[test]
    fn bad_regex_reported() {
        let store = sample_store();
        let query = parse(
            "SELECT ?x WHERE { ?x <hasName> ?n FILTER(regex(?n, \"(unclosed\", \"i\")) }",
        )
        .unwrap();
        let err = execute(&query, store.model("m").unwrap(), store.dict()).unwrap_err();
        assert!(matches!(err, SparqlError::BadRegex(_)));
    }
}
