//! Physical query execution: binding sets over a [`TripleSource`].
//!
//! This is the bottom layer of the query pipeline. The parsed AST is
//! first lowered to a logical [`QueryPlan`] — by default through the
//! cost-based optimizer in [`crate::optimize`], which orders every basic
//! graph pattern by frozen-index selectivity statistics and pushes filter
//! conjuncts down to the unit that binds their variables; under
//! `--no-planner` through [`QueryPlan::naive`], which keeps the written
//! order. The executor here then evaluates the plan with budget-charged
//! nested index-loop joins, optionally partitioning the leaf scan of a
//! BGP across worker threads with a deterministic in-order merge.
//! [`execute_explained`] additionally returns an [`ExplainReport`]
//! pairing the plan's estimates with observed cardinalities.

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;
use std::sync::Arc;

use mdw_rdf::budget::{Completeness, QueryBudget, TruncationReason};
use mdw_rdf::dict::{Dictionary, TermId};
use mdw_rdf::par::ParallelPolicy;
use mdw_rdf::stats::FrozenStats;
use mdw_rdf::store::TripleSource;
use mdw_rdf::term::Term;
use mdw_rdf::triple::TriplePattern;
use mdw_rdf::vocab;

use crate::ast::*;
use crate::error::SparqlError;
use crate::optimize::{self, PlannerInput};
use crate::plan::{self, ExplainReport, PlanNode, PlannedUnit, QueryPlan};
use crate::regex_lite::Regex;

/// Backtracking-step allowance per regex filter evaluation: generous for
/// any sane pattern, small enough that catastrophic backtracking trips the
/// query budget instead of hanging the executor.
const REGEX_FUEL: u64 = 250_000;

/// How many rows the result-materialization loops (projection,
/// aggregation grouping) process between deadline/cancellation checks.
const MATERIALIZE_CHECK: usize = 1024;

/// One output row: values aligned with [`QueryOutput::columns`];
/// `None` is an unbound (OPTIONAL) cell.
pub type ResultRow = Vec<Option<Term>>;

/// The result table of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Output column names, in `SELECT` order.
    pub columns: Vec<String>,
    /// The rows.
    pub rows: Vec<ResultRow>,
    /// Whether the rows cover the full answer set or a budget cut the
    /// evaluation short (the rows are then a valid partial answer).
    pub completeness: Completeness,
    /// True when the answer was computed without the semantic index (the
    /// warehouse's degraded fallback while the entailment breaker is open):
    /// inferred triples are absent.
    pub degraded: bool,
}

impl QueryOutput {
    /// Renders the table as aligned plain text (used by examples and the
    /// reproduction harness).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, cell)| {
                        let s = cell
                            .as_ref()
                            .map(term_display)
                            .unwrap_or_else(|| "—".to_string());
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-+-"));
        out.push('\n');
        for row in rendered {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        out
    }
}

fn term_display(t: &Term) -> String {
    match t {
        Term::Iri(_) => t.label().to_string(),
        Term::BlankNode(b) => format!("_:{b}"),
        Term::Literal(lit) => lit.lexical.to_string(),
    }
}

/// Executes a parsed query against a triple source and its dictionary.
pub fn execute(
    query: &Query,
    source: &dyn TripleSource,
    dict: &Dictionary,
) -> Result<QueryOutput, SparqlError> {
    execute_with_budget(query, source, dict, &QueryBudget::unlimited())
}

/// Executes a parsed query under a resource budget. When the budget trips
/// (steps, rows, deadline, cancellation) evaluation stops at the next
/// check point and the partial rows come back tagged
/// [`Completeness::Truncated`] — never an error, never a panic.
pub fn execute_with_budget(
    query: &Query,
    source: &dyn TripleSource,
    dict: &Dictionary,
    budget: &QueryBudget,
) -> Result<QueryOutput, SparqlError> {
    execute_with_options(query, source, dict, budget, ParallelPolicy::sequential())
}

/// Executes a parsed query under a resource budget and a worker-thread
/// policy. The policy only affects wall-clock time: the leaf scan+filter
/// stage of BGP evaluation partitions its prefix run across scoped worker
/// threads and merges in scan order, so rows, row order, and truncation
/// verdicts are bit-identical to sequential execution.
pub fn execute_with_options(
    query: &Query,
    source: &dyn TripleSource,
    dict: &Dictionary,
    budget: &QueryBudget,
    par: ParallelPolicy,
) -> Result<QueryOutput, SparqlError> {
    execute_with_planner(query, source, dict, budget, par, true)
}

/// Like [`execute_with_options`], with explicit control over whether the
/// cost-based planner orders the patterns (`false` evaluates them in
/// written order with no filter pushdown — the `--no-planner` baseline).
/// Either way the result rows are the same set; only evaluation order,
/// and therefore work and unsorted row order, differ.
pub fn execute_with_planner(
    query: &Query,
    source: &dyn TripleSource,
    dict: &Dictionary,
    budget: &QueryBudget,
    par: ParallelPolicy,
    use_planner: bool,
) -> Result<QueryOutput, SparqlError> {
    run_planned(query, source, dict, budget, par, use_planner).map(|(out, _)| out)
}

/// Executes a query and returns the chosen plan with estimated-vs-actual
/// per-pattern cardinalities alongside the result — the `--explain`
/// entry point.
pub fn execute_explained(
    query: &Query,
    source: &dyn TripleSource,
    dict: &Dictionary,
    budget: &QueryBudget,
    par: ParallelPolicy,
    use_planner: bool,
) -> Result<(QueryOutput, ExplainReport), SparqlError> {
    run_planned(query, source, dict, budget, par, use_planner)
}

fn run_planned(
    query: &Query,
    source: &dyn TripleSource,
    dict: &Dictionary,
    budget: &QueryBudget,
    par: ParallelPolicy,
    use_planner: bool,
) -> Result<(QueryOutput, ExplainReport), SparqlError> {
    let type_id = dict.lookup(&vocab::rdf_type());
    let stats = if use_planner { source.planner_stats(type_id) } else { None };
    let query_plan = if use_planner {
        optimize::plan(
            &query.pattern,
            &PlannerInput { stats: stats.as_deref(), source, dict, type_id },
        )
    } else {
        QueryPlan::naive(&query.pattern)
    };
    let actuals: Vec<Cell<u64>> = (0..query_plan.unit_count).map(|_| Cell::new(0)).collect();
    let exec = Executor {
        source,
        dict,
        budget,
        par,
        plan: query_plan,
        use_planner,
        stats,
        type_id,
        actuals,
        sub_plans: RefCell::new(HashMap::new()),
        regex_cache: RefCell::new(HashMap::new()),
        tripped: Cell::new(None),
    };
    let out = exec.run(query)?;
    let counts: Vec<u64> = exec.actuals.iter().map(Cell::get).collect();
    let report = ExplainReport::from_plan(&exec.plan, &counts);
    Ok((out, report))
}

/// A binding: var-index → term id (None = unbound).
type Binding = Vec<Option<TermId>>;

struct Executor<'a> {
    source: &'a dyn TripleSource,
    dict: &'a Dictionary,
    budget: &'a QueryBudget,
    par: ParallelPolicy,
    /// The logical plan execution follows.
    plan: QueryPlan,
    /// Whether EXISTS sub-patterns should also be cost-planned.
    use_planner: bool,
    /// The stats snapshot the plan was built from (for sub-plans).
    stats: Option<Arc<FrozenStats>>,
    /// The dictionary's `rdf:type` id (for sub-plans).
    type_id: Option<TermId>,
    /// Per-unit actual-row counters, indexed by [`PlannedUnit::id`].
    actuals: Vec<Cell<u64>>,
    /// Lazily-built plans for EXISTS sub-patterns, keyed by AST address.
    sub_plans: RefCell<HashMap<usize, Rc<PlanNode>>>,
    regex_cache: RefCell<HashMap<(String, String), Regex>>,
    /// First budget violation observed; once set, every loop unwinds.
    tripped: Cell<Option<TruncationReason>>,
}

/// True when an execution-level row cap has been reached.
fn cap_reached(len: usize, cap: Option<usize>) -> bool {
    cap.is_some_and(|c| len >= c)
}

struct VarTable {
    names: Vec<String>,
}

impl VarTable {
    fn new(query: &Query) -> Self {
        let mut names: Vec<String> = query.pattern.all_vars().into_iter().map(|v| v.0).collect();
        if let Selection::Items(items) = &query.selection {
            for item in items {
                let v = item.output_var();
                if !names.contains(&v.0) {
                    names.push(v.0.clone());
                }
            }
        }
        VarTable { names }
    }

    fn index(&self, var: &Var) -> Option<usize> {
        self.names.iter().position(|n| *n == var.0)
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

impl<'a> Executor<'a> {
    /// Trips the budget: records the first violation; loops observe it via
    /// [`Executor::is_tripped`] and unwind with whatever they have.
    fn trip(&self, reason: TruncationReason) {
        if self.tripped.get().is_none() {
            self.tripped.set(Some(reason));
        }
    }

    fn is_tripped(&self) -> bool {
        self.tripped.get().is_some()
    }

    /// Periodic mid-materialization budget check: consults the clock and
    /// the cancellation flag every [`MATERIALIZE_CHECK`] rows, so a query
    /// cannot overrun its deadline while post-processing a large
    /// intermediate result (the evaluation loops already stopped, but the
    /// accumulated bindings still have to be projected or aggregated).
    /// Returns `false` once the budget is tripped — stop materializing.
    fn check_every(&self, i: usize) -> bool {
        // A blown step or row cap is no reason to drop already-computed
        // bindings — only time pressure (deadline, cancellation) is.
        if matches!(
            self.tripped.get(),
            Some(TruncationReason::DeadlineExceeded | TruncationReason::Cancelled)
        ) {
            return false;
        }
        if i.is_multiple_of(MATERIALIZE_CHECK) {
            if let Err(reason) = self.budget.check_time() {
                self.trip(reason);
                return false;
            }
        }
        true
    }

    /// Charges one traversal step; `false` means "stop now".
    fn charge(&self) -> bool {
        if self.is_tripped() {
            return false;
        }
        match self.budget.charge_step() {
            Ok(()) => true,
            Err(reason) => {
                self.trip(reason);
                false
            }
        }
    }

    fn run(&self, query: &Query) -> Result<QueryOutput, SparqlError> {
        let vars = VarTable::new(query);
        let empty = vec![None; vars.len()];
        let offset = query.offset.unwrap_or(0);

        // A budget already exhausted on arrival (deadline passed while
        // queued, caller cancelled) short-circuits to an empty partial.
        if let Err(reason) = self.budget.check() {
            self.trip(reason);
        }

        // LIMIT pushdown: when nothing downstream can drop or reorder rows
        // (no ORDER BY / DISTINCT / aggregation), cap execution at
        // OFFSET+LIMIT solutions instead of materializing the full set.
        // The budget's row cap joins in with one probe row so a cut can be
        // told apart from an exact fit. ASK only ever needs one solution.
        let cap: Option<usize> = if query.ask {
            Some(1)
        } else if query.order_by.is_empty() && !query.distinct && !query.is_aggregate() {
            let mut c = usize::MAX;
            if let Some(limit) = query.limit {
                c = c.min(offset.saturating_add(limit));
            }
            let probe = usize::try_from(self.budget.rows_remaining().saturating_add(1))
                .unwrap_or(usize::MAX);
            c = c.min(offset.saturating_add(probe));
            (c != usize::MAX).then_some(c)
        } else {
            None
        };

        let bindings = self.eval_pattern(&self.plan.root, &vars, vec![empty], cap)?;

        let columns = query.output_columns();
        if query.ask {
            let answer = !bindings.is_empty();
            return Ok(QueryOutput {
                columns,
                rows: vec![vec![Some(Term::typed(
                    answer.to_string(),
                    mdw_rdf::vocab::xsd::BOOLEAN,
                ))]],
                completeness: self.completeness(),
                degraded: false,
            });
        }
        let mut rows: Vec<ResultRow> = if query.is_aggregate() {
            self.aggregate(query, &vars, bindings)?
        } else {
            let indices: Vec<Option<usize>> = match &query.selection {
                Selection::Star => vars.names.iter().enumerate().map(|(i, _)| Some(i)).collect(),
                Selection::Items(items) => items
                    .iter()
                    .map(|item| match item {
                        SelectItem::Var(v) => Ok(vars.index(v)),
                        SelectItem::Count { .. } => unreachable!("aggregate handled above"),
                    })
                    .collect::<Result<_, SparqlError>>()?,
            };
            let mut out: Vec<ResultRow> = Vec::new();
            for (i, b) in bindings.into_iter().enumerate() {
                if !self.check_every(i) {
                    break;
                }
                out.push(
                    indices
                        .iter()
                        .map(|idx| {
                            idx.and_then(|i| b[i]).map(|id| self.dict.term_unchecked(id).clone())
                        })
                        .collect(),
                );
            }
            out
        };

        if query.distinct {
            let mut seen = std::collections::BTreeSet::new();
            rows.retain(|row| seen.insert(row.clone()));
        }

        if !query.order_by.is_empty() {
            let key_indices: Vec<(usize, bool)> = query
                .order_by
                .iter()
                .filter_map(|k| {
                    columns
                        .iter()
                        .position(|c| *c == k.var.0)
                        .map(|i| (i, k.ascending))
                })
                .collect();
            rows.sort_by(|a, b| {
                for &(i, asc) in &key_indices {
                    let ord = compare_cells(&a[i], &b[i]);
                    if ord != Ordering::Equal {
                        return if asc { ord } else { ord.reverse() };
                    }
                }
                Ordering::Equal
            });
        }

        if offset > 0 {
            rows = rows.into_iter().skip(offset).collect();
        }
        if let Some(limit) = query.limit {
            rows.truncate(limit);
        }

        // The budget's row cap applies to what the caller actually
        // receives, after LIMIT/OFFSET (a `LIMIT 10` that fits the cap is
        // Complete — the query asked for 10 and got 10). The pushdown probe
        // above guarantees an excess row is present exactly when more rows
        // existed, so `Truncated{RowLimit}` is never a false positive.
        let remaining = usize::try_from(self.budget.rows_remaining()).unwrap_or(usize::MAX);
        if rows.len() > remaining {
            rows.truncate(remaining);
            self.trip(TruncationReason::RowLimit);
        }
        for _ in &rows {
            let _ = self.budget.charge_row();
        }

        Ok(QueryOutput { columns, rows, completeness: self.completeness(), degraded: false })
    }

    fn completeness(&self) -> Completeness {
        match self.tripped.get() {
            Some(reason) => Completeness::Truncated { reason },
            None => Completeness::Complete,
        }
    }

    fn aggregate(
        &self,
        query: &Query,
        vars: &VarTable,
        bindings: Vec<Binding>,
    ) -> Result<Vec<ResultRow>, SparqlError> {
        let Selection::Items(items) = &query.selection else {
            return Err(SparqlError::Semantic(
                "SELECT * cannot be combined with aggregation".to_string(),
            ));
        };
        let group_indices: Vec<usize> = query
            .group_by
            .iter()
            .map(|v| {
                vars.index(v).ok_or_else(|| {
                    SparqlError::Semantic(format!("GROUP BY variable ?{} not in pattern", v.0))
                })
            })
            .collect::<Result<_, _>>()?;

        // Group key → (representative binding, group members).
        let mut groups: Vec<(Vec<Option<TermId>>, Vec<Binding>)> = Vec::new();
        let mut lookup: HashMap<Vec<Option<TermId>>, usize> = HashMap::new();
        for (i, b) in bindings.into_iter().enumerate() {
            if !self.check_every(i) {
                break;
            }
            let key: Vec<Option<TermId>> = group_indices.iter().map(|&i| b[i]).collect();
            match lookup.get(&key) {
                Some(&g) => groups[g].1.push(b),
                None => {
                    lookup.insert(key.clone(), groups.len());
                    groups.push((key, vec![b]));
                }
            }
        }
        // With no GROUP BY, COUNT over the whole solution is one group —
        // even when empty.
        if groups.is_empty() && query.group_by.is_empty() {
            groups.push((vec![], vec![]));
        }

        let mut rows = Vec::with_capacity(groups.len());
        for (_, members) in &groups {
            let mut row: ResultRow = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    SelectItem::Var(v) => {
                        let idx = vars.index(v).ok_or_else(|| {
                            SparqlError::Semantic(format!("unknown variable ?{}", v.0))
                        })?;
                        if !query.group_by.contains(v) {
                            return Err(SparqlError::Semantic(format!(
                                "variable ?{} projected without being grouped",
                                v.0
                            )));
                        }
                        let value = members
                            .first()
                            .and_then(|m| m[idx])
                            .map(|id| self.dict.term_unchecked(id).clone());
                        row.push(value);
                    }
                    SelectItem::Count { var, distinct, .. } => {
                        let count = match var {
                            None => members.len(),
                            Some(v) => {
                                let idx = vars.index(v).ok_or_else(|| {
                                    SparqlError::Semantic(format!("unknown variable ?{}", v.0))
                                })?;
                                if *distinct {
                                    let mut ids: Vec<TermId> =
                                        members.iter().filter_map(|m| m[idx]).collect();
                                    ids.sort_unstable();
                                    ids.dedup();
                                    ids.len()
                                } else {
                                    members.iter().filter(|m| m[idx].is_some()).count()
                                }
                            }
                        };
                        row.push(Some(Term::integer(count as i64)));
                    }
                }
            }
            rows.push(row);
        }
        Ok(rows)
    }

    /// Evaluates a plan node. `cap` is an execution-level bound on the
    /// number of solutions to produce; it may only be passed down edges
    /// where "first `cap` solutions of the sub-pattern" equals "first `cap`
    /// solutions overall" — never into a Filter input or a Join's left arm.
    fn eval_pattern(
        &self,
        node: &PlanNode,
        vars: &VarTable,
        input: Vec<Binding>,
        cap: Option<usize>,
    ) -> Result<Vec<Binding>, SparqlError> {
        match node {
            PlanNode::Bgp(bgp) => {
                // Pre-resolve constants once per BGP; a constant absent
                // from the dictionary can never match, so the BGP is
                // empty. (Property paths are exempt: a nullable path can
                // match even when its predicate is unknown.)
                let mut units: Vec<(ResolvedUnit, &PlannedUnit)> =
                    Vec::with_capacity(bgp.units.len());
                for u in &bgp.units {
                    let Some(rt) = self.resolve_unit(&u.triple, vars) else {
                        return Ok(Vec::new());
                    };
                    units.push((rt, u));
                }
                let mut out = Vec::new();
                for binding in input {
                    if self.is_tripped() || cap_reached(out.len(), cap) {
                        break;
                    }
                    self.bgp_step(&units, binding, cap, vars, &mut out)?;
                }
                Ok(out)
            }
            PlanNode::Join(a, b) => {
                // The left arm must run uncapped: a left solution may find
                // no partner on the right, so capping it could starve the
                // join of rows that exist.
                let left = self.eval_pattern(a, vars, input, None)?;
                self.eval_pattern(b, vars, left, cap)
            }
            PlanNode::Optional(a, b) => {
                // Every left solution yields at least one output row, so
                // the cap passes through the left arm unchanged.
                let left = self.eval_pattern(a, vars, input, cap)?;
                let mut out = Vec::new();
                for binding in left {
                    if self.is_tripped() || cap_reached(out.len(), cap) {
                        break;
                    }
                    let sub_cap = cap.map(|c| c - out.len());
                    let extended = self.eval_pattern(b, vars, vec![binding.clone()], sub_cap)?;
                    if extended.is_empty() {
                        out.push(binding);
                    } else {
                        out.extend(extended);
                    }
                }
                Ok(out)
            }
            PlanNode::Union(a, b) => {
                let mut left = self.eval_pattern(a, vars, input.clone(), cap)?;
                let right_cap = cap.map(|c| c.saturating_sub(left.len()));
                if right_cap != Some(0) && !self.is_tripped() {
                    let right = self.eval_pattern(b, vars, input, right_cap)?;
                    left.extend(right);
                }
                Ok(left)
            }
            PlanNode::Filter(expr, inner) => {
                // The filter may drop any number of rows, so the inner
                // pattern runs uncapped; only the surviving rows are capped.
                let rows = self.eval_pattern(inner, vars, input, None)?;
                let mut out = Vec::with_capacity(rows.len());
                for b in rows {
                    if cap_reached(out.len(), cap) {
                        break;
                    }
                    // SPARQL semantics: an erroring filter is falsy.
                    if self.eval_expr(expr, vars, &b)?.unwrap_or(false) {
                        out.push(b);
                    }
                }
                Ok(out)
            }
        }
    }

    /// Evaluates the plan's pushed-down filter conjuncts for one binding;
    /// `false` drops the binding (errors are falsy, as at a Filter node).
    fn pass_filters(
        &self,
        filters: &[Expr],
        vars: &VarTable,
        binding: &Binding,
    ) -> Result<bool, SparqlError> {
        for f in filters {
            if !self.eval_expr(f, vars, binding)?.unwrap_or(false) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Bumps the actual-row counter of a tracked plan unit.
    fn count_actual(&self, id: usize) {
        if let Some(c) = self.actuals.get(id) {
            c.set(c.get() + 1);
        }
    }

    /// Evaluates one BGP unit in plan order, recursing into the rest for
    /// every extended binding.
    fn bgp_step(
        &self,
        units: &[(ResolvedUnit, &PlannedUnit)],
        binding: Binding,
        cap: Option<usize>,
        vars: &VarTable,
        out: &mut Vec<Binding>,
    ) -> Result<(), SparqlError> {
        if self.is_tripped() || cap_reached(out.len(), cap) {
            return Ok(());
        }
        let Some(((unit, planned), rest)) = units.split_first() else {
            out.push(binding);
            return Ok(());
        };
        match unit {
            ResolvedUnit::Triple(rt) => {
                let pat = rt.to_pattern(&binding);
                let matches: Vec<_> = self.source.scan_pattern(pat).collect();
                if rest.is_empty() && cap.is_none() && self.par.is_parallel() && !self.is_tripped()
                {
                    // Leaf scan+filter: the last unit's matches only extend
                    // the current binding, so workers can do that pure work
                    // over contiguous partitions of the prefix run (ticking
                    // the shared budget's deadline/cancellation through
                    // per-worker meters) while the in-order merge charges
                    // one step per match and evaluates pushed filters
                    // (regex caches are not Sync) — rows, row order, and
                    // verdicts bit-identical to the sequential loop.
                    let budget = self.budget;
                    let seed = &binding;
                    let chunks = mdw_rdf::par::map_chunks(&self.par, &matches, |chunk| {
                        let mut meter = budget.meter();
                        let mut exts: Vec<Option<Binding>> = Vec::with_capacity(chunk.len());
                        let mut trip: Option<TruncationReason> = None;
                        for t in chunk {
                            if let Err(reason) = meter.tick() {
                                trip = Some(reason);
                                break;
                            }
                            let mut next = seed.clone();
                            exts.push(rt.extend(&mut next, *t).then_some(next));
                        }
                        (exts, trip)
                    });
                    'merge: for (exts, worker_trip) in chunks {
                        for ext in exts {
                            if !self.charge() {
                                break 'merge;
                            }
                            if let Some(next) = ext {
                                self.count_actual(planned.id);
                                if self.pass_filters(&planned.filters, vars, &next)? {
                                    out.push(next);
                                }
                            }
                        }
                        // A worker stopped early (deadline/cancellation):
                        // the merged prefix is truthful, later chunks are
                        // discarded.
                        if let Some(reason) = worker_trip {
                            self.trip(reason);
                            break 'merge;
                        }
                    }
                } else {
                    for t in matches {
                        if !self.charge() || cap_reached(out.len(), cap) {
                            break;
                        }
                        let mut next = binding.clone();
                        if rt.extend(&mut next, t) {
                            self.count_actual(planned.id);
                            if self.pass_filters(&planned.filters, vars, &next)? {
                                self.bgp_step(rest, next, cap, vars, out)?;
                            }
                        }
                    }
                }
            }
            ResolvedUnit::Path { s, path, o } => {
                let pairs = self.eval_path(
                    path,
                    s.resolve_pos(&binding),
                    o.resolve_pos(&binding),
                );
                for (from, to) in pairs {
                    if !self.charge() || cap_reached(out.len(), cap) {
                        break;
                    }
                    let mut next = binding.clone();
                    if s.bind(&mut next, from) && o.bind(&mut next, to) {
                        self.count_actual(planned.id);
                        if self.pass_filters(&planned.filters, vars, &next)? {
                            self.bgp_step(rest, next, cap, vars, out)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The (cached) plan for an EXISTS/NOT EXISTS sub-pattern, keyed by
    /// the pattern's address inside this query's AST/plan.
    fn sub_plan(&self, pattern: &GraphPattern) -> Rc<PlanNode> {
        let key = pattern as *const GraphPattern as usize;
        if let Some(p) = self.sub_plans.borrow().get(&key) {
            return Rc::clone(p);
        }
        let node = if self.use_planner {
            optimize::plan_untracked(
                pattern,
                &PlannerInput {
                    stats: self.stats.as_deref(),
                    source: self.source,
                    dict: self.dict,
                    type_id: self.type_id,
                },
            )
        } else {
            let mut planned = QueryPlan::naive(pattern);
            plan::untrack(&mut planned.root);
            planned.root
        };
        let rc = Rc::new(node);
        self.sub_plans.borrow_mut().insert(key, Rc::clone(&rc));
        rc
    }

    fn resolve_unit(&self, t: &PatternTriple, vars: &VarTable) -> Option<ResolvedUnit> {
        let pos = |n: &NodeRef| -> Option<ResolvedPos> {
            Some(match n {
                NodeRef::Var(v) => ResolvedPos::Var(vars.index(v).expect("var table complete")),
                NodeRef::Term(term) => ResolvedPos::Const(self.dict.lookup(term)?),
            })
        };
        Some(match &t.p {
            Verb::Node(p) => ResolvedUnit::Triple(ResolvedTriple {
                s: pos(&t.s)?,
                p: pos(p)?,
                o: pos(&t.o)?,
            }),
            Verb::Path(path) => ResolvedUnit::Path {
                s: pos(&t.s)?,
                path: self.compile_path(path),
                o: pos(&t.o)?,
            },
        })
    }

    fn compile_path(&self, path: &PathExpr) -> CompiledPath {
        match path {
            // An unknown predicate can never match a hop, but nullable
            // closures around it still match zero hops.
            PathExpr::Iri(term) => CompiledPath::Pred(self.dict.lookup(term)),
            PathExpr::Inverse(p) => CompiledPath::Inverse(Box::new(self.compile_path(p))),
            PathExpr::Seq(a, b) => CompiledPath::Seq(
                Box::new(self.compile_path(a)),
                Box::new(self.compile_path(b)),
            ),
            PathExpr::Alt(a, b) => CompiledPath::Alt(
                Box::new(self.compile_path(a)),
                Box::new(self.compile_path(b)),
            ),
            PathExpr::ZeroOrMore(p) => {
                CompiledPath::ZeroOrMore(Box::new(self.compile_path(p)))
            }
            PathExpr::OneOrMore(p) => CompiledPath::OneOrMore(Box::new(self.compile_path(p))),
            PathExpr::ZeroOrOne(p) => CompiledPath::ZeroOrOne(Box::new(self.compile_path(p))),
        }
    }

    /// Evaluates a property path, returning `(from, to)` pairs consistent
    /// with the given endpoint bindings.
    fn eval_path(
        &self,
        path: &CompiledPath,
        s: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<(TermId, TermId)> {
        match (s, o) {
            (Some(s), Some(o)) => {
                let targets = self.path_from(path, s);
                if targets.contains(&o) {
                    vec![(s, o)]
                } else {
                    Vec::new()
                }
            }
            (Some(s), None) => self.path_from(path, s).into_iter().map(|t| (s, t)).collect(),
            (None, Some(o)) => {
                let rev = path.reversed();
                self.path_from(&rev, o).into_iter().map(|t| (t, o)).collect()
            }
            (None, None) => {
                // Both ends free: enumerate candidate start nodes from the
                // path's base predicates, then evaluate forward. Per the
                // SPARQL spec zero-length paths range over all graph terms;
                // we restrict to terms incident to the path's predicates,
                // which is what every practical query needs.
                let mut out = std::collections::BTreeSet::new();
                let starts = self.path_start_candidates(path);
                for s in starts {
                    if self.is_tripped() {
                        break;
                    }
                    for t in self.path_from(path, s) {
                        out.insert((s, t));
                    }
                }
                out.into_iter().collect()
            }
        }
    }

    /// All nodes reachable from `from` via `path`.
    fn path_from(&self, path: &CompiledPath, from: TermId) -> BTreeSet<TermId> {
        let mut out = BTreeSet::new();
        match path {
            CompiledPath::Pred(Some(p)) => {
                for t in self.source.scan_pattern(TriplePattern::with_sp(from, *p)) {
                    if !self.charge() {
                        break;
                    }
                    out.insert(t.o);
                }
            }
            CompiledPath::Pred(None) => {}
            CompiledPath::Inverse(inner) => match inner.as_ref() {
                // Base case: traverse one predicate backwards via the
                // object index (avoids re-wrapping into Inverse forever).
                CompiledPath::Pred(Some(p)) => {
                    for t in self.source.scan_pattern(TriplePattern::with_po(*p, from)) {
                        if !self.charge() {
                            break;
                        }
                        out.insert(t.s);
                    }
                }
                CompiledPath::Pred(None) => {}
                other => out.extend(self.path_from(&other.reversed(), from)),
            },
            CompiledPath::Seq(a, b) => {
                for mid in self.path_from(a, from) {
                    if self.is_tripped() {
                        break;
                    }
                    out.extend(self.path_from(b, mid));
                }
            }
            CompiledPath::Alt(a, b) => {
                out.extend(self.path_from(a, from));
                out.extend(self.path_from(b, from));
            }
            CompiledPath::ZeroOrMore(p) => {
                out = self.closure_from(p, from);
                out.insert(from);
            }
            CompiledPath::OneOrMore(p) => {
                out = self.closure_from(p, from);
            }
            CompiledPath::ZeroOrOne(p) => {
                out = self.path_from(p, from);
                out.insert(from);
            }
        }
        out
    }

    /// BFS closure: every node reachable in ≥1 application of `step`.
    fn closure_from(&self, step: &CompiledPath, from: TermId) -> BTreeSet<TermId> {
        let mut seen = BTreeSet::new();
        let mut frontier = vec![from];
        while let Some(node) = frontier.pop() {
            // The closure is where the lineage-shaped `(isMappedTo)*`
            // queries spend their time: charge every node expansion so a
            // runaway transitive walk stops at the budget, not at OOM.
            if !self.charge() {
                break;
            }
            for next in self.path_from(step, node) {
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
        seen
    }

    /// Candidate start nodes when both path endpoints are unbound: the
    /// subjects (and, under inverses, objects) of the base predicates.
    fn path_start_candidates(&self, path: &CompiledPath) -> BTreeSet<TermId> {
        let mut out = BTreeSet::new();
        self.collect_start_candidates(path, false, &mut out);
        out
    }

    fn collect_start_candidates(
        &self,
        path: &CompiledPath,
        inverted: bool,
        out: &mut BTreeSet<TermId>,
    ) {
        match path {
            CompiledPath::Pred(Some(p)) => {
                for t in self.source.scan_pattern(TriplePattern::with_p(*p)) {
                    if !self.charge() {
                        break;
                    }
                    out.insert(if inverted { t.o } else { t.s });
                    // Nullable wrappers above may pair any incident node
                    // with itself; include both endpoints to be safe.
                    out.insert(if inverted { t.s } else { t.o });
                }
            }
            CompiledPath::Pred(None) => {}
            CompiledPath::Inverse(p) => self.collect_start_candidates(p, !inverted, out),
            CompiledPath::Seq(a, _) => self.collect_start_candidates(a, inverted, out),
            CompiledPath::Alt(a, b) => {
                self.collect_start_candidates(a, inverted, out);
                self.collect_start_candidates(b, inverted, out);
            }
            CompiledPath::ZeroOrMore(p)
            | CompiledPath::OneOrMore(p)
            | CompiledPath::ZeroOrOne(p) => self.collect_start_candidates(p, inverted, out),
        }
    }

    /// Evaluates a filter expression to a boolean; `Ok(None)` is an error
    /// value (treated as false by the caller).
    fn eval_expr(
        &self,
        expr: &Expr,
        vars: &VarTable,
        binding: &Binding,
    ) -> Result<Option<bool>, SparqlError> {
        Ok(match self.eval_value(expr, vars, binding)? {
            Some(Value::Bool(b)) => Some(b),
            Some(Value::Term(_)) => None, // a bare term is not a boolean
            None => None,
        })
    }

    fn eval_value(
        &self,
        expr: &Expr,
        vars: &VarTable,
        binding: &Binding,
    ) -> Result<Option<Value>, SparqlError> {
        let v = match expr {
            Expr::Var(v) => {
                let idx = vars
                    .index(v)
                    .ok_or_else(|| SparqlError::Semantic(format!("unknown variable ?{}", v.0)))?;
                binding[idx].map(|id| Value::Term(self.dict.term_unchecked(id).clone()))
            }
            Expr::Const(t) => Some(Value::Term(t.clone())),
            Expr::Bound(v) => {
                let idx = vars
                    .index(v)
                    .ok_or_else(|| SparqlError::Semantic(format!("unknown variable ?{}", v.0)))?;
                Some(Value::Bool(binding[idx].is_some()))
            }
            Expr::Str(inner) => match self.eval_value(inner, vars, binding)? {
                Some(Value::Term(t)) => Some(Value::Term(Term::plain(term_string(&t)))),
                other => other,
            },
            Expr::Not(inner) => self
                .eval_expr(inner, vars, binding)?
                .map(|b| Value::Bool(!b)),
            Expr::And(a, b) => {
                let l = self.eval_expr(a, vars, binding)?;
                let r = self.eval_expr(b, vars, binding)?;
                match (l, r) {
                    (Some(false), _) | (_, Some(false)) => Some(Value::Bool(false)),
                    (Some(true), Some(true)) => Some(Value::Bool(true)),
                    _ => None,
                }
            }
            Expr::Or(a, b) => {
                let l = self.eval_expr(a, vars, binding)?;
                let r = self.eval_expr(b, vars, binding)?;
                match (l, r) {
                    (Some(true), _) | (_, Some(true)) => Some(Value::Bool(true)),
                    (Some(false), Some(false)) => Some(Value::Bool(false)),
                    _ => None,
                }
            }
            Expr::Eq(a, b) => self.compare(a, b, vars, binding)?.map(|o| Value::Bool(o == Ordering::Equal)),
            Expr::Ne(a, b) => self.compare(a, b, vars, binding)?.map(|o| Value::Bool(o != Ordering::Equal)),
            Expr::Lt(a, b) => self.compare(a, b, vars, binding)?.map(|o| Value::Bool(o == Ordering::Less)),
            Expr::Le(a, b) => self.compare(a, b, vars, binding)?.map(|o| Value::Bool(o != Ordering::Greater)),
            Expr::Gt(a, b) => self.compare(a, b, vars, binding)?.map(|o| Value::Bool(o == Ordering::Greater)),
            Expr::Ge(a, b) => self.compare(a, b, vars, binding)?.map(|o| Value::Bool(o != Ordering::Less)),
            Expr::Exists(pattern) => {
                // Existence needs exactly one witness.
                let sub = self.sub_plan(pattern);
                let rows = self.eval_pattern(&sub, vars, vec![binding.clone()], Some(1))?;
                Some(Value::Bool(!rows.is_empty()))
            }
            Expr::NotExists(pattern) => {
                let sub = self.sub_plan(pattern);
                let rows = self.eval_pattern(&sub, vars, vec![binding.clone()], Some(1))?;
                Some(Value::Bool(rows.is_empty()))
            }
            Expr::Regex { target, pattern, flags } => {
                let target = self.eval_value(target, vars, binding)?;
                match target {
                    Some(Value::Term(t)) => {
                        let text = term_string(&t);
                        let key = (pattern.clone(), flags.clone());
                        let cached = self
                            .regex_cache
                            .borrow()
                            .get(&key)
                            .map(|re| re.try_is_match(&text, REGEX_FUEL));
                        let matched = match cached {
                            Some(m) => m,
                            None => {
                                let re = Regex::with_flags(pattern, flags)
                                    .map_err(|e| SparqlError::BadRegex(e.to_string()))?;
                                let m = re.try_is_match(&text, REGEX_FUEL);
                                self.regex_cache.borrow_mut().insert(key, re);
                                m
                            }
                        };
                        match matched {
                            Some(m) => Some(Value::Bool(m)),
                            // Catastrophic backtracking exhausted its fuel:
                            // treat the filter as an error value (falsy) and
                            // tag the result truncated.
                            None => {
                                self.trip(TruncationReason::StepLimit);
                                None
                            }
                        }
                    }
                    _ => None,
                }
            }
        };
        Ok(v)
    }

    fn compare(
        &self,
        a: &Expr,
        b: &Expr,
        vars: &VarTable,
        binding: &Binding,
    ) -> Result<Option<Ordering>, SparqlError> {
        let (Some(Value::Term(l)), Some(Value::Term(r))) = (
            self.eval_value(a, vars, binding)?,
            self.eval_value(b, vars, binding)?,
        ) else {
            return Ok(None);
        };
        Ok(Some(compare_terms(&l, &r)))
    }
}

#[derive(Debug, Clone)]
enum Value {
    Term(Term),
    Bool(bool),
}

#[derive(Debug, Clone, Copy)]
enum ResolvedPos {
    Var(usize),
    Const(TermId),
}

impl ResolvedPos {
    /// The concrete id under a binding, if any.
    fn resolve_pos(self, binding: &Binding) -> Option<TermId> {
        match self {
            ResolvedPos::Const(id) => Some(id),
            ResolvedPos::Var(idx) => binding[idx],
        }
    }

    /// Binds (or checks) the position against a concrete id.
    fn bind(self, binding: &mut Binding, id: TermId) -> bool {
        match self {
            ResolvedPos::Const(c) => c == id,
            ResolvedPos::Var(idx) => match binding[idx] {
                Some(existing) => existing == id,
                None => {
                    binding[idx] = Some(id);
                    true
                }
            },
        }
    }
}

/// One planned unit of a BGP: a plain triple pattern or a property path.
#[derive(Debug, Clone)]
enum ResolvedUnit {
    Triple(ResolvedTriple),
    Path {
        s: ResolvedPos,
        path: CompiledPath,
        o: ResolvedPos,
    },
}

/// A property path with dictionary-resolved predicates. `Pred(None)` is a
/// predicate the graph has never seen — it matches no hop (but nullable
/// wrappers around it still match zero hops).
#[derive(Debug, Clone)]
enum CompiledPath {
    Pred(Option<TermId>),
    Inverse(Box<CompiledPath>),
    Seq(Box<CompiledPath>, Box<CompiledPath>),
    Alt(Box<CompiledPath>, Box<CompiledPath>),
    ZeroOrMore(Box<CompiledPath>),
    OneOrMore(Box<CompiledPath>),
    ZeroOrOne(Box<CompiledPath>),
}

impl CompiledPath {
    /// The path that matches exactly the reversed pairs.
    fn reversed(&self) -> CompiledPath {
        match self {
            CompiledPath::Pred(p) => CompiledPath::Inverse(Box::new(CompiledPath::Pred(*p))),
            CompiledPath::Inverse(p) => (**p).clone(),
            CompiledPath::Seq(a, b) => {
                CompiledPath::Seq(Box::new(b.reversed()), Box::new(a.reversed()))
            }
            CompiledPath::Alt(a, b) => {
                CompiledPath::Alt(Box::new(a.reversed()), Box::new(b.reversed()))
            }
            CompiledPath::ZeroOrMore(p) => CompiledPath::ZeroOrMore(Box::new(p.reversed())),
            CompiledPath::OneOrMore(p) => CompiledPath::OneOrMore(Box::new(p.reversed())),
            CompiledPath::ZeroOrOne(p) => CompiledPath::ZeroOrOne(Box::new(p.reversed())),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ResolvedTriple {
    s: ResolvedPos,
    p: ResolvedPos,
    o: ResolvedPos,
}

impl ResolvedTriple {
    fn to_pattern(self, binding: &Binding) -> TriplePattern {
        let resolve = |p: ResolvedPos| match p {
            ResolvedPos::Const(id) => Some(id),
            ResolvedPos::Var(idx) => binding[idx],
        };
        TriplePattern {
            s: resolve(self.s),
            p: resolve(self.p),
            o: resolve(self.o),
        }
    }

    /// Extends `binding` with the triple's values; `false` if a repeated
    /// variable disagrees.
    fn extend(self, binding: &mut Binding, t: mdw_rdf::triple::Triple) -> bool {
        let mut set = |pos: ResolvedPos, id: TermId| -> bool {
            match pos {
                ResolvedPos::Const(c) => c == id,
                ResolvedPos::Var(idx) => match binding[idx] {
                    Some(existing) => existing == id,
                    None => {
                        binding[idx] = Some(id);
                        true
                    }
                },
            }
        };
        set(self.s, t.s) && set(self.p, t.p) && set(self.o, t.o)
    }
}

/// The string form of a term for regex / str(): literal lexical form, IRI
/// text, or blank label.
fn term_string(t: &Term) -> String {
    match t {
        Term::Iri(iri) => iri.to_string(),
        Term::BlankNode(b) => b.to_string(),
        Term::Literal(lit) => lit.lexical.to_string(),
    }
}

/// Compares two terms: numerically when both are numeric literals, else by
/// string form, else by full term order.
fn compare_terms(a: &Term, b: &Term) -> Ordering {
    if let (Some(la), Some(lb)) = (a.as_literal(), b.as_literal()) {
        if let (Some(na), Some(nb)) = (la.as_integer(), lb.as_integer()) {
            return na.cmp(&nb);
        }
        return la.lexical.cmp(&lb.lexical);
    }
    a.cmp(b)
}

fn compare_cells(a: &Option<Term>, b: &Option<Term>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => compare_terms(x, y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use mdw_rdf::store::Store;
    use mdw_rdf::vocab;

    fn sample_store() -> Store {
        let mut store = Store::new();
        store.create_model("m").unwrap();
        let data: Vec<(&str, &str, Term)> = vec![
            ("john", vocab::rdf::TYPE, Term::iri("Customer")),
            ("jane", vocab::rdf::TYPE, Term::iri("Customer")),
            ("acme", vocab::rdf::TYPE, Term::iri("Institution")),
            ("john", "hasName", Term::plain("John Doe")),
            ("jane", "hasName", Term::plain("Jane Customer")),
            ("acme", "hasName", Term::plain("ACME AG")),
            ("john", "hasAge", Term::integer(42)),
            ("jane", "hasAge", Term::integer(29)),
            ("Customer", vocab::rdfs::LABEL, Term::plain("Customer")),
            ("Institution", vocab::rdfs::LABEL, Term::plain("Institution")),
        ];
        for (s, p, o) in data {
            store.insert("m", &Term::iri(s), &Term::iri(p), &o).unwrap();
        }
        store
    }

    fn run(store: &Store, q: &str) -> QueryOutput {
        let query = parse(q).unwrap();
        execute(&query, store.model("m").unwrap(), store.dict()).unwrap()
    }

    #[test]
    fn simple_bgp() {
        let store = sample_store();
        let out = run(&store, "SELECT ?x WHERE { ?x a <Customer> }");
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn join_across_patterns() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x ?name WHERE { ?x a <Customer> . ?x <hasName> ?name }",
        );
        assert_eq!(out.rows.len(), 2);
        let names: Vec<String> = out
            .rows
            .iter()
            .map(|r| r[1].as_ref().unwrap().label().to_string())
            .collect();
        assert!(names.contains(&"John Doe".to_string()));
        assert!(names.contains(&"Jane Customer".to_string()));
    }

    #[test]
    fn filter_regex_case_insensitive() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x WHERE { ?x <hasName> ?n FILTER(regex(?n, \"customer\", \"i\")) }",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "jane");
    }

    #[test]
    fn filter_numeric_comparison() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x WHERE { ?x <hasAge> ?age FILTER(?age > 30) }",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "john");
    }

    #[test]
    fn filter_equality_on_terms() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x WHERE { ?x a ?c FILTER(?c = <Institution>) }",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "acme");
    }

    #[test]
    fn optional_with_bound_check() {
        let store = sample_store();
        // acme has no hasAge → unbound cell.
        let out = run(
            &store,
            "SELECT ?x ?age WHERE { ?x <hasName> ?n OPTIONAL { ?x <hasAge> ?age } } ORDER BY ?x",
        );
        assert_eq!(out.rows.len(), 3);
        let acme_row = out
            .rows
            .iter()
            .find(|r| r[0].as_ref().unwrap().label() == "acme")
            .unwrap();
        assert!(acme_row[1].is_none());
    }

    #[test]
    fn negated_bound_finds_missing() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x WHERE { ?x <hasName> ?n OPTIONAL { ?x <hasAge> ?age } FILTER(!bound(?age)) }",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "acme");
    }

    #[test]
    fn union_combines() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x WHERE { { ?x a <Customer> } UNION { ?x a <Institution> } }",
        );
        assert_eq!(out.rows.len(), 3);
    }

    #[test]
    fn group_by_count_listing1_shape() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?class (COUNT(?x) AS ?n) WHERE { ?x a ?c . ?c <http://www.w3.org/2000/01/rdf-schema#label> ?class } GROUP BY ?class ORDER BY ?class",
        );
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "Customer");
        assert_eq!(out.rows[0][1].as_ref().unwrap().label(), "2");
        assert_eq!(out.rows[1][0].as_ref().unwrap().label(), "Institution");
        assert_eq!(out.rows[1][1].as_ref().unwrap().label(), "1");
    }

    #[test]
    fn count_star_on_empty_is_zero() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT (COUNT(*) AS ?n) WHERE { ?x a <Nothing> }",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "0");
    }

    #[test]
    fn distinct_dedups() {
        let store = sample_store();
        let out = run(&store, "SELECT DISTINCT ?c WHERE { ?x a ?c }");
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn order_by_desc_limit_offset() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x ?age WHERE { ?x <hasAge> ?age } ORDER BY DESC(?age) LIMIT 1",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "john");

        let out = run(
            &store,
            "SELECT ?x ?age WHERE { ?x <hasAge> ?age } ORDER BY DESC(?age) LIMIT 1 OFFSET 1",
        );
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "jane");
    }

    #[test]
    fn unknown_constant_yields_empty() {
        let store = sample_store();
        let out = run(&store, "SELECT ?x WHERE { ?x a <NeverSeen> }");
        assert!(out.rows.is_empty());
    }

    #[test]
    fn repeated_variable_consistency() {
        let mut store = Store::new();
        store.create_model("m").unwrap();
        store
            .insert("m", &Term::iri("a"), &Term::iri("p"), &Term::iri("a"))
            .unwrap();
        store
            .insert("m", &Term::iri("a"), &Term::iri("p"), &Term::iri("b"))
            .unwrap();
        let out = run(&store, "SELECT ?x WHERE { ?x <p> ?x }");
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "a");
    }

    #[test]
    fn variable_predicate() {
        let store = sample_store();
        let out = run(&store, "SELECT DISTINCT ?p WHERE { <john> ?p ?o }");
        assert_eq!(out.rows.len(), 3); // rdf:type, hasName, hasAge
    }

    #[test]
    fn exists_and_not_exists() {
        let store = sample_store();
        // Customers WITH an age.
        let out = run(
            &store,
            "SELECT ?x WHERE { ?x a <Customer> FILTER(EXISTS { ?x <hasAge> ?age }) } ORDER BY ?x",
        );
        assert_eq!(out.rows.len(), 2);
        // Entities WITHOUT an age — the governance-gap query shape.
        let out = run(
            &store,
            "SELECT ?x WHERE { ?x <hasName> ?n FILTER(NOT EXISTS { ?x <hasAge> ?age }) }",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "acme");
        // EXISTS sees the outer binding (correlated).
        let out = run(
            &store,
            "SELECT ?x WHERE { ?x a <Institution> FILTER(EXISTS { ?x <hasName> ?n }) }",
        );
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn ask_query_answers_boolean() {
        let store = sample_store();
        let yes = run(&store, "ASK { ?x a <Customer> }");
        assert_eq!(yes.columns, vec!["ask"]);
        assert_eq!(yes.rows[0][0].as_ref().unwrap().label(), "true");
        let no = run(&store, "ASK { ?x a <Spaceship> }");
        assert_eq!(no.rows[0][0].as_ref().unwrap().label(), "false");
        // ASK with a filter.
        let filtered = run(&store, "ASK { ?x <hasAge> ?a FILTER(?a > 100) }");
        assert_eq!(filtered.rows[0][0].as_ref().unwrap().label(), "false");
    }

    #[test]
    fn table_rendering() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x ?age WHERE { ?x <hasAge> ?age } ORDER BY ?age",
        );
        let table = out.to_table();
        assert!(table.contains("x"));
        assert!(table.contains("jane"));
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn union_inside_join_with_filter() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x ?n WHERE {\n\
               { ?x a <Customer> } UNION { ?x a <Institution> }\n\
               ?x <hasName> ?n\n\
               FILTER(regex(?n, \"a\", \"i\"))\n\
             } ORDER BY ?x",
        );
        // Jane Customer and ACME AG contain 'a' (case-insensitive);
        // "John Doe" does not.
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn optional_inside_union_branch() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?x ?age WHERE { { ?x a <Institution> OPTIONAL { ?x <hasAge> ?age } } UNION { ?x a <Customer> } } ORDER BY ?x",
        );
        assert_eq!(out.rows.len(), 3);
        // The institution row has no age.
        let acme = out.rows.iter().find(|r| r[0].as_ref().unwrap().label() == "acme").unwrap();
        assert!(acme[1].is_none());
    }

    #[test]
    fn multi_key_order_by() {
        let store = sample_store();
        let out = run(
            &store,
            "SELECT ?c ?x WHERE { ?x a ?c } ORDER BY ?c DESC(?x)",
        );
        assert_eq!(out.rows.len(), 3);
        // Within class Customer (first group), jane sorts after john under DESC.
        let labels: Vec<&str> = out.rows.iter().map(|r| r[1].as_ref().unwrap().label()).collect();
        assert_eq!(labels, vec!["john", "jane", "acme"]);
    }

    #[test]
    fn offset_beyond_result_set_is_empty() {
        let store = sample_store();
        let out = run(&store, "SELECT ?x WHERE { ?x a <Customer> } OFFSET 10");
        assert!(out.rows.is_empty());
    }

    #[test]
    fn projecting_ungrouped_var_is_error() {
        let store = sample_store();
        let query = parse(
            "SELECT ?x (COUNT(?c) AS ?n) WHERE { ?x a ?c } GROUP BY ?c",
        )
        .unwrap();
        let err = execute(&query, store.model("m").unwrap(), store.dict()).unwrap_err();
        assert!(matches!(err, SparqlError::Semantic(_)));
    }

    fn run_budgeted(store: &Store, q: &str, budget: &QueryBudget) -> QueryOutput {
        let query = parse(q).unwrap();
        execute_with_budget(&query, store.model("m").unwrap(), store.dict(), budget).unwrap()
    }

    #[test]
    fn results_default_to_complete() {
        let store = sample_store();
        let out = run(&store, "SELECT ?x WHERE { ?x a <Customer> }");
        assert!(out.completeness.is_complete());
    }

    #[test]
    fn limit_pushdown_stops_early_and_stays_complete() {
        let store = sample_store();
        let budget = QueryBudget::unlimited();
        let out = run_budgeted(&store, "SELECT ?x WHERE { ?x <hasName> ?n } LIMIT 2", &budget);
        assert_eq!(out.rows.len(), 2);
        // A satisfied LIMIT is a complete answer, not a truncation.
        assert!(out.completeness.is_complete());
        // The pushdown actually stopped the scan: 3 name triples exist but
        // at most the capped prefix was expanded.
        assert!(budget.steps_charged() <= 3);
    }

    #[test]
    fn budget_row_cap_truncates_with_accurate_reason() {
        let store = sample_store();
        // 3 rows exist; a 2-row budget must report RowLimit.
        let budget = QueryBudget::unlimited().with_max_rows(2);
        let out = run_budgeted(&store, "SELECT ?x WHERE { ?x <hasName> ?n }", &budget);
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.completeness.reason(), Some(TruncationReason::RowLimit));

        // A row cap the result fits under exactly is NOT a truncation.
        let budget = QueryBudget::unlimited().with_max_rows(3);
        let out = run_budgeted(&store, "SELECT ?x WHERE { ?x <hasName> ?n }", &budget);
        assert_eq!(out.rows.len(), 3);
        assert!(out.completeness.is_complete());
    }

    #[test]
    fn budget_step_cap_yields_truncated_partial() {
        let store = sample_store();
        let budget = QueryBudget::unlimited().with_max_steps(1);
        let out = run_budgeted(
            &store,
            "SELECT ?x ?n WHERE { ?x a <Customer> . ?x <hasName> ?n }",
            &budget,
        );
        assert!(out.rows.len() < 2);
        assert_eq!(out.completeness.reason(), Some(TruncationReason::StepLimit));
    }

    #[test]
    fn budgeted_rows_are_prefix_of_unbudgeted() {
        let store = sample_store();
        let q = "SELECT ?x ?n WHERE { ?x <hasName> ?n }";
        let full = run(&store, q);
        for cap in 0..=full.rows.len() as u64 {
            let budget = QueryBudget::unlimited().with_max_rows(cap);
            let out = run_budgeted(&store, q, &budget);
            assert_eq!(out.rows, full.rows[..cap as usize].to_vec());
        }
    }

    #[test]
    fn cancelled_before_start_returns_empty_truncated() {
        let store = sample_store();
        let token = mdw_rdf::budget::CancellationToken::new();
        token.cancel();
        let budget = QueryBudget::unlimited().with_cancellation(&token);
        let out = run_budgeted(&store, "SELECT ?x WHERE { ?x <hasName> ?n }", &budget);
        assert!(out.rows.is_empty());
        assert_eq!(out.completeness.reason(), Some(TruncationReason::Cancelled));
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        use mdw_rdf::budget::{ManualTime, TimeSource};
        use std::sync::Arc;
        use std::time::Duration;
        let store = sample_store();
        let time = Arc::new(ManualTime::new());
        let budget = QueryBudget::unlimited()
            .with_deadline(Duration::from_millis(5), Arc::clone(&time) as Arc<dyn TimeSource>);
        time.advance(Duration::from_millis(6));
        let out = run_budgeted(&store, "SELECT ?x WHERE { ?x <hasName> ?n }", &budget);
        assert!(out.rows.is_empty());
        assert_eq!(out.completeness.reason(), Some(TruncationReason::DeadlineExceeded));
    }

    #[test]
    fn ask_still_answers_under_pushdown() {
        let store = sample_store();
        let budget = QueryBudget::unlimited();
        let out = run_budgeted(&store, "ASK { ?x a <Customer> }", &budget);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "true");
        assert!(out.completeness.is_complete());
    }

    #[test]
    fn ordered_query_budget_cap_applies_after_sort() {
        let store = sample_store();
        let budget = QueryBudget::unlimited().with_max_rows(1);
        let out = run_budgeted(
            &store,
            "SELECT ?x ?age WHERE { ?x <hasAge> ?age } ORDER BY DESC(?age)",
            &budget,
        );
        // The kept row is the head of the sorted full result.
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0].as_ref().unwrap().label(), "john");
        assert_eq!(out.completeness.reason(), Some(TruncationReason::RowLimit));
    }

    #[test]
    fn catastrophic_regex_trips_instead_of_hanging() {
        let mut store = Store::new();
        store.create_model("m").unwrap();
        store
            .insert(
                "m",
                &Term::iri("x"),
                &Term::iri("hasName"),
                &Term::plain("a".repeat(64)),
            )
            .unwrap();
        let budget = QueryBudget::unlimited();
        let out = run_budgeted(
            &store,
            "SELECT ?x WHERE { ?x <hasName> ?n FILTER(regex(?n, \"(a*)*b\")) }",
            &budget,
        );
        // The filter is treated as an error value (row dropped) and the
        // result is flagged truncated rather than spinning forever.
        assert!(out.rows.is_empty());
        assert_eq!(out.completeness.reason(), Some(TruncationReason::StepLimit));
    }

    #[test]
    fn bad_regex_reported() {
        let store = sample_store();
        let query = parse(
            "SELECT ?x WHERE { ?x <hasName> ?n FILTER(regex(?n, \"(unclosed\", \"i\")) }",
        )
        .unwrap();
        let err = execute(&query, store.model("m").unwrap(), store.dict()).unwrap_err();
        assert!(matches!(err, SparqlError::BadRegex(_)));
    }

    #[test]
    fn bad_regex_reported_when_pushed_into_bgp() {
        // The planner pushes the regex conjunct into the BGP; the compile
        // error must still surface, not silently drop rows.
        let store = sample_store();
        let query = parse(
            "SELECT ?x WHERE { ?x a <Customer> . ?x <hasName> ?n FILTER(regex(?n, \"(unclosed\", \"i\")) }",
        )
        .unwrap();
        let err = execute(&query, store.model("m").unwrap(), store.dict()).unwrap_err();
        assert!(matches!(err, SparqlError::BadRegex(_)));
    }

    fn run_mode(store: &Store, q: &str, use_planner: bool) -> QueryOutput {
        let query = parse(q).unwrap();
        execute_with_planner(
            &query,
            store.model("m").unwrap(),
            store.dict(),
            &QueryBudget::unlimited(),
            ParallelPolicy::sequential(),
            use_planner,
        )
        .unwrap()
    }

    fn sorted_rows(out: &QueryOutput) -> Vec<String> {
        let mut rows: Vec<String> = out.rows.iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        rows
    }

    #[test]
    fn planner_on_and_off_agree_on_rows() {
        let store = sample_store();
        for q in [
            "SELECT ?x ?n WHERE { ?x <hasName> ?n . ?x a <Customer> }",
            "SELECT ?x WHERE { ?x <hasName> ?n . ?x <hasAge> ?age FILTER(?age > 30) }",
            "SELECT ?x ?age WHERE { ?x <hasName> ?n OPTIONAL { ?x <hasAge> ?age } FILTER(!bound(?age)) }",
            "SELECT ?x WHERE { { ?x a <Customer> } UNION { ?x a <Institution> } ?x <hasName> ?n FILTER(regex(?n, \"a\", \"i\")) }",
            "SELECT ?x WHERE { ?x <hasName> ?n FILTER(NOT EXISTS { ?x <hasAge> ?age }) }",
        ] {
            let on = run_mode(&store, q, true);
            let off = run_mode(&store, q, false);
            assert_eq!(sorted_rows(&on), sorted_rows(&off), "query: {q}");
            assert!(on.completeness.is_complete());
            assert!(off.completeness.is_complete());
        }
    }

    #[test]
    fn explain_reports_reordering_and_actuals() {
        let store = sample_store();
        // Written order is adversarial: the 6-row hasName/type-var scan
        // first, the 1-instance Institution pattern second.
        let query = parse(
            "SELECT ?x ?n WHERE { ?x <hasName> ?n . ?x a <Institution> }",
        )
        .unwrap();
        let budget = QueryBudget::unlimited();
        let (out, report) = execute_explained(
            &query,
            store.model("m").unwrap(),
            store.dict(),
            &budget,
            ParallelPolicy::sequential(),
            true,
        )
        .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert!(report.planner_used);
        assert!(report.reordered(), "planner should flip the adversarial order");
        let entries = &report.bgps[0].entries;
        assert_eq!(entries[0].written_index, 1);
        assert_eq!(entries[0].estimated_rows, 1); // class histogram is exact
        assert_eq!(entries[0].actual_rows, 1);
        assert_eq!(entries[1].actual_rows, 1); // acme's single name
        // The naive plan reports the written order and no estimates.
        let (_, naive) = execute_explained(
            &query,
            store.model("m").unwrap(),
            store.dict(),
            &QueryBudget::unlimited(),
            ParallelPolicy::sequential(),
            false,
        )
        .unwrap();
        assert!(!naive.planner_used);
        assert!(!naive.reordered());
        assert_eq!(naive.bgps[0].entries[0].estimated_rows, 0);
    }

    #[test]
    fn planner_avoids_adversarial_scan_work() {
        // 200 hasName rows vs 1 Institution: with the planner the join
        // touches ~2 rows; in written order it walks every name.
        let mut store = Store::new();
        store.create_model("m").unwrap();
        for i in 0..200 {
            let s = format!("c{i}");
            store
                .insert("m", &Term::iri(s.clone()), &Term::iri(vocab::rdf::TYPE), &Term::iri("Customer"))
                .unwrap();
            store
                .insert("m", &Term::iri(s), &Term::iri("hasName"), &Term::plain(format!("n{i}")))
                .unwrap();
        }
        store
            .insert("m", &Term::iri("acme"), &Term::iri(vocab::rdf::TYPE), &Term::iri("Institution"))
            .unwrap();
        store
            .insert("m", &Term::iri("acme"), &Term::iri("hasName"), &Term::plain("ACME"))
            .unwrap();
        let q = "SELECT ?x ?n WHERE { ?x <hasName> ?n . ?x a <Institution> }";
        let query = parse(q).unwrap();

        let planned_budget = QueryBudget::unlimited();
        let on = execute_with_planner(
            &query,
            store.model("m").unwrap(),
            store.dict(),
            &planned_budget,
            ParallelPolicy::sequential(),
            true,
        )
        .unwrap();
        let naive_budget = QueryBudget::unlimited();
        let off = execute_with_planner(
            &query,
            store.model("m").unwrap(),
            store.dict(),
            &naive_budget,
            ParallelPolicy::sequential(),
            false,
        )
        .unwrap();
        assert_eq!(on.rows, off.rows);
        assert_eq!(on.rows.len(), 1);
        // The planner's step count is a small constant; the naive order
        // charges one step per hasName row (201) plus the per-row probes.
        assert!(planned_budget.steps_charged() <= 4, "planned steps: {}", planned_budget.steps_charged());
        assert!(
            naive_budget.steps_charged() >= 50 * planned_budget.steps_charged(),
            "naive order should do vastly more work: {} vs {}",
            naive_budget.steps_charged(),
            planned_budget.steps_charged()
        );
    }
}
