//! # mdw-sparql — SPARQL-subset engine with a `SEM_MATCH`-style API
//!
//! The paper queries its meta-data graph through Oracle's `SEM_MATCH` table
//! function (Listings 1 and 2): a SPARQL basic graph pattern, the model list
//! (`SEM_MODELS('DWH_CURR')`), an optional rulebase
//! (`SEM_RULEBASES('OWLPRIME')`), and namespace aliases (`SEM_ALIAS`), with
//! SQL-side `regexp_like` filters and `GROUP BY` around it.
//!
//! This crate reproduces that query surface:
//!
//! * [`ast`] + [`parser`] — a hand-rolled parser for a practical SPARQL
//!   subset: `PREFIX`, `SELECT [DISTINCT]`, basic graph patterns with
//!   `;`/`,` continuations and the `a` keyword, `FILTER` with comparisons /
//!   `regex` / boolean operators, `OPTIONAL`, `UNION`, `GROUP BY` with
//!   `COUNT`, `ORDER BY`, `LIMIT`/`OFFSET`,
//! * [`regex_lite`] — a small backtracking regex engine (literals, `.`,
//!   `*`, `+`, `?`, alternation, groups, character classes, anchors, and the
//!   case-insensitive flag) so that `regex(?name, "customer", "i")` works
//!   without external dependencies,
//! * [`plan`] — logical query plans: every basic graph pattern annotated
//!   with an execution order, cardinality estimates, and pushed-down
//!   filter conjuncts, plus the [`ExplainReport`](plan::ExplainReport)
//!   pairing estimates with observed row counts,
//! * [`optimize`] — the cost-based optimizer that builds those plans from
//!   frozen-index statistics ([`mdw_rdf::FrozenStats`]): selectivity-ranked
//!   greedy join ordering with plan-time bound-set propagation and filter
//!   pushdown,
//! * [`exec`] — the physical executor: budget-charged nested index-loop
//!   joins driven by the plan, over any
//!   [`TripleSource`](mdw_rdf::TripleSource) — a plain model or an
//!   entailed view (rulebase opted in),
//! * [`sem_match`] — the Oracle-flavoured entry point used by the
//!   reproduction of the paper's listings.

pub mod ast;
pub mod error;
pub mod exec;
pub mod optimize;
pub mod parser;
pub mod plan;
pub mod regex_lite;
pub mod sem_match;

pub use ast::Query;
pub use error::SparqlError;
pub use exec::{
    execute, execute_explained, execute_with_budget, execute_with_options, execute_with_planner,
    QueryOutput, ResultRow,
};
pub use plan::{ExplainBgp, ExplainEntry, ExplainReport, QueryPlan};
pub use regex_lite::Regex;
pub use sem_match::SemMatch;
