//! The cost-based query optimizer: AST → ordered [`QueryPlan`].
//!
//! The optimizer walks the pattern tree once, carrying the set of
//! variables that are **definitely bound** on entry to each node
//! (sideways information passing at plan time). Inside every BGP it runs
//! a greedy bound-variable-aware ordering: repeatedly pick the remaining
//! pattern with the fewest unbound positions, breaking ties by estimated
//! cardinality, then add its variables to the bound set so later picks
//! see them as bound. Estimates come from the frozen snapshot's
//! [`FrozenStats`] — per-predicate counts, per-subject/object fan-out
//! averages, and the exact `rdf:type` class histogram; sources without a
//! stats snapshot (entailed views) fall back to capped
//! [`TripleSource::estimate`] probes over the constant positions.
//!
//! Filter conjuncts are pushed down on the same walk: a `FILTER`'s
//! `&&`-conjuncts travel into the subtree and attach to the earliest BGP
//! unit after which all their variables are bound. This preserves SPARQL
//! semantics exactly: a filter keeps a row only when it evaluates to
//! `true` (errors are falsy), bindings only ever extend (a bound variable
//! never changes value), so the conjunct's verdict at the attach point
//! equals its verdict at the original filter — evaluating early merely
//! drops doomed rows sooner. Conjuncts that cannot be fully bound inside
//! the subtree (e.g. `!bound(?v)` over an OPTIONAL, or EXISTS bodies with
//! their own variables) stay behind as a residual [`PlanNode::Filter`].
//! Pushdown never crosses into an OPTIONAL's right arm or a UNION arm.

use std::collections::BTreeSet;

use mdw_rdf::dict::{Dictionary, TermId};
use mdw_rdf::stats::FrozenStats;
use mdw_rdf::store::TripleSource;
use mdw_rdf::triple::TriplePattern;

use crate::ast::{self, Expr, GraphPattern, NodeRef, PatternTriple, Verb};
use crate::plan::{untrack, BgpPlan, PlanNode, PlannedUnit, QueryPlan};

/// Row cap for fallback cardinality probes against sources without a
/// frozen statistics snapshot.
const PROBE_CAP: usize = 64;

/// Placeholder id for a position bound by a variable whose value is
/// unknown at plan time. [`FrozenStats::estimate_pattern`] only inspects
/// *whether* subject/object are bound, never the id itself.
const PLAN_BOUND: TermId = TermId(u64::MAX);

/// What the planner knows about the data it is ordering for.
pub struct PlannerInput<'a> {
    /// Frozen-snapshot statistics, when the source has them.
    pub stats: Option<&'a FrozenStats>,
    /// The source itself, for fallback estimate probes.
    pub source: &'a dyn TripleSource,
    /// The dictionary constants resolve through.
    pub dict: &'a Dictionary,
    /// The dictionary's id for `rdf:type` (keys the class histogram).
    pub type_id: Option<TermId>,
}

/// Plans a query pattern with cost-based ordering and filter pushdown.
pub fn plan(pattern: &GraphPattern, input: &PlannerInput<'_>) -> QueryPlan {
    let mut planner = Planner { input, next_id: 0, next_tag: 0, filters_pushed: 0 };
    let mut bound = BTreeSet::new();
    let mut pending = Vec::new();
    let root = planner.plan_node(pattern, &mut bound, &mut pending);
    debug_assert!(pending.is_empty(), "every filter tag drains at its own node");
    QueryPlan {
        root,
        unit_count: planner.next_id,
        planner_used: true,
        filters_pushed: planner.filters_pushed,
    }
}

/// Plans an EXISTS/NOT EXISTS sub-pattern: same ordering, but unit ids
/// are stripped — sub-plans do not participate in the explain counters.
pub fn plan_untracked(pattern: &GraphPattern, input: &PlannerInput<'_>) -> PlanNode {
    let mut planned = plan(pattern, input);
    untrack(&mut planned.root);
    planned.root
}

/// A filter conjunct in flight, looking for a BGP unit to attach to.
/// `tag` identifies the originating Filter node so unplaceable conjuncts
/// return to it (and only it) as residue.
struct Pending {
    tag: usize,
    expr: Expr,
    vars: Vec<String>,
}

struct Planner<'a, 'b> {
    input: &'b PlannerInput<'a>,
    next_id: usize,
    next_tag: usize,
    filters_pushed: usize,
}

impl Planner<'_, '_> {
    fn plan_node(
        &mut self,
        pattern: &GraphPattern,
        bound: &mut BTreeSet<String>,
        pending: &mut Vec<Pending>,
    ) -> PlanNode {
        match pattern {
            GraphPattern::Bgp(triples) => PlanNode::Bgp(self.plan_bgp(triples, bound, pending)),
            GraphPattern::Join(a, b) => {
                // Bindings thread left-to-right, so the right arm plans
                // with the left arm's variables bound — and may absorb
                // conjuncts the left arm could not.
                let left = self.plan_node(a, bound, pending);
                let right = self.plan_node(b, bound, pending);
                PlanNode::Join(Box::new(left), Box::new(right))
            }
            GraphPattern::Optional(a, b) => {
                // Conjuncts may sink into the left arm (every output row's
                // left-side bindings are decided there) but never into the
                // right: a row whose extension is empty keeps the left
                // binding, so right-side filtering would change results.
                let left = self.plan_node(a, bound, pending);
                let mut right_bound = bound.clone();
                let mut none = Vec::new();
                let right = self.plan_node(b, &mut right_bound, &mut none);
                debug_assert!(none.is_empty());
                // Variables bound only under OPTIONAL are not definite.
                PlanNode::Optional(Box::new(left), Box::new(right))
            }
            GraphPattern::Union(a, b) => {
                // No pushdown into UNION arms: a conjunct placed in one
                // arm but not the other would filter asymmetrically.
                let mut left_bound = bound.clone();
                let mut right_bound = bound.clone();
                let mut none_l = Vec::new();
                let mut none_r = Vec::new();
                let left = self.plan_node(a, &mut left_bound, &mut none_l);
                let right = self.plan_node(b, &mut right_bound, &mut none_r);
                debug_assert!(none_l.is_empty() && none_r.is_empty());
                // Only variables both arms bind are definite afterwards.
                *bound = left_bound.intersection(&right_bound).cloned().collect();
                PlanNode::Union(Box::new(left), Box::new(right))
            }
            GraphPattern::Filter(expr, inner) => {
                let tag = self.next_tag;
                self.next_tag += 1;
                let mut conjuncts = Vec::new();
                split_and(expr, &mut conjuncts);
                for c in conjuncts {
                    let mut vars = Vec::new();
                    ast::expr_vars(&c, &mut vars);
                    pending.push(Pending {
                        tag,
                        expr: c,
                        vars: vars.into_iter().map(|v| v.0).collect(),
                    });
                }
                let node = self.plan_node(inner, bound, pending);
                // Whatever the subtree did not absorb stays here.
                let (mine, keep): (Vec<_>, Vec<_>) =
                    std::mem::take(pending).into_iter().partition(|p| p.tag == tag);
                *pending = keep;
                let residual: Vec<Expr> = mine.into_iter().map(|p| p.expr).collect();
                match and_all(residual) {
                    Some(e) => PlanNode::Filter(e, Box::new(node)),
                    None => node,
                }
            }
        }
    }

    fn plan_bgp(
        &mut self,
        triples: &[PatternTriple],
        bound: &mut BTreeSet<String>,
        pending: &mut Vec<Pending>,
    ) -> BgpPlan {
        let mut remaining: Vec<(usize, &PatternTriple)> = triples.iter().enumerate().collect();
        let mut units: Vec<PlannedUnit> = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let mut best = 0;
            let mut best_score = (usize::MAX, usize::MAX);
            for (slot, (_, t)) in remaining.iter().enumerate() {
                let score = self.score(t, bound);
                if score < best_score {
                    best_score = score;
                    best = slot;
                }
            }
            let (written_index, t) = remaining.remove(best);
            for v in t.vars() {
                bound.insert(v.0.clone());
            }
            let id = self.next_id;
            self.next_id += 1;
            let mut unit = PlannedUnit {
                triple: t.clone(),
                written_index,
                estimated_rows: best_score.1,
                id,
                filters: Vec::new(),
            };
            // Attach every pending conjunct whose variables are now all
            // bound — the earliest point it can evaluate.
            let mut i = 0;
            while i < pending.len() {
                if pending[i].vars.iter().all(|v| bound.contains(v)) {
                    let p = pending.remove(i);
                    self.filters_pushed += 1;
                    unit.filters.push(p.expr);
                } else {
                    i += 1;
                }
            }
            units.push(unit);
        }
        BgpPlan { units }
    }

    /// Scores one pattern under the current bound set:
    /// `(unbound positions, estimated rows)`, lower is better.
    fn score(&self, t: &PatternTriple, bound: &BTreeSet<String>) -> (usize, usize) {
        // For each position: is it bound at plan time, and — when it is a
        // constant — what id does it resolve to (`Some(None)` = a constant
        // the dictionary has never seen).
        let state = |n: &NodeRef| -> (bool, Option<Option<TermId>>) {
            match n {
                NodeRef::Var(v) => (bound.contains(&v.0), None),
                NodeRef::Term(term) => (true, Some(self.input.dict.lookup(term))),
            }
        };
        match &t.p {
            Verb::Path(_) => {
                // Paths are costed by endpoint boundness alone: a closure
                // from a bound node is cheap, an unbounded closure scan is
                // always last.
                let (s_bound, _) = state(&t.s);
                let (o_bound, _) = state(&t.o);
                match (s_bound, o_bound) {
                    (true, true) => (1, 64),
                    (true, false) | (false, true) => (2, 512),
                    (false, false) => (3, usize::MAX),
                }
            }
            Verb::Node(p) => {
                let (s_bound, s_const) = state(&t.s);
                let (p_bound, p_const) = state(p);
                let (o_bound, o_const) = state(&t.o);
                // A constant absent from the dictionary matches nothing:
                // the cheapest possible pattern — run it first and empty
                // the whole BGP immediately.
                if s_const == Some(None) || p_const == Some(None) || o_const == Some(None) {
                    return (0, 0);
                }
                let unbound =
                    [s_bound, p_bound, o_bound].iter().filter(|b| !**b).count();
                let est = self.estimate(
                    s_bound,
                    s_const.flatten(),
                    p_const.flatten(),
                    o_bound,
                    o_const.flatten(),
                );
                (unbound, est)
            }
        }
    }

    /// Estimated matches for a triple pattern whose subject/object may be
    /// bound either by a constant (id known) or by a previously-planned
    /// variable (id unknown — the average-per-value model applies).
    fn estimate(
        &self,
        s_bound: bool,
        s_id: Option<TermId>,
        p_id: Option<TermId>,
        o_bound: bool,
        o_id: Option<TermId>,
    ) -> usize {
        let Some(stats) = self.input.stats else {
            // No snapshot statistics (entailed views): probe the source
            // over the constant positions, capped.
            let probe = TriplePattern { s: s_id, p: p_id, o: o_id };
            return self.input.source.estimate(probe, PROBE_CAP);
        };
        // `?s rdf:type <Class>` with a free subject: the class histogram
        // answers exactly.
        if let (Some(p), Some(o)) = (p_id, o_id) {
            if Some(p) == self.input.type_id && !s_bound {
                if let Some(n) = stats.class_count(o) {
                    return n;
                }
            }
        }
        // A variable-bound predicate has an unknown id at plan time, so it
        // deliberately maps to the predicate-unbound branch (an
        // overestimate, which only makes the pattern run later).
        let shape = TriplePattern {
            s: s_bound.then_some(s_id.unwrap_or(PLAN_BOUND)),
            p: p_id,
            o: o_bound.then_some(o_id.unwrap_or(PLAN_BOUND)),
        };
        stats.estimate_pattern(shape)
    }
}

/// Splits an expression into its top-level `&&` conjuncts. Sound because
/// a filter keeps a row only when the whole conjunction is `true`, and
/// `And` is falsy whenever either side is false or errors — identical to
/// dropping the row at each conjunct independently.
fn split_and(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::And(a, b) => {
            split_and(a, out);
            split_and(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Re-joins residual conjuncts into one expression (`None` when empty).
fn and_all(mut exprs: Vec<Expr>) -> Option<Expr> {
    let first = if exprs.is_empty() { return None } else { exprs.remove(0) };
    Some(exprs.into_iter().fold(first, |acc, e| Expr::And(Box::new(acc), Box::new(e))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::plan::{PlanNode, UNTRACKED};
    use mdw_rdf::store::{Store, TripleSource};
    use mdw_rdf::term::Term;
    use mdw_rdf::vocab;

    /// 100 customers with names, 1 institution; `hasName` is the fat
    /// predicate, `a <Institution>` the thin one.
    fn skewed_store() -> Store {
        let mut store = Store::new();
        store.create_model("m").unwrap();
        for i in 0..100 {
            let s = format!("cust{i}");
            store
                .insert("m", &Term::iri(s.clone()), &Term::iri(vocab::rdf::TYPE), &Term::iri("Customer"))
                .unwrap();
            store
                .insert("m", &Term::iri(s), &Term::iri("hasName"), &Term::plain(format!("name {i}")))
                .unwrap();
        }
        store
            .insert("m", &Term::iri("acme"), &Term::iri(vocab::rdf::TYPE), &Term::iri("Institution"))
            .unwrap();
        store
            .insert("m", &Term::iri("acme"), &Term::iri("hasName"), &Term::plain("ACME AG"))
            .unwrap();
        store
    }

    fn plan_for(store: &Store, q: &str) -> QueryPlan {
        let query = parse(q).unwrap();
        let source = store.model("m").unwrap();
        let type_id = store.dict().lookup(&vocab::rdf_type());
        let stats = source.planner_stats(type_id);
        plan(
            &query.pattern,
            &PlannerInput { stats: stats.as_deref(), source, dict: store.dict(), type_id },
        )
    }

    #[test]
    fn selective_class_pattern_runs_first() {
        let store = skewed_store();
        // Written order is adversarial: the fat hasName scan first.
        let p = plan_for(
            &store,
            "SELECT ?x ?n WHERE { ?x <hasName> ?n . ?x a <Institution> } ",
        );
        let PlanNode::Bgp(bgp) = &p.root else { panic!("expected BGP") };
        // The planner flips the order: 1 Institution instance vs 101 names.
        assert_eq!(bgp.units[0].written_index, 1);
        assert_eq!(bgp.units[0].estimated_rows, 1);
        assert_eq!(bgp.units[1].written_index, 0);
        // The second pattern sees ?x bound: per-subject average, not the
        // full predicate count.
        assert!(bgp.units[1].estimated_rows <= 2);
        assert!(p.planner_used);
    }

    #[test]
    fn filter_pushed_to_binding_unit() {
        let store = skewed_store();
        let p = plan_for(
            &store,
            "SELECT ?x WHERE { ?x a <Customer> . ?x <hasName> ?n FILTER(?n = \"name 7\") }",
        );
        assert_eq!(p.filters_pushed, 1);
        let PlanNode::Bgp(bgp) = &p.root else { panic!("expected BGP, filter absorbed") };
        // The conjunct lands on whichever unit binds ?n.
        let unit = bgp.units.iter().find(|u| !u.filters.is_empty()).unwrap();
        assert!(crate::plan::render_triple(&unit.triple).contains("<hasName>"));
    }

    #[test]
    fn unpushable_filter_stays_residual() {
        let store = skewed_store();
        // ?age only binds under OPTIONAL → never definite → residual.
        let p = plan_for(
            &store,
            "SELECT ?x WHERE { ?x <hasName> ?n OPTIONAL { ?x <hasAge> ?age } FILTER(!bound(?age)) }",
        );
        assert_eq!(p.filters_pushed, 0);
        assert!(matches!(p.root, PlanNode::Filter(_, _)));
    }

    #[test]
    fn filter_may_cross_into_join_right_arm() {
        let store = skewed_store();
        // The group parser splits around UNION, producing a Join whose
        // right arm binds ?n — the conjunct crosses into it.
        let p = plan_for(
            &store,
            "SELECT ?x WHERE { { ?x a <Customer> } UNION { ?x a <Institution> } ?x <hasName> ?n FILTER(?n = \"ACME AG\") }",
        );
        assert_eq!(p.filters_pushed, 1);
        assert!(!matches!(p.root, PlanNode::Filter(_, _)));
    }

    #[test]
    fn unknown_constant_scores_cheapest() {
        let store = skewed_store();
        let p = plan_for(
            &store,
            "SELECT ?x WHERE { ?x <hasName> ?n . ?x a <NeverSeen> }",
        );
        let PlanNode::Bgp(bgp) = &p.root else { panic!("expected BGP") };
        // The dead pattern runs first so the BGP empties immediately.
        assert_eq!(bgp.units[0].written_index, 1);
        assert_eq!(bgp.units[0].estimated_rows, 0);
    }

    #[test]
    fn untracked_subplans_have_no_counter_slots() {
        let store = skewed_store();
        let query = parse("SELECT ?x WHERE { ?x a <Customer> . ?x <hasName> ?n }").unwrap();
        let source = store.model("m").unwrap();
        let type_id = store.dict().lookup(&vocab::rdf_type());
        let stats = source.planner_stats(type_id);
        let node = plan_untracked(
            &query.pattern,
            &PlannerInput { stats: stats.as_deref(), source, dict: store.dict(), type_id },
        );
        let PlanNode::Bgp(bgp) = &node else { panic!("expected BGP") };
        assert!(bgp.units.iter().all(|u| u.id == UNTRACKED));
    }

    #[test]
    fn probe_fallback_orders_without_stats() {
        let store = skewed_store();
        let query = parse(
            "SELECT ?x ?n WHERE { ?x <hasName> ?n . ?x a <Institution> }",
        )
        .unwrap();
        let source = store.model("m").unwrap();
        // No stats handle: the planner probes the source instead.
        let p = plan(
            &query.pattern,
            &PlannerInput {
                stats: None,
                source,
                dict: store.dict(),
                type_id: store.dict().lookup(&vocab::rdf_type()),
            },
        );
        let PlanNode::Bgp(bgp) = &p.root else { panic!("expected BGP") };
        assert_eq!(bgp.units[0].written_index, 1);
    }
}
