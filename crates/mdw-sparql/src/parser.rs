//! Recursive-descent parser for the SPARQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query    := prefix* SELECT [DISTINCT] (item+ | *) WHERE { ggp }
//!             [GROUP BY ?v+] [ORDER BY key+] [LIMIT n] [OFFSET n]
//! prefix   := PREFIX name: <iri>
//! item     := ?var | ( COUNT '(' [DISTINCT] (?var | *) ')' AS ?alias )
//! ggp      := ( triples | FILTER '(' expr ')' | OPTIONAL { ggp }
//!             | { ggp } (UNION { ggp })* )*
//! triples  := subject povList ('.'? )
//! povList  := verb objectList (';' verb objectList)*
//! verb     := ?var | path
//! path     := path_seq ('|' path_seq)*           # SPARQL 1.1 property paths
//! path_seq := path_elt ('/' path_elt)*
//! path_elt := '^'? ('a' | iri | pname | '(' path ')') ('*' | '+' | '?')?
//! expr     := or-expression with comparisons, regex(), bound(), str()
//! ```

use std::collections::BTreeMap;

use mdw_rdf::term::Term;
use mdw_rdf::vocab;

use crate::ast::*;
use crate::error::SparqlError;

/// Parses a query string.
pub fn parse(input: &str) -> Result<Query, SparqlError> {
    let tokens = lex(input)?;
    Parser { tokens, pos: 0, prefixes: BTreeMap::new() }.parse_query()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Keyword(String), // upper-cased
    Var(String),
    Iri(String),
    PName(String, String),
    Literal { lexical: String, lang: Option<String>, datatype: Option<String> },
    Integer(i64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Dot,
    Semicolon,
    Comma,
    Star,
    Eq,
    Ne,
    Le,
    Ge,
    Lt,
    Gt,
    AndAnd,
    OrOr,
    Bang,
    A,
    /// Single `|` — property-path alternative.
    Pipe,
    /// `/` — property-path sequence.
    Slash,
    /// `^` — property-path inverse.
    Caret,
    /// Bare `?` — property-path zero-or-one modifier.
    Question,
    /// `+` — property-path one-or-more modifier.
    Plus,
}

const KEYWORDS: &[&str] = &[
    "PREFIX", "SELECT", "DISTINCT", "WHERE", "FILTER", "OPTIONAL", "UNION", "GROUP", "BY",
    "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "COUNT", "AS", "REGEX", "BOUND", "STR", "ASK",
    "EXISTS", "NOT",
];

/// A token's position in the query text: 1-based line and character column.
type Pos = (usize, usize);

/// Converts a byte offset into a 1-based (line, column) position. Only
/// called on the error path, so the linear walk costs nothing when the
/// query is well-formed.
fn line_col(input: &str, offset: usize) -> Pos {
    let (mut line, mut col) = (1, 1);
    for (i, c) in input.char_indices() {
        if i >= offset {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

fn lex(input: &str) -> Result<Vec<(Pos, Tok)>, SparqlError> {
    // Tokens carry the byte offset of their first character; one ascending
    // pass at the end converts offsets to (line, column) pairs. This keeps
    // every multi-character arm (IRIs, literals, comments) position-correct
    // even when the token body spans lines.
    let mut tokens: Vec<(usize, Tok)> = Vec::new();
    let mut chars = input.char_indices().peekable();
    let err = |offset: usize, msg: &str| {
        let (line, column) = line_col(input, offset);
        SparqlError::Parse { line, column, message: msg.to_string() }
    };

    while let Some(&(start, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for (_, c) in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '{' => {
                chars.next();
                tokens.push((start, Tok::LBrace));
            }
            '}' => {
                chars.next();
                tokens.push((start, Tok::RBrace));
            }
            '(' => {
                chars.next();
                tokens.push((start, Tok::LParen));
            }
            ')' => {
                chars.next();
                tokens.push((start, Tok::RParen));
            }
            '.' => {
                chars.next();
                tokens.push((start, Tok::Dot));
            }
            ';' => {
                chars.next();
                tokens.push((start, Tok::Semicolon));
            }
            ',' => {
                chars.next();
                tokens.push((start, Tok::Comma));
            }
            '*' => {
                chars.next();
                tokens.push((start, Tok::Star));
            }
            '+' => {
                chars.next();
                tokens.push((start, Tok::Plus));
            }
            '=' => {
                chars.next();
                tokens.push((start, Tok::Eq));
            }
            '!' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some('=') {
                    chars.next();
                    tokens.push((start, Tok::Ne));
                } else {
                    tokens.push((start, Tok::Bang));
                }
            }
            '&' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some('&') {
                    chars.next();
                    tokens.push((start, Tok::AndAnd));
                } else {
                    return Err(err(start, "expected &&"));
                }
            }
            '|' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some('|') {
                    chars.next();
                    tokens.push((start, Tok::OrOr));
                } else {
                    tokens.push((start, Tok::Pipe));
                }
            }
            '/' => {
                chars.next();
                tokens.push((start, Tok::Slash));
            }
            '^' => {
                chars.next();
                tokens.push((start, Tok::Caret));
            }
            '<' => {
                // IRI if the next char begins an IRI body; operator otherwise.
                let mut probe = chars.clone();
                probe.next();
                let next = probe.peek().map(|&(_, c)| c);
                let is_iri = matches!(next, Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == ':' || c == '/' || c == 'h');
                if is_iri {
                    chars.next();
                    let mut iri = String::new();
                    let mut closed = false;
                    for (_, c) in chars.by_ref() {
                        if c == '>' {
                            closed = true;
                            break;
                        }
                        if c == '\n' {
                            return Err(err(start, "unterminated IRI"));
                        }
                        iri.push(c);
                    }
                    if !closed {
                        return Err(err(start, "unterminated IRI"));
                    }
                    tokens.push((start, Tok::Iri(iri)));
                } else {
                    chars.next();
                    if chars.peek().map(|&(_, c)| c) == Some('=') {
                        chars.next();
                        tokens.push((start, Tok::Le));
                    } else {
                        tokens.push((start, Tok::Lt));
                    }
                }
            }
            '>' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some('=') {
                    chars.next();
                    tokens.push((start, Tok::Ge));
                } else {
                    tokens.push((start, Tok::Gt));
                }
            }
            '?' | '$' => {
                chars.next();
                let mut name = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    if c == '?' {
                        // A bare `?` is the zero-or-one path modifier.
                        tokens.push((start, Tok::Question));
                    } else {
                        return Err(err(start, "empty variable name"));
                    }
                } else {
                    tokens.push((start, Tok::Var(name)));
                }
            }
            '"' => {
                chars.next();
                let mut lexical = String::new();
                loop {
                    match chars.next() {
                        Some((_, '"')) => break,
                        Some((i, '\\')) => match chars.next() {
                            Some((_, 'n')) => lexical.push('\n'),
                            Some((_, 't')) => lexical.push('\t'),
                            Some((_, 'r')) => lexical.push('\r'),
                            Some((_, '"')) => lexical.push('"'),
                            Some((_, '\\')) => lexical.push('\\'),
                            _ => return Err(err(i, "bad escape in literal")),
                        },
                        Some((_, c)) => lexical.push(c),
                        None => return Err(err(start, "unterminated literal")),
                    }
                }
                let mut lang = None;
                let mut datatype = None;
                match chars.peek().map(|&(_, c)| c) {
                    Some('@') => {
                        chars.next();
                        let mut tag = String::new();
                        while let Some(&(_, c)) = chars.peek() {
                            if c.is_ascii_alphanumeric() || c == '-' {
                                tag.push(c);
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        lang = Some(tag);
                    }
                    Some('^') => {
                        chars.next();
                        if chars.next().map(|(_, c)| c) != Some('^') {
                            return Err(err(start, "expected ^^"));
                        }
                        if chars.next().map(|(_, c)| c) != Some('<') {
                            return Err(err(start, "expected <datatype-iri>"));
                        }
                        let mut dt = String::new();
                        let mut closed = false;
                        for (_, c) in chars.by_ref() {
                            if c == '>' {
                                closed = true;
                                break;
                            }
                            dt.push(c);
                        }
                        if !closed {
                            return Err(err(start, "unterminated datatype IRI"));
                        }
                        datatype = Some(dt);
                    }
                    _ => {}
                }
                tokens.push((start, Tok::Literal { lexical, lang, datatype }));
            }
            c if c.is_ascii_digit() || c == '-' => {
                chars.next();
                let mut num = String::new();
                num.push(c);
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_digit() {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value = num
                    .parse()
                    .map_err(|_| err(start, &format!("bad integer: {num}")))?;
                tokens.push((start, Tok::Integer(value)));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut word = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        word.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if chars.peek().map(|&(_, c)| c) == Some(':') {
                    chars.next();
                    let mut local = String::new();
                    while let Some(&(_, c)) = chars.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                            local.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    tokens.push((start, Tok::PName(word, local)));
                } else if word == "a" {
                    tokens.push((start, Tok::A));
                } else {
                    let upper = word.to_ascii_uppercase();
                    if KEYWORDS.contains(&upper.as_str()) {
                        tokens.push((start, Tok::Keyword(upper)));
                    } else {
                        return Err(err(start, &format!("unexpected word: {word}")));
                    }
                }
            }
            other => return Err(err(start, &format!("unexpected character: {other:?}"))),
        }
    }

    // One ascending pass: byte offsets → (line, column) pairs.
    let (mut line, mut col) = (1usize, 1usize);
    let mut walker = input.char_indices().peekable();
    Ok(tokens
        .into_iter()
        .map(|(offset, tok)| {
            while let Some(&(i, c)) = walker.peek() {
                if i >= offset {
                    break;
                }
                walker.next();
                if c == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            ((line, col), tok)
        })
        .collect())
}

struct Parser {
    tokens: Vec<(Pos, Tok)>,
    pos: usize,
    prefixes: BTreeMap<String, String>,
}

impl Parser {
    /// The position of the current token (or the last one, at end of
    /// input) — where an error at this point in the parse is anchored.
    fn position(&self) -> Pos {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|(p, _)| *p)
            .unwrap_or((1, 1))
    }

    fn error(&self, message: impl Into<String>) -> SparqlError {
        let (line, column) = self.position();
        SparqlError::Parse { line, column, message: message.into() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SparqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}, got {:?}", self.peek())))
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), SparqlError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {tok:?}, got {:?}", self.peek())))
        }
    }

    fn resolve_pname(&self, prefix: &str, local: &str) -> Result<String, SparqlError> {
        let ns = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| SparqlError::UndefinedPrefix(prefix.to_string()))?;
        Ok(format!("{ns}{local}"))
    }

    fn parse_query(mut self) -> Result<Query, SparqlError> {
        while self.eat_keyword("PREFIX") {
            let (prefix, local) = match self.bump() {
                Some(Tok::PName(p, l)) => (p, l),
                other => return Err(self.error(format!("expected prefix name, got {other:?}"))),
            };
            if !local.is_empty() {
                return Err(self.error("prefix declaration must end with ':'"));
            }
            let iri = match self.bump() {
                Some(Tok::Iri(iri)) => iri,
                other => return Err(self.error(format!("expected IRI, got {other:?}"))),
            };
            self.prefixes.insert(prefix, iri);
        }

        let ask = self.eat_keyword("ASK");
        let (distinct, selection) = if ask {
            (false, Selection::Star)
        } else {
            self.expect_keyword("SELECT")?;
            let distinct = self.eat_keyword("DISTINCT");
            (distinct, self.parse_selection()?)
        };
        if !ask {
            self.expect_keyword("WHERE")?;
        } else {
            // `ASK { … }` and `ASK WHERE { … }` are both legal.
            self.eat_keyword("WHERE");
        }
        self.expect(Tok::LBrace)?;
        let pattern = self.parse_group(true)?;

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            while let Some(Tok::Var(name)) = self.peek() {
                group_by.push(Var::new(name.clone()));
                self.pos += 1;
            }
            if group_by.is_empty() {
                return Err(self.error("GROUP BY needs at least one variable"));
            }
        }

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                match self.peek() {
                    Some(Tok::Var(name)) => {
                        order_by.push(OrderKey { var: Var::new(name.clone()), ascending: true });
                        self.pos += 1;
                    }
                    Some(Tok::Keyword(k)) if k == "ASC" || k == "DESC" => {
                        let ascending = k == "ASC";
                        self.pos += 1;
                        self.expect(Tok::LParen)?;
                        let var = match self.bump() {
                            Some(Tok::Var(name)) => Var::new(name),
                            other => {
                                return Err(self.error(format!("expected variable, got {other:?}")))
                            }
                        };
                        self.expect(Tok::RParen)?;
                        order_by.push(OrderKey { var, ascending });
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return Err(self.error("ORDER BY needs at least one key"));
            }
        }

        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_keyword("LIMIT") {
                match self.bump() {
                    Some(Tok::Integer(n)) if n >= 0 => limit = Some(n as usize),
                    other => return Err(self.error(format!("expected LIMIT count, got {other:?}"))),
                }
            } else if self.eat_keyword("OFFSET") {
                match self.bump() {
                    Some(Tok::Integer(n)) if n >= 0 => offset = Some(n as usize),
                    other => {
                        return Err(self.error(format!("expected OFFSET count, got {other:?}")))
                    }
                }
            } else {
                break;
            }
        }

        if self.pos != self.tokens.len() {
            return Err(self.error(format!("unexpected trailing token: {:?}", self.peek())));
        }

        Ok(Query {
            prefixes: self.prefixes.clone(),
            ask,
            distinct,
            selection,
            pattern,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_selection(&mut self) -> Result<Selection, SparqlError> {
        if self.peek() == Some(&Tok::Star) {
            self.pos += 1;
            return Ok(Selection::Star);
        }
        let mut items = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Var(name)) => {
                    items.push(SelectItem::Var(Var::new(name.clone())));
                    self.pos += 1;
                }
                Some(Tok::LParen) => {
                    self.pos += 1;
                    self.expect_keyword("COUNT")?;
                    self.expect(Tok::LParen)?;
                    let distinct = self.eat_keyword("DISTINCT");
                    let var = match self.bump() {
                        Some(Tok::Var(name)) => Some(Var::new(name)),
                        Some(Tok::Star) => None,
                        other => {
                            return Err(self.error(format!("expected ?var or *, got {other:?}")))
                        }
                    };
                    self.expect(Tok::RParen)?;
                    self.expect_keyword("AS")?;
                    let alias = match self.bump() {
                        Some(Tok::Var(name)) => Var::new(name),
                        other => return Err(self.error(format!("expected alias, got {other:?}"))),
                    };
                    self.expect(Tok::RParen)?;
                    items.push(SelectItem::Count { var, distinct, alias });
                }
                _ => break,
            }
        }
        if items.is_empty() {
            return Err(self.error("empty SELECT list"));
        }
        Ok(Selection::Items(items))
    }

    /// Parses a group graph pattern up to (and consuming) the closing brace.
    fn parse_group(&mut self, _top: bool) -> Result<GraphPattern, SparqlError> {
        let mut acc: Option<GraphPattern> = None;
        let mut filters: Vec<Expr> = Vec::new();
        let mut bgp: Vec<PatternTriple> = Vec::new();

        let flush_bgp = |acc: &mut Option<GraphPattern>, bgp: &mut Vec<PatternTriple>| {
            if !bgp.is_empty() {
                let pat = GraphPattern::Bgp(std::mem::take(bgp));
                *acc = Some(match acc.take() {
                    None => pat,
                    Some(prev) => GraphPattern::Join(Box::new(prev), Box::new(pat)),
                });
            }
        };

        loop {
            match self.peek() {
                None => return Err(self.error("unexpected end of pattern (missing '}')")),
                Some(Tok::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::Keyword(k)) if k == "FILTER" => {
                    self.pos += 1;
                    self.expect(Tok::LParen)?;
                    let expr = self.parse_expr()?;
                    self.expect(Tok::RParen)?;
                    filters.push(expr);
                }
                Some(Tok::Keyword(k)) if k == "OPTIONAL" => {
                    self.pos += 1;
                    self.expect(Tok::LBrace)?;
                    let inner = self.parse_group(false)?;
                    flush_bgp(&mut acc, &mut bgp);
                    let lhs = acc.take().unwrap_or(GraphPattern::Bgp(vec![]));
                    acc = Some(GraphPattern::Optional(Box::new(lhs), Box::new(inner)));
                }
                Some(Tok::LBrace) => {
                    self.pos += 1;
                    let mut sub = self.parse_group(false)?;
                    while self.eat_keyword("UNION") {
                        self.expect(Tok::LBrace)?;
                        let rhs = self.parse_group(false)?;
                        sub = GraphPattern::Union(Box::new(sub), Box::new(rhs));
                    }
                    flush_bgp(&mut acc, &mut bgp);
                    acc = Some(match acc.take() {
                        None => sub,
                        Some(prev) => GraphPattern::Join(Box::new(prev), Box::new(sub)),
                    });
                }
                _ => {
                    self.parse_triples_into(&mut bgp)?;
                }
            }
        }
        flush_bgp(&mut acc, &mut bgp);
        let mut pattern = acc.unwrap_or(GraphPattern::Bgp(vec![]));
        for f in filters {
            pattern = GraphPattern::Filter(f, Box::new(pattern));
        }
        Ok(pattern)
    }

    fn parse_triples_into(&mut self, bgp: &mut Vec<PatternTriple>) -> Result<(), SparqlError> {
        let subject = self.parse_node()?;
        if let NodeRef::Term(t) = &subject {
            if !t.is_subject_capable() {
                return Err(self.error("literal in subject position"));
            }
        }
        loop {
            let predicate = self.parse_verb()?;
            loop {
                let object = self.parse_node()?;
                bgp.push(PatternTriple {
                    s: subject.clone(),
                    p: predicate.clone(),
                    o: object,
                });
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            match self.peek() {
                Some(Tok::Semicolon) => {
                    self.pos += 1;
                    // A dangling semicolon before '.' or '}' is tolerated.
                    if matches!(self.peek(), Some(Tok::Dot) | Some(Tok::RBrace)) {
                        break;
                    }
                }
                _ => break,
            }
        }
        // The final '.' in a group is optional.
        if self.peek() == Some(&Tok::Dot) {
            self.pos += 1;
        }
        Ok(())
    }

    /// Parses the verb position: a variable, a plain predicate IRI, or a
    /// property path. A path that is just one IRI collapses to a plain
    /// predicate node.
    fn parse_verb(&mut self) -> Result<Verb, SparqlError> {
        if let Some(Tok::Var(name)) = self.peek() {
            let v = Verb::Node(NodeRef::Var(Var::new(name.clone())));
            self.pos += 1;
            return Ok(v);
        }
        let path = self.parse_path_alt()?;
        Ok(match path {
            PathExpr::Iri(term) => Verb::Node(NodeRef::Term(term)),
            other => Verb::Path(other),
        })
    }

    // Property-path grammar:
    //   path_alt  := path_seq ('|' path_seq)*
    //   path_seq  := path_elt ('/' path_elt)*
    //   path_elt  := '^'? path_primary ('*' | '+' | '?')?
    //   primary   := iri | pname | 'a' | '(' path_alt ')'

    fn parse_path_alt(&mut self) -> Result<PathExpr, SparqlError> {
        let mut lhs = self.parse_path_seq()?;
        while self.peek() == Some(&Tok::Pipe) {
            self.pos += 1;
            let rhs = self.parse_path_seq()?;
            lhs = PathExpr::Alt(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_path_seq(&mut self) -> Result<PathExpr, SparqlError> {
        let mut lhs = self.parse_path_elt()?;
        while self.peek() == Some(&Tok::Slash) {
            self.pos += 1;
            let rhs = self.parse_path_elt()?;
            lhs = PathExpr::Seq(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_path_elt(&mut self) -> Result<PathExpr, SparqlError> {
        let inverse = if self.peek() == Some(&Tok::Caret) {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut path = self.parse_path_primary()?;
        match self.peek() {
            Some(Tok::Star) => {
                self.pos += 1;
                path = PathExpr::ZeroOrMore(Box::new(path));
            }
            Some(Tok::Plus) => {
                self.pos += 1;
                path = PathExpr::OneOrMore(Box::new(path));
            }
            Some(Tok::Question) => {
                self.pos += 1;
                path = PathExpr::ZeroOrOne(Box::new(path));
            }
            _ => {}
        }
        if inverse {
            path = PathExpr::Inverse(Box::new(path));
        }
        Ok(path)
    }

    fn parse_path_primary(&mut self) -> Result<PathExpr, SparqlError> {
        match self.bump() {
            Some(Tok::Iri(iri)) => Ok(PathExpr::Iri(Term::iri(iri))),
            Some(Tok::PName(p, l)) => {
                Ok(PathExpr::Iri(Term::iri(self.resolve_pname(&p, &l)?)))
            }
            Some(Tok::A) => Ok(PathExpr::Iri(Term::iri(vocab::rdf::TYPE))),
            Some(Tok::LParen) => {
                let inner = self.parse_path_alt()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            other => Err(self.error(format!("expected predicate or path, got {other:?}"))),
        }
    }

    fn parse_node(&mut self) -> Result<NodeRef, SparqlError> {
        match self.bump() {
            Some(Tok::Var(name)) => Ok(NodeRef::Var(Var::new(name))),
            Some(Tok::Iri(iri)) => Ok(NodeRef::Term(Term::iri(iri))),
            Some(Tok::PName(p, l)) => Ok(NodeRef::Term(Term::iri(self.resolve_pname(&p, &l)?))),
            Some(Tok::A) => Ok(NodeRef::Term(Term::iri(vocab::rdf::TYPE))),
            Some(Tok::Literal { lexical, lang, datatype }) => Ok(NodeRef::Term(match (lang, datatype) {
                (Some(tag), None) => Term::lang(lexical, tag),
                (None, Some(dt)) => Term::typed(lexical, dt),
                _ => Term::plain(lexical),
            })),
            Some(Tok::Integer(n)) => Ok(NodeRef::Term(Term::integer(n))),
            other => Err(self.error(format!("expected term or variable, got {other:?}"))),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, SparqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, SparqlError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, SparqlError> {
        let mut lhs = self.parse_comparison()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.pos += 1;
            let rhs = self.parse_comparison()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_comparison(&mut self) -> Result<Expr, SparqlError> {
        let lhs = self.parse_unary()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(Tok::Eq),
            Some(Tok::Ne) => Some(Tok::Ne),
            Some(Tok::Lt) => Some(Tok::Lt),
            Some(Tok::Le) => Some(Tok::Le),
            Some(Tok::Gt) => Some(Tok::Gt),
            Some(Tok::Ge) => Some(Tok::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.parse_unary()?;
            let (l, r) = (Box::new(lhs), Box::new(rhs));
            Ok(match op {
                Tok::Eq => Expr::Eq(l, r),
                Tok::Ne => Expr::Ne(l, r),
                Tok::Lt => Expr::Lt(l, r),
                Tok::Le => Expr::Le(l, r),
                Tok::Gt => Expr::Gt(l, r),
                Tok::Ge => Expr::Ge(l, r),
                _ => unreachable!(),
            })
        } else {
            Ok(lhs)
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, SparqlError> {
        if self.peek() == Some(&Tok::Bang) {
            self.pos += 1;
            let inner = self.parse_unary()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, SparqlError> {
        match self.peek().cloned() {
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            Some(Tok::Var(name)) => {
                self.pos += 1;
                Ok(Expr::Var(Var::new(name)))
            }
            Some(Tok::Keyword(k)) if k == "REGEX" => {
                self.pos += 1;
                self.expect(Tok::LParen)?;
                let target = self.parse_expr()?;
                self.expect(Tok::Comma)?;
                let pattern = match self.bump() {
                    Some(Tok::Literal { lexical, .. }) => lexical,
                    other => {
                        return Err(self.error(format!("expected pattern string, got {other:?}")))
                    }
                };
                let flags = if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                    match self.bump() {
                        Some(Tok::Literal { lexical, .. }) => lexical,
                        other => {
                            return Err(self.error(format!("expected flags string, got {other:?}")))
                        }
                    }
                } else {
                    String::new()
                };
                self.expect(Tok::RParen)?;
                Ok(Expr::Regex { target: Box::new(target), pattern, flags })
            }
            Some(Tok::Keyword(k)) if k == "BOUND" => {
                self.pos += 1;
                self.expect(Tok::LParen)?;
                let var = match self.bump() {
                    Some(Tok::Var(name)) => Var::new(name),
                    other => return Err(self.error(format!("expected variable, got {other:?}"))),
                };
                self.expect(Tok::RParen)?;
                Ok(Expr::Bound(var))
            }
            Some(Tok::Keyword(k)) if k == "EXISTS" => {
                self.pos += 1;
                self.expect(Tok::LBrace)?;
                let inner = self.parse_group(false)?;
                Ok(Expr::Exists(Box::new(inner)))
            }
            Some(Tok::Keyword(k)) if k == "NOT" => {
                self.pos += 1;
                self.expect_keyword("EXISTS")?;
                self.expect(Tok::LBrace)?;
                let inner = self.parse_group(false)?;
                Ok(Expr::NotExists(Box::new(inner)))
            }
            Some(Tok::Keyword(k)) if k == "STR" => {
                self.pos += 1;
                self.expect(Tok::LParen)?;
                let inner = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::Str(Box::new(inner)))
            }
            Some(Tok::Iri(iri)) => {
                self.pos += 1;
                Ok(Expr::Const(Term::iri(iri)))
            }
            Some(Tok::PName(p, l)) => {
                self.pos += 1;
                Ok(Expr::Const(Term::iri(self.resolve_pname(&p, &l)?)))
            }
            Some(Tok::Literal { lexical, lang, datatype }) => {
                self.pos += 1;
                Ok(Expr::Const(match (lang, datatype) {
                    (Some(tag), None) => Term::lang(lexical, tag),
                    (None, Some(dt)) => Term::typed(lexical, dt),
                    _ => Term::plain(lexical),
                }))
            }
            Some(Tok::Integer(n)) => {
                self.pos += 1;
                Ok(Expr::Const(Term::integer(n)))
            }
            other => Err(self.error(format!("expected expression, got {other:?}"))),
        }
    }
}

// Check `peek2` is used (kept for lookahead-needing future productions).
#[allow(dead_code)]
fn _silence(_p: &Parser) {
    let _ = _p.peek2();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let q = parse("SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        assert_eq!(q.output_columns(), vec!["s"]);
        assert!(!q.distinct);
        match &q.pattern {
            GraphPattern::Bgp(ts) => assert_eq!(ts.len(), 1),
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn select_star() {
        let q = parse("SELECT * WHERE { ?s ?p ?o . }").unwrap();
        assert_eq!(q.output_columns(), vec!["s", "p", "o"]);
    }

    #[test]
    fn prefixes_and_a() {
        let q = parse(
            "PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>\n\
             SELECT ?x WHERE { ?x a dm:Application1_Item }",
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Bgp(ts) => {
                assert_eq!(
                    ts[0].p,
                    Verb::iri(Term::iri(vocab::rdf::TYPE))
                );
                assert_eq!(
                    ts[0].o,
                    NodeRef::Term(Term::iri(
                        "http://www.credit-suisse.com/dwh/mdm/data_modeling#Application1_Item"
                    ))
                );
            }
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn undefined_prefix_error() {
        assert_eq!(
            parse("SELECT ?x WHERE { ?x a dm:Thing }").unwrap_err(),
            SparqlError::UndefinedPrefix("dm".into())
        );
    }

    #[test]
    fn semicolon_comma_lists() {
        let q = parse(
            "PREFIX ex: <http://ex.org/>\n\
             SELECT ?x WHERE { ?x ex:p ex:a , ex:b ; ex:q ?y . }",
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Bgp(ts) => assert_eq!(ts.len(), 3),
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn filter_regex_listing1_style() {
        // The shape of Listing 1's filter.
        let q = parse(
            "PREFIX dm: <http://cs.com/dm#>\n\
             SELECT ?class ?object WHERE {\n\
               ?object a ?c .\n\
               ?c <http://www.w3.org/2000/01/rdf-schema#label> ?class .\n\
               ?object dm:hasName ?term .\n\
               FILTER(regex(?term, \"customer\", \"i\"))\n\
             } GROUP BY ?class ?object",
        )
        .unwrap();
        assert!(q.is_aggregate());
        match &q.pattern {
            GraphPattern::Filter(Expr::Regex { pattern, flags, .. }, inner) => {
                assert_eq!(pattern, "customer");
                assert_eq!(flags, "i");
                match inner.as_ref() {
                    GraphPattern::Bgp(ts) => assert_eq!(ts.len(), 3),
                    other => panic!("expected BGP, got {other:?}"),
                }
            }
            other => panic!("expected Filter, got {other:?}"),
        }
    }

    #[test]
    fn count_aggregate() {
        let q = parse(
            "SELECT ?class (COUNT(?object) AS ?n) WHERE { ?object a ?class } GROUP BY ?class",
        )
        .unwrap();
        assert_eq!(q.output_columns(), vec!["class", "n"]);
        assert_eq!(q.group_by, vec![Var::new("class")]);
    }

    #[test]
    fn count_star_distinct() {
        let q = parse(
            "SELECT (COUNT(DISTINCT ?x) AS ?n) WHERE { ?x ?p ?o }",
        )
        .unwrap();
        match &q.selection {
            Selection::Items(items) => {
                assert!(matches!(
                    &items[0],
                    SelectItem::Count { distinct: true, var: Some(_), .. }
                ));
            }
            other => panic!("expected items, got {other:?}"),
        }
    }

    #[test]
    fn optional_pattern() {
        let q = parse(
            "SELECT ?x ?lbl WHERE { ?x a ?c OPTIONAL { ?x <http://l> ?lbl } }",
        )
        .unwrap();
        assert!(matches!(q.pattern, GraphPattern::Optional(_, _)));
    }

    #[test]
    fn union_pattern() {
        let q = parse(
            "SELECT ?x WHERE { { ?x a <http://A> } UNION { ?x a <http://B> } }",
        )
        .unwrap();
        assert!(matches!(q.pattern, GraphPattern::Union(_, _)));
    }

    #[test]
    fn order_limit_offset() {
        let q = parse(
            "SELECT ?x WHERE { ?x ?p ?o } ORDER BY DESC(?x) LIMIT 10 OFFSET 5",
        )
        .unwrap();
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].ascending);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
    }

    #[test]
    fn distinct_flag() {
        let q = parse("SELECT DISTINCT ?x WHERE { ?x ?p ?o }").unwrap();
        assert!(q.distinct);
    }

    #[test]
    fn comparison_operators_vs_iri_brackets() {
        let q = parse(
            "SELECT ?x WHERE { ?x <http://ex.org/age> ?age FILTER(?age >= 18 && ?age < 65) }",
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Filter(Expr::And(l, r), _) => {
                assert!(matches!(**l, Expr::Ge(_, _)));
                assert!(matches!(**r, Expr::Lt(_, _)));
            }
            other => panic!("expected And filter, got {other:?}"),
        }
    }

    #[test]
    fn bound_and_not() {
        let q = parse(
            "SELECT ?x WHERE { ?x a ?c OPTIONAL { ?x <http://l> ?lbl } FILTER(!bound(?lbl)) }",
        )
        .unwrap();
        assert!(matches!(q.pattern, GraphPattern::Filter(Expr::Not(_), _)));
    }

    #[test]
    fn parse_errors_reported_with_line() {
        let err = parse("SELECT ?x\nWHERE { ?x ?p }").unwrap_err();
        match err {
            SparqlError::Parse { line, column, .. } => {
                // The incomplete triple is noticed at the closing brace.
                assert_eq!(line, 2);
                assert_eq!(column, 15);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn positions_survive_multi_line_literals() {
        // The literal body spans a line break; the error after it must
        // still be anchored on the right line and column.
        let err = parse("SELECT ?x WHERE { ?x <http://p> \"two\nlines\" ?extra }").unwrap_err();
        match err {
            SparqlError::Parse { line, column, .. } => {
                // The dangling `?extra` subject has no verb: the error is
                // noticed at the closing brace on line 2 — under the old
                // line-only counter this reported line 1.
                assert_eq!((line, column), (2, 15));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn lexer_errors_carry_columns() {
        let err = parse("SELECT ?x WHERE { ?x @p ?o }").unwrap_err();
        match err {
            SparqlError::Parse { line, column, message } => {
                assert_eq!((line, column), (1, 22));
                assert!(message.contains("unexpected character"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_literal_subject() {
        assert!(parse("SELECT ?x WHERE { \"lit\" ?p ?x }").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("SELECT ?x WHERE { ?x ?p ?o } LIMIT 5 LIMIT").is_err());
    }

    #[test]
    fn ask_form() {
        let q = parse("ASK WHERE { ?x a <http://C> }").unwrap();
        assert!(q.ask);
        assert_eq!(q.output_columns(), vec!["ask"]);
        // WHERE is optional for ASK.
        let q = parse("ASK { ?x a <http://C> }").unwrap();
        assert!(q.ask);
        // ASK with a SELECT list is malformed.
        assert!(parse("ASK ?x WHERE { ?x a <http://C> }").is_err());
    }

    #[test]
    fn comments_in_query() {
        let q = parse(
            "# find everything\nSELECT ?x WHERE { ?x ?p ?o } # trailing",
        )
        .unwrap();
        assert_eq!(q.output_columns(), vec!["x"]);
    }

    #[test]
    fn typed_and_lang_literals_in_pattern() {
        let q = parse(
            "SELECT ?x WHERE { ?x <http://p> \"100\"^^<http://www.w3.org/2001/XMLSchema#integer> . ?x <http://q> \"de\"@de }",
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Bgp(ts) => {
                assert_eq!(ts[0].o, NodeRef::Term(Term::integer(100)));
                assert_eq!(ts[1].o, NodeRef::Term(Term::lang("de", "de")));
            }
            other => panic!("expected BGP, got {other:?}"),
        }
    }
}
