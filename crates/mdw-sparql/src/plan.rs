//! Logical query plans: the layer between the parsed AST and the executor.
//!
//! A [`QueryPlan`] mirrors the [`GraphPattern`] tree, but every basic
//! graph pattern carries an explicit execution order, a per-pattern
//! cardinality estimate, pushed-down filter conjuncts, and a stable unit
//! id under which the executor records actual row counts. Plans come from
//! two builders:
//!
//! * [`QueryPlan::naive`] — the patterns in written order, no filter
//!   pushdown (the `--no-planner` baseline), and
//! * [`crate::optimize::plan`] — the cost-based optimizer, which ranks
//!   patterns by frozen-index selectivity statistics.
//!
//! After execution, [`ExplainReport::from_plan`] pairs the plan's
//! estimates with the observed cardinalities — the `--explain` output.

use std::fmt::Write as _;

use crate::ast::{Expr, GraphPattern, NodeRef, PathExpr, PatternTriple, Verb};
use mdw_rdf::term::Term;

/// Sentinel unit id for plan nodes whose actual-row counts are not
/// tracked (EXISTS/NOT EXISTS sub-plans).
pub const UNTRACKED: usize = usize::MAX;

/// One triple pattern (or property path) of a BGP, in execution order.
#[derive(Debug, Clone)]
pub struct PlannedUnit {
    /// The pattern as written in the query.
    pub triple: PatternTriple,
    /// Zero-based position of this pattern in the query text's BGP.
    pub written_index: usize,
    /// The planner's estimated match count (0 for naive plans).
    pub estimated_rows: usize,
    /// Slot in the executor's actual-row counters, or [`UNTRACKED`].
    pub id: usize,
    /// Filter conjuncts pushed to this unit: every variable they mention
    /// is bound once this unit extends a binding, so they evaluate here,
    /// dropping doomed bindings before deeper patterns expand them.
    pub filters: Vec<Expr>,
}

/// A basic graph pattern with a chosen execution order.
#[derive(Debug, Clone)]
pub struct BgpPlan {
    /// The units, first-executed first.
    pub units: Vec<PlannedUnit>,
}

/// A logical plan node; the shape mirrors [`GraphPattern`].
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// An ordered basic graph pattern.
    Bgp(BgpPlan),
    /// Left then right, bindings threaded through.
    Join(Box<PlanNode>, Box<PlanNode>),
    /// Left kept even when right finds nothing.
    Optional(Box<PlanNode>, Box<PlanNode>),
    /// Both arms over the same input.
    Union(Box<PlanNode>, Box<PlanNode>),
    /// Residual filter conjuncts that could not be pushed into a BGP.
    Filter(Expr, Box<PlanNode>),
}

/// A complete plan for one query pattern.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The plan tree.
    pub root: PlanNode,
    /// Number of tracked units — the size of the executor's actual-row
    /// counter table.
    pub unit_count: usize,
    /// Whether the cost-based optimizer produced this plan.
    pub planner_used: bool,
    /// Filter conjuncts pushed into BGP units.
    pub filters_pushed: usize,
}

impl QueryPlan {
    /// The written-order plan: patterns exactly as the query text lists
    /// them, no filter pushdown, no estimates. This is the `--no-planner`
    /// baseline and the reference semantics the differential suite holds
    /// the optimizer to.
    pub fn naive(pattern: &GraphPattern) -> QueryPlan {
        let mut next_id = 0;
        let root = naive_node(pattern, &mut next_id);
        QueryPlan { root, unit_count: next_id, planner_used: false, filters_pushed: 0 }
    }
}

fn naive_node(pattern: &GraphPattern, next_id: &mut usize) -> PlanNode {
    match pattern {
        GraphPattern::Bgp(triples) => PlanNode::Bgp(BgpPlan {
            units: triples
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let id = *next_id;
                    *next_id += 1;
                    PlannedUnit {
                        triple: t.clone(),
                        written_index: i,
                        estimated_rows: 0,
                        id,
                        filters: Vec::new(),
                    }
                })
                .collect(),
        }),
        GraphPattern::Join(a, b) => PlanNode::Join(
            Box::new(naive_node(a, next_id)),
            Box::new(naive_node(b, next_id)),
        ),
        GraphPattern::Optional(a, b) => PlanNode::Optional(
            Box::new(naive_node(a, next_id)),
            Box::new(naive_node(b, next_id)),
        ),
        GraphPattern::Union(a, b) => PlanNode::Union(
            Box::new(naive_node(a, next_id)),
            Box::new(naive_node(b, next_id)),
        ),
        GraphPattern::Filter(expr, inner) => {
            PlanNode::Filter(expr.clone(), Box::new(naive_node(inner, next_id)))
        }
    }
}

/// Marks every unit of a plan tree [`UNTRACKED`] — used for EXISTS
/// sub-plans, which do not participate in the explain counters.
pub fn untrack(node: &mut PlanNode) {
    match node {
        PlanNode::Bgp(bgp) => {
            for u in &mut bgp.units {
                u.id = UNTRACKED;
            }
        }
        PlanNode::Join(a, b) | PlanNode::Optional(a, b) | PlanNode::Union(a, b) => {
            untrack(a);
            untrack(b);
        }
        PlanNode::Filter(_, inner) => untrack(inner),
    }
}

/// One pattern's row in the explain output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainEntry {
    /// The pattern, rendered back to SPARQL-ish text.
    pub pattern: String,
    /// Position of the pattern in the query text's BGP.
    pub written_index: usize,
    /// The planner's estimate (0 under `--no-planner`).
    pub estimated_rows: usize,
    /// Bindings this pattern actually produced during execution.
    pub actual_rows: u64,
    /// Filter conjuncts evaluated at this unit.
    pub filters_pushed: usize,
}

/// One BGP's explain rows, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainBgp {
    /// The entries, first-executed first.
    pub entries: Vec<ExplainEntry>,
}

/// The chosen plan plus estimated-vs-actual cardinalities of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainReport {
    /// Whether the cost-based optimizer chose the order.
    pub planner_used: bool,
    /// Filter conjuncts pushed into BGP units.
    pub filters_pushed: usize,
    /// The query's BGPs in plan pre-order.
    pub bgps: Vec<ExplainBgp>,
}

impl ExplainReport {
    /// Builds the report from an executed plan and the executor's
    /// actual-row counters (indexed by unit id).
    pub fn from_plan(plan: &QueryPlan, actuals: &[u64]) -> ExplainReport {
        let mut bgps = Vec::new();
        collect_bgps(&plan.root, actuals, &mut bgps);
        ExplainReport {
            planner_used: plan.planner_used,
            filters_pushed: plan.filters_pushed,
            bgps,
        }
    }

    /// Total patterns across all BGPs.
    pub fn pattern_count(&self) -> usize {
        self.bgps.iter().map(|b| b.entries.len()).sum()
    }

    /// True when the chosen order differs from the written order in at
    /// least one BGP.
    pub fn reordered(&self) -> bool {
        self.bgps
            .iter()
            .any(|b| b.entries.iter().enumerate().any(|(i, e)| e.written_index != i))
    }

    /// A one-line summary for log lines and stream trailers, e.g.
    /// `planner=cost-based pushed=1 order=[1,0]`.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "planner={} pushed={}",
            if self.planner_used { "cost-based" } else { "written-order" },
            self.filters_pushed
        );
        for bgp in &self.bgps {
            let order: Vec<String> =
                bgp.entries.iter().map(|e| e.written_index.to_string()).collect();
            let _ = write!(out, " order=[{}]", order.join(","));
        }
        out
    }

    /// Renders the full report as indented plain text (the CLI's
    /// `--explain` output).
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "plan: {} ({} filter conjunct{} pushed)\n",
            if self.planner_used { "cost-based" } else { "written order (--no-planner)" },
            self.filters_pushed,
            if self.filters_pushed == 1 { "" } else { "s" },
        );
        for (i, bgp) in self.bgps.iter().enumerate() {
            let _ = writeln!(out, "  BGP {}:", i + 1);
            for (step, e) in bgp.entries.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "    {}. {}  [written #{}] est={} actual={}{}",
                    step + 1,
                    e.pattern,
                    e.written_index + 1,
                    e.estimated_rows,
                    e.actual_rows,
                    if e.filters_pushed > 0 {
                        format!(" filters={}", e.filters_pushed)
                    } else {
                        String::new()
                    },
                );
            }
        }
        out
    }
}

fn collect_bgps(node: &PlanNode, actuals: &[u64], out: &mut Vec<ExplainBgp>) {
    match node {
        PlanNode::Bgp(bgp) => {
            if bgp.units.is_empty() {
                return;
            }
            out.push(ExplainBgp {
                entries: bgp
                    .units
                    .iter()
                    .map(|u| ExplainEntry {
                        pattern: render_triple(&u.triple),
                        written_index: u.written_index,
                        estimated_rows: u.estimated_rows,
                        actual_rows: actuals.get(u.id).copied().unwrap_or(0),
                        filters_pushed: u.filters.len(),
                    })
                    .collect(),
            });
        }
        PlanNode::Join(a, b) | PlanNode::Optional(a, b) | PlanNode::Union(a, b) => {
            collect_bgps(a, actuals, out);
            collect_bgps(b, actuals, out);
        }
        PlanNode::Filter(_, inner) => collect_bgps(inner, actuals, out),
    }
}

/// Renders a pattern triple back to compact SPARQL-ish text.
pub fn render_triple(t: &PatternTriple) -> String {
    let verb = match &t.p {
        Verb::Node(n) => render_node(n),
        Verb::Path(p) => render_path(p),
    };
    format!("{} {} {}", render_node(&t.s), verb, render_node(&t.o))
}

fn render_node(n: &NodeRef) -> String {
    match n {
        NodeRef::Var(v) => format!("?{}", v.0),
        NodeRef::Term(t) => render_term(t),
    }
}

fn render_term(t: &Term) -> String {
    match t {
        Term::Iri(i) => format!("<{i}>"),
        Term::BlankNode(b) => format!("_:{b}"),
        Term::Literal(l) => format!("{:?}", l.lexical),
    }
}

fn render_path(p: &PathExpr) -> String {
    match p {
        PathExpr::Iri(t) => render_term(t),
        PathExpr::Inverse(i) => format!("^{}", render_path(i)),
        PathExpr::Seq(a, b) => format!("({}/{})", render_path(a), render_path(b)),
        PathExpr::Alt(a, b) => format!("({}|{})", render_path(a), render_path(b)),
        PathExpr::ZeroOrMore(i) => format!("{}*", render_path(i)),
        PathExpr::OneOrMore(i) => format!("{}+", render_path(i)),
        PathExpr::ZeroOrOne(i) => format!("{}?", render_path(i)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn pattern_of(q: &str) -> GraphPattern {
        parse(q).unwrap().pattern
    }

    #[test]
    fn naive_plan_preserves_written_order() {
        let p = pattern_of(
            "SELECT ?x WHERE { ?x <hasName> ?n . ?x a <Customer> . ?n <p> ?y }",
        );
        let plan = QueryPlan::naive(&p);
        assert_eq!(plan.unit_count, 3);
        assert!(!plan.planner_used);
        assert_eq!(plan.filters_pushed, 0);
        let PlanNode::Bgp(bgp) = &plan.root else { panic!("expected BGP root") };
        let written: Vec<usize> = bgp.units.iter().map(|u| u.written_index).collect();
        assert_eq!(written, vec![0, 1, 2]);
        let ids: Vec<usize> = bgp.units.iter().map(|u| u.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn naive_plan_keeps_filters_at_their_node() {
        let p = pattern_of("SELECT ?x WHERE { ?x <hasAge> ?a FILTER(?a > 30) }");
        let plan = QueryPlan::naive(&p);
        let PlanNode::Filter(_, inner) = &plan.root else { panic!("expected Filter root") };
        let PlanNode::Bgp(bgp) = inner.as_ref() else { panic!("expected BGP inner") };
        assert!(bgp.units[0].filters.is_empty());
    }

    #[test]
    fn untrack_strips_every_unit_id() {
        let p = pattern_of(
            "SELECT ?x WHERE { { ?x <p> ?y } UNION { ?x <q> ?y . ?y <r> ?z } }",
        );
        let mut plan = QueryPlan::naive(&p);
        untrack(&mut plan.root);
        fn check(node: &PlanNode) {
            match node {
                PlanNode::Bgp(b) => assert!(b.units.iter().all(|u| u.id == UNTRACKED)),
                PlanNode::Join(a, b) | PlanNode::Optional(a, b) | PlanNode::Union(a, b) => {
                    check(a);
                    check(b);
                }
                PlanNode::Filter(_, inner) => check(inner),
            }
        }
        check(&plan.root);
    }

    #[test]
    fn explain_report_renders_patterns_and_counts() {
        let p = pattern_of("SELECT ?x WHERE { ?x a <Customer> . ?x <hasName> ?n }");
        let plan = QueryPlan::naive(&p);
        let report = ExplainReport::from_plan(&plan, &[2, 5]);
        assert_eq!(report.bgps.len(), 1);
        assert_eq!(report.pattern_count(), 2);
        assert!(!report.reordered());
        let entries = &report.bgps[0].entries;
        assert_eq!(entries[0].actual_rows, 2);
        assert_eq!(entries[1].actual_rows, 5);
        assert!(entries[1].pattern.contains("<hasName>"));
        let text = report.to_text();
        assert!(text.contains("written order"));
        assert!(text.contains("actual=5"));
        assert!(report.summary().contains("order=[0,1]"));
    }
}
