//! A small backtracking regular-expression engine.
//!
//! The paper's search filters results with Oracle's
//! `regexp_like(term, 'customer', 'i')`; SPARQL has the equivalent
//! `FILTER regex(?term, "customer", "i")`. The allowed dependency set has no
//! regex crate, so this module implements the practical subset those filters
//! need:
//!
//! * literal characters, `.` (any char),
//! * postfix `*`, `+`, `?` (greedy, with backtracking),
//! * alternation `|` and groups `(…)` (non-capturing semantics),
//! * character classes `[abc]`, ranges `[a-z]`, negation `[^…]`,
//! * anchors `^` and `$`,
//! * escapes `\.` `\\` `\d` `\w` `\s` (and their literal forms),
//! * the `i` (case-insensitive) flag.
//!
//! Matching is *unanchored* (like `regexp_like`): the pattern may match any
//! substring unless anchored explicitly.

use std::fmt;

/// A regex parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte offset in the pattern where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for RegexError {}

/// One node of the parsed pattern.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    /// A literal character (already case-folded if insensitive).
    Char(char),
    /// `.` — any single character.
    AnyChar,
    /// A character class.
    Class { negated: bool, items: Vec<ClassItem> },
    /// `^`.
    StartAnchor,
    /// `$`.
    EndAnchor,
    /// A sequence of nodes.
    Concat(Vec<Node>),
    /// `a|b|…`.
    Alt(Vec<Node>),
    /// `x*` / `x+` / `x?`.
    Repeat { node: Box<Node>, min: u32, max: Option<u32> },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ClassItem {
    Char(char),
    Range(char, char),
    Digit,
    Word,
    Space,
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    root: Node,
    case_insensitive: bool,
    pattern: String,
}

impl Regex {
    /// Compiles a pattern with flags. Recognized flags: `i`
    /// (case-insensitive); unknown flags are rejected.
    pub fn with_flags(pattern: &str, flags: &str) -> Result<Self, RegexError> {
        let mut case_insensitive = false;
        for f in flags.chars() {
            match f {
                'i' => case_insensitive = true,
                other => {
                    return Err(RegexError {
                        at: 0,
                        message: format!("unsupported flag: {other}"),
                    })
                }
            }
        }
        let mut parser = PatternParser {
            chars: pattern.char_indices().collect(),
            pos: 0,
        };
        let root = parser.parse_alt()?;
        if parser.pos != parser.chars.len() {
            return Err(RegexError {
                at: parser.offset(),
                message: "unexpected trailing characters".to_string(),
            });
        }
        Ok(Regex {
            root,
            case_insensitive,
            pattern: pattern.to_string(),
        })
    }

    /// Compiles a pattern with no flags.
    pub fn new(pattern: &str) -> Result<Self, RegexError> {
        Self::with_flags(pattern, "")
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Unanchored match: does the pattern match anywhere in `text`?
    pub fn is_match(&self, text: &str) -> bool {
        self.try_is_match(text, u64::MAX)
            .expect("unbounded match cannot run out of fuel")
    }

    /// [`Regex::is_match`] with a backtracking-step bound: returns `None`
    /// when the matcher would need more than `max_steps` node visits —
    /// the caller treats that as a tripped query budget instead of letting
    /// a pathological pattern (catastrophic backtracking) hang the service.
    pub fn try_is_match(&self, text: &str, max_steps: u64) -> Option<bool> {
        let chars: Vec<char> = if self.case_insensitive {
            text.chars().flat_map(|c| c.to_lowercase()).collect()
        } else {
            text.chars().collect()
        };
        let fuel = Fuel { remaining: std::cell::Cell::new(max_steps) };
        // Try every start position (unanchored semantics). A leading ^ makes
        // non-zero starts fail immediately via the anchor check.
        for start in 0..=chars.len() {
            if match_node(&self.root, &chars, start, self.case_insensitive, &fuel, &mut |_| true) {
                return Some(true);
            }
            if fuel.exhausted() {
                return None;
            }
        }
        Some(false)
    }
}

/// A backtracking-step allowance. When it runs dry every in-flight match
/// attempt fails fast and the search reports exhaustion instead of an
/// answer.
struct Fuel {
    remaining: std::cell::Cell<u64>,
}

impl Fuel {
    /// Burns one step; `false` once the allowance is gone.
    fn tick(&self) -> bool {
        let left = self.remaining.get();
        if left == 0 {
            return false;
        }
        self.remaining.set(left - 1);
        true
    }

    fn exhausted(&self) -> bool {
        self.remaining.get() == 0
    }
}

/// Attempts to match `node` at position `pos`; on success calls `k`
/// (the continuation) with the position after the match. Backtracking falls
/// out of trying continuations in order.
fn match_node(
    node: &Node,
    text: &[char],
    pos: usize,
    ci: bool,
    fuel: &Fuel,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    if !fuel.tick() {
        return false;
    }
    match node {
        Node::Char(c) => {
            let want = if ci { fold(*c) } else { *c };
            if pos < text.len() && text[pos] == want {
                k(pos + 1)
            } else {
                false
            }
        }
        Node::AnyChar => pos < text.len() && k(pos + 1),
        Node::Class { negated, items } => {
            if pos >= text.len() {
                return false;
            }
            let c = text[pos];
            let mut hit = items.iter().any(|item| class_item_matches(*item, c, ci));
            if *negated {
                hit = !hit;
            }
            hit && k(pos + 1)
        }
        Node::StartAnchor => pos == 0 && k(pos),
        Node::EndAnchor => pos == text.len() && k(pos),
        Node::Concat(nodes) => match_seq(nodes, text, pos, ci, fuel, k),
        Node::Alt(branches) => branches
            .iter()
            .any(|b| match_node(b, text, pos, ci, fuel, k)),
        Node::Repeat { node, min, max } => {
            match_repeat(node, *min, *max, text, pos, ci, fuel, 0, k)
        }
    }
}

fn match_seq(
    nodes: &[Node],
    text: &[char],
    pos: usize,
    ci: bool,
    fuel: &Fuel,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    match nodes.split_first() {
        None => k(pos),
        Some((first, rest)) => match_node(first, text, pos, ci, fuel, &mut |next| {
            match_seq(rest, text, next, ci, fuel, k)
        }),
    }
}

#[allow(clippy::too_many_arguments)]
fn match_repeat(
    node: &Node,
    min: u32,
    max: Option<u32>,
    text: &[char],
    pos: usize,
    ci: bool,
    fuel: &Fuel,
    done: u32,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    // Greedy: try one more repetition first, then the continuation.
    let can_repeat = max.is_none_or(|m| done < m);
    if can_repeat {
        let matched = match_node(node, text, pos, ci, fuel, &mut |next| {
            // Zero-width protection: a repetition that consumed nothing
            // cannot usefully repeat again.
            if next == pos {
                done + 1 >= min && k(next)
            } else {
                match_repeat(node, min, max, text, next, ci, fuel, done + 1, k)
            }
        });
        if matched {
            return true;
        }
    }
    done >= min && k(pos)
}

fn class_item_matches(item: ClassItem, c: char, ci: bool) -> bool {
    let c = if ci { fold(c) } else { c };
    match item {
        ClassItem::Char(x) => c == if ci { fold(x) } else { x },
        ClassItem::Range(lo, hi) => {
            if ci {
                let (lo, hi) = (fold(lo), fold(hi));
                c >= lo && c <= hi
            } else {
                c >= lo && c <= hi
            }
        }
        ClassItem::Digit => c.is_ascii_digit(),
        ClassItem::Word => c.is_alphanumeric() || c == '_',
        ClassItem::Space => c.is_whitespace(),
    }
}

fn fold(c: char) -> char {
    c.to_lowercase().next().unwrap_or(c)
}

struct PatternParser {
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl PatternParser {
    fn offset(&self) -> usize {
        self.chars.get(self.pos).map(|(o, _)| *o).unwrap_or_else(|| {
            self.chars.last().map(|(o, c)| o + c.len_utf8()).unwrap_or(0)
        })
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|(_, c)| *c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn error(&self, message: impl Into<String>) -> RegexError {
        RegexError { at: self.offset(), message: message.into() }
    }

    fn parse_alt(&mut self) -> Result<Node, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Node::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Node, RegexError> {
        let mut nodes = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            nodes.push(self.parse_repeat()?);
        }
        Ok(if nodes.len() == 1 { nodes.pop().unwrap() } else { Node::Concat(nodes) })
    }

    fn parse_repeat(&mut self) -> Result<Node, RegexError> {
        let atom = self.parse_atom()?;
        let node = match self.peek() {
            Some('*') => {
                self.bump();
                Node::Repeat { node: Box::new(atom), min: 0, max: None }
            }
            Some('+') => {
                self.bump();
                Node::Repeat { node: Box::new(atom), min: 1, max: None }
            }
            Some('?') => {
                self.bump();
                Node::Repeat { node: Box::new(atom), min: 0, max: Some(1) }
            }
            _ => atom,
        };
        Ok(node)
    }

    fn parse_atom(&mut self) -> Result<Node, RegexError> {
        match self.bump() {
            None => Err(self.error("unexpected end of pattern")),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.error("unclosed group"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Node::AnyChar),
            Some('^') => Ok(Node::StartAnchor),
            Some('$') => Ok(Node::EndAnchor),
            Some('\\') => self.parse_escape(false).map(|item| match item {
                ClassItem::Char(c) => Node::Char(c),
                ClassItem::Digit => Node::Class { negated: false, items: vec![ClassItem::Digit] },
                ClassItem::Word => Node::Class { negated: false, items: vec![ClassItem::Word] },
                ClassItem::Space => Node::Class { negated: false, items: vec![ClassItem::Space] },
                ClassItem::Range(..) => unreachable!("escape never yields range"),
            }),
            Some(c @ ('*' | '+' | '?')) => Err(self.error(format!("dangling quantifier: {c}"))),
            Some(c) => Ok(Node::Char(c)),
        }
    }

    fn parse_escape(&mut self, _in_class: bool) -> Result<ClassItem, RegexError> {
        match self.bump() {
            None => Err(self.error("trailing backslash")),
            Some('d') => Ok(ClassItem::Digit),
            Some('w') => Ok(ClassItem::Word),
            Some('s') => Ok(ClassItem::Space),
            Some('n') => Ok(ClassItem::Char('\n')),
            Some('t') => Ok(ClassItem::Char('\t')),
            Some('r') => Ok(ClassItem::Char('\r')),
            Some(c) => Ok(ClassItem::Char(c)), // \. \\ \[ \( etc.
        }
    }

    fn parse_class(&mut self) -> Result<Node, RegexError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unclosed character class")),
                Some(']') if !items.is_empty() || negated => break,
                Some(']') => break, // allow empty class (matches nothing)
                Some('\\') => items.push(self.parse_escape(true)?),
                Some(c) => {
                    // Possible range c-x (but not if '-' is last before ']').
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).map(|(_, c)| *c) != Some(']')
                        && self.chars.get(self.pos + 1).is_some()
                    {
                        self.bump(); // '-'
                        let hi = self.bump().expect("checked above");
                        if hi < c {
                            return Err(self.error("invalid range"));
                        }
                        items.push(ClassItem::Range(c, hi));
                    } else {
                        items.push(ClassItem::Char(c));
                    }
                }
            }
        }
        Ok(Node::Class { negated, items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, text: &str) -> bool {
        Regex::new(pattern).unwrap().is_match(text)
    }

    fn mi(pattern: &str, text: &str) -> bool {
        Regex::with_flags(pattern, "i").unwrap().is_match(text)
    }

    #[test]
    fn literal_substring() {
        assert!(m("customer", "the customer table"));
        assert!(!m("customer", "the client table"));
    }

    #[test]
    fn case_insensitive_flag() {
        // The paper's exact filter: regexp_like(term, 'customer', 'i').
        assert!(mi("customer", "CUSTOMER_ID"));
        assert!(mi("customer", "Customer Identification"));
        assert!(!m("customer", "CUSTOMER_ID"));
    }

    #[test]
    fn dot_and_quantifiers() {
        assert!(m("a.c", "abc"));
        assert!(!m("a.c", "ac"));
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
    }

    #[test]
    fn anchors() {
        assert!(m("^cust", "customer"));
        assert!(!m("^tomer", "customer"));
        assert!(m("omer$", "customer"));
        assert!(!m("cust$", "customer"));
        assert!(m("^customer$", "customer"));
        assert!(!m("^customer$", "a customer"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "hotdog"));
        assert!(m("(par|cus)t", "partner"));
        assert!(m("(ab)+", "ababab"));
        assert!(!m("^(ab)+$", "aba"));
    }

    #[test]
    fn character_classes() {
        assert!(m("[abc]", "zebra"));
        assert!(m("[xyz]", "zebra")); // z in class
        assert!(m("[a-f]+", "beef"));
        assert!(!m("^[a-f]+$", "get"));
        assert!(m("[^0-9]", "a1"));
        assert!(!m("^[^0-9]+$", "123"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"\d+", "TCD100"));
        assert!(!m(r"^\d+$", "TCD100"));
        assert!(m(r"\w+", "partner_id"));
        assert!(m(r"\s", "a b"));
        assert!(m(r"a\.b", "a.b"));
        assert!(!m(r"a\.b", "axb"));
        assert!(m(r"\\", "back\\slash"));
    }

    #[test]
    fn backtracking() {
        assert!(m("a.*b", "a xx b yy"));
        assert!(m("a.*bc", "abbc"));
        assert!(m(".*ab", "aab"));
    }

    #[test]
    fn zero_width_star_terminates() {
        // (a?)* on a non-matching text must not loop forever.
        assert!(m("(a?)*b", "b"));
        assert!(!m("^(a?)*$", "c"));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("", "anything"));
        assert!(m("", ""));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(ab").is_err());
        assert!(Regex::new("[ab").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("ab)").is_err());
        assert!(Regex::with_flags("a", "x").is_err());
    }

    #[test]
    fn case_insensitive_class_and_range() {
        assert!(mi("[A-F]+", "beef"));
        assert!(mi("TCD[0-9]+", "tcd100"));
    }

    #[test]
    fn cryptic_table_name_pattern() {
        // Section III: "many table names … are quite cryptic such as TCD100".
        let r = Regex::with_flags("^tcd[0-9]{0,}", "i");
        // {n,m} counted repetition is not in the subset; spell it with *.
        assert!(r.is_err() || !r.unwrap().is_match(""));
        assert!(mi("^TCD[0-9]+$", "TCD100"));
    }
}
