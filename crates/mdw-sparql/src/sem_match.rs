//! The `SEM_MATCH`-style query facade.
//!
//! The paper's two listings query the warehouse through Oracle's `SEM_MATCH`
//! table function: a SPARQL pattern, `SEM_MODELS('DWH_CURR')`,
//! `SEM_RULEBASES('OWLPRIME')`, and `SEM_ALIASES(SEM_ALIAS('dm', …))`,
//! wrapped in SQL that filters (`regexp_like`) and groups. [`SemMatch`] is
//! that surface as a builder:
//!
//! ```
//! use mdw_rdf::{Store, Term};
//! use mdw_sparql::SemMatch;
//!
//! let mut store = Store::new();
//! store.create_model("DWH_CURR").unwrap();
//! store.insert("DWH_CURR",
//!     &Term::iri("http://ex.org/t1"),
//!     &Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
//!     &Term::iri("http://ex.org/Table")).unwrap();
//!
//! let out = SemMatch::new("{ ?x rdf:type ?c }")
//!     .model("DWH_CURR")
//!     .alias("ex", "http://ex.org/")
//!     .select(&["?x", "?c"])
//!     .execute(&store, None)
//!     .unwrap();
//! assert_eq!(out.rows.len(), 1);
//! ```
//!
//! When a rulebase is named, the caller supplies the matching
//! [`Materialization`] (the semantic index built by `mdw-reason`); the query
//! then runs over the entailed view, exactly like a `SEM_MATCH` call that
//! names `SEM_RULEBASES('OWLPRIME')`.

use std::collections::BTreeMap;

use mdw_rdf::store::Store;
use mdw_rdf::vocab;
use mdw_reason::{EntailedGraph, Materialization};

use crate::error::SparqlError;
use crate::exec::{execute_explained, QueryOutput};
use crate::plan::ExplainReport;
use mdw_rdf::budget::QueryBudget;
use mdw_rdf::par::ParallelPolicy;
use crate::parser::parse;

/// Builder for a `SEM_MATCH`-flavoured query.
#[derive(Debug, Clone)]
pub struct SemMatch {
    pattern: String,
    model: Option<String>,
    rulebase: Option<String>,
    aliases: BTreeMap<String, String>,
    select: Vec<String>,
    distinct: bool,
    filters: Vec<String>,
    group_by: Vec<String>,
    order_by: Vec<String>,
    limit: Option<usize>,
}

impl SemMatch {
    /// Starts a query from a SPARQL group pattern (with or without the
    /// surrounding braces). The standard aliases `rdf:`, `rdfs:`, `owl:`,
    /// and `xsd:` are pre-registered, as they are in Oracle.
    pub fn new(pattern: impl Into<String>) -> Self {
        let mut aliases = BTreeMap::new();
        aliases.insert("rdf".to_string(), vocab::rdf::NS.to_string());
        aliases.insert("rdfs".to_string(), vocab::rdfs::NS.to_string());
        aliases.insert("owl".to_string(), vocab::owl::NS.to_string());
        aliases.insert("xsd".to_string(), vocab::xsd::NS.to_string());
        SemMatch {
            pattern: pattern.into(),
            model: None,
            rulebase: None,
            aliases,
            select: Vec::new(),
            distinct: false,
            filters: Vec::new(),
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// `SEM_MODELS('name')` — the model to query.
    pub fn model(mut self, name: impl Into<String>) -> Self {
        self.model = Some(name.into());
        self
    }

    /// `SEM_RULEBASES('name')` — opt into an entailment index.
    pub fn rulebase(mut self, name: impl Into<String>) -> Self {
        self.rulebase = Some(name.into());
        self
    }

    /// Drops any named rulebase, so the query runs over base facts alone —
    /// the warehouse's degraded-fallback path while its entailment breaker
    /// is open.
    pub fn without_rulebase(mut self) -> Self {
        self.rulebase = None;
        self
    }

    /// `SEM_ALIAS(prefix, namespace)`.
    pub fn alias(mut self, prefix: impl Into<String>, ns: impl Into<String>) -> Self {
        self.aliases.insert(prefix.into(), ns.into());
        self
    }

    /// The projection, e.g. `&["?class", "?object"]` or
    /// `&["?class", "(COUNT(?object) AS ?n)"]`.
    pub fn select(mut self, items: &[&str]) -> Self {
        self.select = items.iter().map(|s| s.to_string()).collect();
        self
    }

    /// `SELECT DISTINCT`.
    pub fn distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// Adds a raw `FILTER` expression — the analog of the SQL `WHERE`
    /// around `SEM_MATCH` (e.g. `regex(?term, "customer", "i")`,
    /// the paper's `regexp_like(term, 'customer', 'i')`).
    pub fn filter(mut self, expr: impl Into<String>) -> Self {
        self.filters.push(expr.into());
        self
    }

    /// `GROUP BY` variables, e.g. `&["?class", "?object"]`.
    pub fn group_by(mut self, vars: &[&str]) -> Self {
        self.group_by = vars.iter().map(|s| s.to_string()).collect();
        self
    }

    /// `ORDER BY` keys (raw, e.g. `"?class"` or `"DESC(?n)"`).
    pub fn order_by(mut self, keys: &[&str]) -> Self {
        self.order_by = keys.iter().map(|s| s.to_string()).collect();
        self
    }

    /// `LIMIT`.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Renders the assembled SPARQL text (useful for logging — the analog of
    /// printing the SQL statement).
    pub fn to_sparql(&self) -> String {
        let mut q = String::new();
        for (prefix, ns) in &self.aliases {
            q.push_str(&format!("PREFIX {prefix}: <{ns}>\n"));
        }
        q.push_str("SELECT ");
        if self.distinct {
            q.push_str("DISTINCT ");
        }
        if self.select.is_empty() {
            q.push('*');
        } else {
            q.push_str(&self.select.join(" "));
        }
        let body = self.pattern.trim();
        let body = body.strip_prefix('{').unwrap_or(body);
        let body = body.strip_suffix('}').unwrap_or(body);
        q.push_str("\nWHERE {\n");
        q.push_str(body.trim());
        for f in &self.filters {
            q.push_str(&format!("\nFILTER({f})"));
        }
        q.push_str("\n}");
        if !self.group_by.is_empty() {
            q.push_str(&format!("\nGROUP BY {}", self.group_by.join(" ")));
        }
        if !self.order_by.is_empty() {
            q.push_str(&format!("\nORDER BY {}", self.order_by.join(" ")));
        }
        if let Some(n) = self.limit {
            q.push_str(&format!("\nLIMIT {n}"));
        }
        q
    }

    /// Executes against a store. If a rulebase was named, `entailments`
    /// must be the materialization of that rulebase over the model; passing
    /// `None` with a named rulebase is an error (the paper's "indexes only
    /// exist if built").
    pub fn execute(
        &self,
        store: &Store,
        entailments: Option<&Materialization>,
    ) -> Result<QueryOutput, SparqlError> {
        self.execute_with_budget(store, entailments, &QueryBudget::unlimited())
    }

    /// [`SemMatch::execute`] under a resource budget: the traversal stops
    /// at the budget and the partial rows come back tagged
    /// [`Completeness::Truncated`](mdw_rdf::budget::Completeness).
    pub fn execute_with_budget(
        &self,
        store: &Store,
        entailments: Option<&Materialization>,
        budget: &QueryBudget,
    ) -> Result<QueryOutput, SparqlError> {
        self.execute_with_options(store, entailments, budget, ParallelPolicy::sequential())
    }

    /// [`SemMatch::execute_with_budget`] plus a worker-thread policy for
    /// the executor's parallel leaf scans (results stay bit-identical to
    /// sequential execution).
    pub fn execute_with_options(
        &self,
        store: &Store,
        entailments: Option<&Materialization>,
        budget: &QueryBudget,
        par: ParallelPolicy,
    ) -> Result<QueryOutput, SparqlError> {
        self.execute_explained(store, entailments, budget, par, true)
            .map(|(out, _)| out)
    }

    /// [`SemMatch::execute_with_options`] plus a planner switch and the
    /// [`ExplainReport`] describing the plan the executor actually ran —
    /// join order chosen, cardinality estimates against observed rows,
    /// and which filter conjuncts were pushed into the scans. With
    /// `use_planner` false the query runs in written pattern order
    /// (the pre-planner behaviour), which is what ablation comparisons
    /// measure against.
    pub fn execute_explained(
        &self,
        store: &Store,
        entailments: Option<&Materialization>,
        budget: &QueryBudget,
        par: ParallelPolicy,
        use_planner: bool,
    ) -> Result<(QueryOutput, ExplainReport), SparqlError> {
        let model_name = self
            .model
            .as_deref()
            .ok_or_else(|| SparqlError::Semantic("no model specified".to_string()))?;
        let graph = store
            .model(model_name)
            .map_err(|e| SparqlError::Semantic(e.to_string()))?;
        let query = parse(&self.to_sparql())?;
        match (&self.rulebase, entailments) {
            (None, _) => execute_explained(&query, graph, store.dict(), budget, par, use_planner),
            (Some(_), Some(m)) => {
                let base = graph.freeze();
                let view = EntailedGraph::new(&base, m.frozen());
                execute_explained(&query, &view, store.dict(), budget, par, use_planner)
            }
            (Some(rb), None) => Err(SparqlError::Semantic(format!(
                "rulebase {rb} requested but no entailment index supplied"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdw_rdf::term::Term;
    use mdw_reason::Rulebase;

    fn setup() -> (Store, Materialization) {
        let mut store = Store::new();
        store.create_model("DWH_CURR").unwrap();
        let rb = Rulebase::owlprime(store.dict_mut());
        let dm = |l: &str| Term::iri(vocab::cs::dm(l));
        let triples = vec![
            // hierarchy
            (dm("Application1_View_Column"), Term::iri(vocab::rdfs::SUB_CLASS_OF), dm("Attribute")),
            (dm("Attribute"), Term::iri(vocab::rdfs::SUB_CLASS_OF), dm("Application1_Item")),
            // labels
            (dm("Attribute"), Term::iri(vocab::rdfs::LABEL), Term::plain("Attribute")),
            (
                dm("Application1_View_Column"),
                Term::iri(vocab::rdfs::LABEL),
                Term::plain("Column"),
            ),
            // instance
            (
                Term::iri(vocab::cs::dwh("customer_id")),
                Term::iri(vocab::rdf::TYPE),
                dm("Application1_View_Column"),
            ),
            (
                Term::iri(vocab::cs::dwh("customer_id")),
                Term::iri(vocab::cs::HAS_NAME),
                Term::plain("customer_id"),
            ),
        ];
        for (s, p, o) in triples {
            store.insert("DWH_CURR", &s, &p, &o).unwrap();
        }
        let m = Materialization::materialize(store.model("DWH_CURR").unwrap(), &rb, store.dict());
        (store, m)
    }

    #[test]
    fn listing1_shape_without_rulebase_misses_inherited_types() {
        let (store, _) = setup();
        let out = SemMatch::new("{ ?object rdf:type dm:Attribute }")
            .model("DWH_CURR")
            .alias("dm", vocab::cs::DM)
            .select(&["?object"])
            .execute(&store, None)
            .unwrap();
        // Without the OWL index, customer_id is not an Attribute.
        assert!(out.rows.is_empty());
    }

    #[test]
    fn listing1_shape_with_rulebase_sees_inherited_types() {
        let (store, m) = setup();
        let out = SemMatch::new(
            "{ ?object rdf:type ?c . ?c rdfs:label ?class . ?object dm:hasName ?term }",
        )
        .model("DWH_CURR")
        .rulebase("OWLPRIME")
        .alias("dm", vocab::cs::DM)
        .select(&["?class", "?object"])
        .filter("regex(?term, \"customer\", \"i\")")
        .group_by(&["?class", "?object"])
        .order_by(&["?class"])
        .execute(&store, Some(&m))
        .unwrap();
        // customer_id appears under both its own class and the inherited
        // Attribute class.
        assert_eq!(out.rows.len(), 2);
        let classes: Vec<_> = out
            .rows
            .iter()
            .map(|r| r[0].as_ref().unwrap().label().to_string())
            .collect();
        assert_eq!(classes, vec!["Attribute", "Column"]);
    }

    #[test]
    fn rulebase_without_entailments_is_error() {
        let (store, _) = setup();
        let err = SemMatch::new("{ ?x rdf:type ?c }")
            .model("DWH_CURR")
            .rulebase("OWLPRIME")
            .select(&["?x"])
            .execute(&store, None)
            .unwrap_err();
        assert!(matches!(err, SparqlError::Semantic(_)));
    }

    #[test]
    fn missing_model_is_error() {
        let (store, _) = setup();
        let err = SemMatch::new("{ ?x rdf:type ?c }")
            .select(&["?x"])
            .execute(&store, None)
            .unwrap_err();
        assert!(matches!(err, SparqlError::Semantic(_)));
        let err = SemMatch::new("{ ?x rdf:type ?c }")
            .model("NOPE")
            .select(&["?x"])
            .execute(&store, None)
            .unwrap_err();
        assert!(matches!(err, SparqlError::Semantic(_)));
    }

    #[test]
    fn to_sparql_renders_all_clauses() {
        let q = SemMatch::new("{ ?x rdf:type ?c }")
            .model("DWH_CURR")
            .alias("dm", vocab::cs::DM)
            .select(&["?x"])
            .distinct()
            .filter("regex(?x, \"a\")")
            .group_by(&["?x"])
            .order_by(&["?x"])
            .limit(5)
            .to_sparql();
        assert!(q.contains("PREFIX dm:"));
        assert!(q.contains("SELECT DISTINCT ?x"));
        assert!(q.contains("FILTER(regex(?x, \"a\"))"));
        assert!(q.contains("GROUP BY ?x"));
        assert!(q.contains("ORDER BY ?x"));
        assert!(q.contains("LIMIT 5"));
    }

    #[test]
    fn braces_optional_in_pattern() {
        let (store, _) = setup();
        let with = SemMatch::new("{ ?x rdf:type ?c }")
            .model("DWH_CURR")
            .select(&["?x"])
            .execute(&store, None)
            .unwrap();
        let without = SemMatch::new("?x rdf:type ?c")
            .model("DWH_CURR")
            .select(&["?x"])
            .execute(&store, None)
            .unwrap();
        assert_eq!(with.rows.len(), without.rows.len());
    }
}
