//! Property-based tests for the regex engine and the query parser.

use proptest::prelude::*;

use mdw_sparql::parser::parse;
use mdw_sparql::regex_lite::Regex;

/// Escapes a string so the regex engine treats it literally.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    for c in s.chars() {
        if "\\.*+?()[]|^$".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

proptest! {
    #[test]
    fn literal_pattern_is_substring_search(
        needle in "[a-zA-Z0-9_ .*+?()\\[\\]|^$\\\\]{0,8}",
        haystack in "[a-zA-Z0-9_ .*+?()\\[\\]|^$\\\\]{0,24}",
    ) {
        let re = Regex::new(&escape(&needle)).unwrap();
        prop_assert_eq!(re.is_match(&haystack), haystack.contains(&needle));
    }

    #[test]
    fn case_insensitive_equals_lowercased_match(
        needle in "[a-zA-Z]{1,6}",
        haystack in "[a-zA-Z ]{0,24}",
    ) {
        let ci = Regex::with_flags(&needle, "i").unwrap();
        let lower = Regex::new(&needle.to_lowercase()).unwrap();
        prop_assert_eq!(ci.is_match(&haystack), lower.is_match(&haystack.to_lowercase()));
    }

    #[test]
    fn anchored_prefix_is_starts_with(
        needle in "[a-z]{1,6}",
        haystack in "[a-z]{0,16}",
    ) {
        let re = Regex::new(&format!("^{needle}")).unwrap();
        prop_assert_eq!(re.is_match(&haystack), haystack.starts_with(&needle));
        let re = Regex::new(&format!("{needle}$")).unwrap();
        prop_assert_eq!(re.is_match(&haystack), haystack.ends_with(&needle));
    }

    #[test]
    fn compile_never_panics(pattern in "[ -~]{0,20}", input in "[ -~]{0,20}") {
        // Arbitrary patterns either compile (and match without panicking)
        // or produce a parse error — never a crash or hang.
        if let Ok(re) = Regex::new(&pattern) {
            let _ = re.is_match(&input);
        }
    }

    #[test]
    fn star_closure_matches_repetitions(unit in "[a-z]{1,3}", n in 0usize..5) {
        let text = unit.repeat(n);
        let re = Regex::new(&format!("^({})*$", escape(&unit))).unwrap();
        prop_assert!(re.is_match(&text));
    }
}

// ---- Parser properties ------------------------------------------------------

proptest! {
    #[test]
    fn parser_never_panics(input in "[ -~\n]{0,80}") {
        let _ = parse(&input);
    }

    #[test]
    fn parsed_query_projects_requested_vars(
        vars in proptest::collection::btree_set("[a-z]{1,4}", 1..4),
    ) {
        let vars: Vec<String> = vars.into_iter().collect();
        let select: Vec<String> = vars.iter().map(|v| format!("?{v}")).collect();
        let body: Vec<String> = vars
            .iter()
            .map(|v| format!("?{v} <http://ex.org/p> ?o_{v} ."))
            .collect();
        let q = format!("SELECT {} WHERE {{ {} }}", select.join(" "), body.join(" "));
        let parsed = parse(&q).unwrap();
        prop_assert_eq!(parsed.output_columns(), vars);
    }

    #[test]
    fn limit_offset_round_trip(limit in 0usize..1000, offset in 0usize..1000) {
        let q = format!("SELECT ?x WHERE {{ ?x ?p ?o }} LIMIT {limit} OFFSET {offset}");
        let parsed = parse(&q).unwrap();
        prop_assert_eq!(parsed.limit, Some(limit));
        prop_assert_eq!(parsed.offset, Some(offset));
    }
}
