//! Tests for SPARQL 1.1 property paths — the query form the paper's lineage
//! path expression `(isMappedTo)* rdf:type` (Figure 8) calls for.

use mdw_rdf::store::Store;
use mdw_rdf::term::Term;
use mdw_rdf::vocab;
use mdw_sparql::exec::execute;
use mdw_sparql::parser::parse;

/// The Figure 3 mapping chain plus extra shape for path operators:
///
/// ```text
/// client --maps--> partner --maps--> customer
/// customer : ViewColumn ;  alt  --other--> side
/// ```
fn chain_store() -> Store {
    let mut store = Store::new();
    store.create_model("m").unwrap();
    let maps = Term::iri("http://t/maps");
    let other = Term::iri("http://t/other");
    let ty = Term::iri(vocab::rdf::TYPE);
    for (s, p, o) in [
        ("client", &maps, "partner"),
        ("partner", &maps, "customer"),
        ("client", &other, "side"),
        ("side", &maps, "customer"),
    ] {
        store
            .insert("m", &Term::iri(format!("http://t/{s}")), p, &Term::iri(format!("http://t/{o}")))
            .unwrap();
    }
    store
        .insert(
            "m",
            &Term::iri("http://t/customer"),
            &ty,
            &Term::iri("http://t/ViewColumn"),
        )
        .unwrap();
    store
}

fn run(store: &Store, q: &str) -> Vec<Vec<String>> {
    let query = parse(q).unwrap();
    let out = execute(&query, store.model("m").unwrap(), store.dict()).unwrap();
    out.rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|c| c.as_ref().map(|t| t.label().to_string()).unwrap_or_default())
                .collect()
        })
        .collect()
}

#[test]
fn zero_or_more_closure() {
    let store = chain_store();
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT ?x WHERE { t:client t:maps* ?x } ORDER BY ?x",
    );
    // Zero hops (client itself) + partner + customer.
    let got: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
    assert_eq!(got, vec!["client", "customer", "partner"]);
}

#[test]
fn one_or_more_excludes_start() {
    let store = chain_store();
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT ?x WHERE { t:client t:maps+ ?x } ORDER BY ?x",
    );
    let got: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
    assert_eq!(got, vec!["customer", "partner"]);
}

#[test]
fn zero_or_one() {
    let store = chain_store();
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT ?x WHERE { t:client t:maps? ?x } ORDER BY ?x",
    );
    let got: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
    assert_eq!(got, vec!["client", "partner"]);
}

#[test]
fn sequence_path() {
    let store = chain_store();
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT ?x WHERE { t:client t:maps/t:maps ?x }",
    );
    assert_eq!(rows, vec![vec!["customer".to_string()]]);
}

#[test]
fn figure8_path_expression_verbatim() {
    // The paper: "(isMappedTo)* rdf:type" — as one SPARQL property path.
    let store = chain_store();
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\n\
         PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
         SELECT ?class WHERE { t:client t:maps*/rdf:type ?class }",
    );
    assert_eq!(rows, vec![vec!["ViewColumn".to_string()]]);
}

#[test]
fn alternative_path() {
    let store = chain_store();
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT ?x WHERE { t:client (t:maps|t:other) ?x } ORDER BY ?x",
    );
    let got: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
    assert_eq!(got, vec!["partner", "side"]);
}

#[test]
fn inverse_path() {
    let store = chain_store();
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT ?x WHERE { t:customer ^t:maps ?x } ORDER BY ?x",
    );
    let got: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
    assert_eq!(got, vec!["partner", "side"]);
}

#[test]
fn inverse_closure_is_provenance() {
    // Upstream lineage as a path: everything customer derives from.
    let store = chain_store();
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT ?x WHERE { t:customer (^t:maps)+ ?x } ORDER BY ?x",
    );
    let got: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
    assert_eq!(got, vec!["client", "partner", "side"]);
}

#[test]
fn bound_object_evaluates_backwards() {
    let store = chain_store();
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT ?x WHERE { ?x t:maps+ t:customer } ORDER BY ?x",
    );
    let got: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
    assert_eq!(got, vec!["client", "partner", "side"]);
}

#[test]
fn both_endpoints_bound_checks_reachability() {
    let store = chain_store();
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT (COUNT(*) AS ?n) WHERE { t:client t:maps* t:customer }",
    );
    assert_eq!(rows, vec![vec!["1".to_string()]]);
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT (COUNT(*) AS ?n) WHERE { t:customer t:maps+ t:client }",
    );
    assert_eq!(rows, vec![vec!["0".to_string()]]);
}

#[test]
fn both_endpoints_free_enumerates_pairs() {
    let store = chain_store();
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT ?a ?b WHERE { ?a t:maps+ ?b } ORDER BY ?a ?b",
    );
    // Pairs of the + closure over the maps edges.
    let got: Vec<(String, String)> = rows.iter().map(|r| (r[0].clone(), r[1].clone())).collect();
    assert!(got.contains(&("client".into(), "customer".into())));
    assert!(got.contains(&("client".into(), "partner".into())));
    assert!(got.contains(&("partner".into(), "customer".into())));
    assert!(got.contains(&("side".into(), "customer".into())));
    assert!(!got.contains(&("customer".into(), "client".into())));
}

#[test]
fn path_over_cycle_terminates() {
    let mut store = Store::new();
    store.create_model("m").unwrap();
    let p = Term::iri("http://t/p");
    for (s, o) in [("a", "b"), ("b", "c"), ("c", "a")] {
        store
            .insert("m", &Term::iri(format!("http://t/{s}")), &p, &Term::iri(format!("http://t/{o}")))
            .unwrap();
    }
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT ?x WHERE { t:a t:p+ ?x } ORDER BY ?x",
    );
    // The cycle closes: a reaches a, b, c (each exactly once).
    let got: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
    assert_eq!(got, vec!["a", "b", "c"]);
}

#[test]
fn unknown_predicate_in_nullable_path_matches_zero_hops() {
    let store = chain_store();
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT ?x WHERE { t:client t:never_used* ?x }",
    );
    assert_eq!(rows, vec![vec!["client".to_string()]]);
    // Non-nullable: no match at all.
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT ?x WHERE { t:client t:never_used+ ?x }",
    );
    assert!(rows.is_empty());
}

#[test]
fn path_joins_with_plain_patterns() {
    // The full Listing-2 shape as a single query: path + type + name join.
    let mut store = chain_store();
    store
        .insert(
            "m",
            &Term::iri("http://t/customer"),
            &Term::iri(vocab::cs::HAS_NAME),
            &Term::plain("customer_id"),
        )
        .unwrap();
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\n\
         PREFIX dm: <http://www.credit-suisse.com/dwh/mdm/data_modeling#>\n\
         SELECT ?target ?name WHERE {\n\
           t:client t:maps* ?target .\n\
           ?target a <http://t/ViewColumn> .\n\
           ?target dm:hasName ?name\n\
         }",
    );
    assert_eq!(rows, vec![vec!["customer".to_string(), "customer_id".to_string()]]);
}

#[test]
fn grouped_path_with_modifier() {
    let store = chain_store();
    let rows = run(
        &store,
        "PREFIX t: <http://t/>\nSELECT ?x WHERE { t:client (t:maps/t:maps)? ?x } ORDER BY ?x",
    );
    let got: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
    assert_eq!(got, vec!["client", "customer"]);
}

#[test]
fn parse_errors_for_malformed_paths() {
    assert!(parse("SELECT ?x WHERE { ?x <p>/ ?y }").is_err());
    assert!(parse("SELECT ?x WHERE { ?x ^ ?y }").is_err());
    assert!(parse("SELECT ?x WHERE { ?x (<p> ?y }").is_err());
}
