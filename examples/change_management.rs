//! Change management across a release: the operational workflows the paper
//! motivates in Sections I and IV.B — "if an application or interface
//! evolves, it is crucial to understand which other applications and
//! interfaces are affected by this change."
//!
//! This example walks one release:
//!   1. impact analysis before the change (lineage + per-schema summary),
//!   2. the audit trail (who can access the affected item),
//!   3. the scanner re-delivers its extract → `resync` replaces the
//!      source's triples (columns that disappeared leave the graph),
//!   4. model-management operators: composed end-to-end mappings and an
//!      extracted submodel for the review ticket,
//!   5. the governance gap report for the data marts.
//!
//! Run with: `cargo run --release --example change_management`

use metadata_warehouse::core::governance::render_access;
use metadata_warehouse::core::ingest::Extract;
use metadata_warehouse::core::lineage::LineageRequest;
use metadata_warehouse::core::operators::{compose_mappings, extract_submodel};
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::corpus::{generate, CorpusConfig};
use metadata_warehouse::rdf::vocab;
use metadata_warehouse::rdf::Term;

fn main() {
    let corpus = generate(&CorpusConfig::medium().extended());
    let chain_start = corpus.chain_start.clone();
    let chain_end = corpus.chain_end.clone();
    let mut warehouse = MetadataWarehouse::new();
    warehouse.ingest(corpus.into_extracts()).expect("ingest");
    warehouse.build_semantic_index().expect("index");

    // --- 1. Impact analysis before touching the inbound item ---------------
    let impact = warehouse
        .lineage(&LineageRequest::downstream(chain_start.clone()))
        .expect("lineage");
    let summary = warehouse.impact_summary(&impact).expect("summary");
    println!(
        "changing {} affects {} item(s) across {} schema(s):",
        chain_start.label(),
        summary.total,
        summary.by_schema.len()
    );
    for (schema, n) in &summary.by_schema {
        println!("    {:<24} {n} item(s)", schema.label());
    }

    // --- 2. Who has access to the endpoint we are about to change? ---------
    println!();
    print!("{}", render_access(&warehouse.who_can_access(&chain_end).expect("audit")));

    // --- 3. A per-application scanner delivers, then re-delivers ------------
    // First delivery: two staging columns from one application's scanner.
    let col = |l: &str| Term::iri(vocab::cs::dwh(l));
    let ty = Term::iri(vocab::rdf::TYPE);
    let name = Term::iri(vocab::cs::HAS_NAME);
    let source_class = Term::iri(vocab::cs::dm("Source_File_Column"));
    warehouse
        .resync(Extract::new(
            "app99-scanner",
            vec![
                (col("app99/c1"), ty.clone(), source_class.clone()),
                (col("app99/c1"), name.clone(), Term::plain("legacy_customer_code")),
                (col("app99/c2"), ty.clone(), source_class.clone()),
                (col("app99/c2"), name.clone(), Term::plain("legacy_branch_code")),
            ],
        ))
        .expect("first delivery");

    // Next release, the scanner re-delivers: c2 was decommissioned, c1 was
    // renamed. Replace semantics: what the source no longer asserts leaves
    // the graph.
    let before = warehouse.stats().expect("stats").edges;
    let resync = warehouse
        .resync(Extract::new(
            "app99-scanner",
            vec![
                (col("app99/c1"), ty, source_class),
                (col("app99/c1"), name, Term::plain("customer_code_v2")),
            ],
        ))
        .expect("resync");
    let after = warehouse.stats().expect("stats").edges;
    println!(
        "\nresync of 'app99-scanner': +{} / -{} triples ({} retained by other sources, {} unchanged); edges {before} → {after}",
        resync.added, resync.removed, resync.retained_by_others, resync.unchanged
    );
    warehouse.build_semantic_index().expect("rebuild index");

    // --- 4. Model-management operators for the review ticket ----------------
    let graph = warehouse
        .store()
        .model(warehouse.model_name())
        .expect("model");
    let composed = compose_mappings(graph, warehouse.store().dict());
    println!(
        "\ncomposed end-to-end mappings (Rondo compose): {} (first 3):",
        composed.len()
    );
    for c in composed.iter().take(3) {
        println!(
            "    {} → {} (via {}){}",
            c.from.label(),
            c.to.label(),
            c.via.label(),
            c.condition.as_deref().map(|s| format!("  when [{s}]")).unwrap_or_default()
        );
    }

    let submodel = extract_submodel(graph, warehouse.store().dict(), std::slice::from_ref(&chain_end), 2);
    println!(
        "extracted submodel around {} (2 hops): {} triples",
        chain_end.label(),
        submodel.len()
    );

    // --- 5. Governance gaps after the release --------------------------------
    let gaps = warehouse.governance_gaps().expect("gaps");
    println!(
        "\ngovernance: {}/{} data-mart items have owners ({:.1} % coverage)",
        gaps.inspected - gaps.ownerless.len(),
        gaps.inspected,
        gaps.coverage() * 100.0
    );
}
