//! Graph vs. the textbook relational design (Section III): load the same
//! extracts into both stores and compare what survives, what each search
//! finds, and what schema evolution costs.
//!
//! Run with: `cargo run --release --example graph_vs_relational`

use metadata_warehouse::core::search::SearchRequest;
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::corpus::{generate, CorpusConfig};
use metadata_warehouse::relational::{
    load_extracts, rel_search, Migration, RelationalStore,
};
use metadata_warehouse::relational::search::RelSearchRequest;

fn main() {
    // The extended-scope corpus (Figure 9) contains subject areas the fixed
    // schema never anticipated.
    let corpus = generate(&CorpusConfig::medium().extended());
    let extracts = corpus.into_extracts();

    // --- Graph warehouse: everything loads, no schema work -----------------
    let mut graph = MetadataWarehouse::new();
    let ingest = graph.ingest(extracts.clone()).expect("ingest");
    graph.build_semantic_index().expect("index");
    println!("graph warehouse:");
    println!("  loaded {} triples, rejected {}", ingest.load.loaded, ingest.load.rejections.len());
    println!("  DDL statements required: 0 (schema-less by design)\n");

    // --- Relational baseline: fixed schema drops the unanticipated ----------
    let mut rel = RelationalStore::new();
    let report = load_extracts(&mut rel, &extracts);
    println!("relational baseline (fixed schema):");
    println!("  entities {}, mappings {}, attributes {}", report.entities, report.mappings, report.attributes);
    println!("  DROPPED {} triples the schema has no place for:", report.dropped_total());
    let mut dropped: Vec<_> = report.dropped.iter().collect();
    dropped.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
    for (predicate, n) in dropped.iter().take(8) {
        println!("    {predicate:<24} {n}");
    }

    // --- The migration needed to stop dropping (Figure 9 scope) ------------
    let migration = Migration::figure9().apply(&mut rel);
    println!("\nmigration to absorb the Figure 9 scope:");
    println!(
        "  {} DDL statements, {} rows rewritten (graph: 0 / 0)",
        migration.ddl_statements, migration.rows_rewritten
    );

    // --- Same question to both stores ---------------------------------------
    let g = graph.search(&SearchRequest::new("customer")).expect("search");
    let r = rel_search(&rel, &RelSearchRequest::new("customer"));
    println!("\nsearch \"customer\":");
    println!(
        "  graph:      {} instances across {} class groups (hierarchy is data)",
        g.instance_count(),
        g.groups.len()
    );
    println!(
        "  relational: {} instances across {} rollup groups (hierarchy is code)",
        r.instance_count,
        r.groups.len()
    );

    // Synonym expansion exists only on the graph side.
    let g_syn = graph
        .search(&SearchRequest::new("client").with_synonyms())
        .expect("search");
    let r_client = rel_search(&rel, &RelSearchRequest::new("client"));
    println!("\nsearch \"client\" (semantic):");
    println!("  graph + synonyms: {} instances", g_syn.instance_count());
    println!("  relational:       {} instances (no synonym edges to consult)", r_client.instance_count);
}
