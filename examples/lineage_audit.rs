//! The provenance / impact-analysis use case (Section IV.B): an auditor
//! traces where `customer_id` data comes from, an architect checks what a
//! change to an inbound column would affect, and the Figure 7 tool's
//! schema-level navigation with attribute drill-down.
//!
//! Run with: `cargo run --release --example lineage_audit`

use metadata_warehouse::core::lineage::LineageRequest;
use metadata_warehouse::core::report;
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::corpus::{generate, CorpusConfig};

fn main() {
    let corpus = generate(&CorpusConfig::medium());
    let chain_start = corpus.chain_start.clone();
    let chain_end = corpus.chain_end.clone();
    let stage_schemas = corpus.stage_schemas.clone();

    let mut warehouse = MetadataWarehouse::new();
    warehouse.ingest(corpus.into_extracts()).expect("ingest");
    warehouse.build_semantic_index().expect("index");

    // --- Impact analysis: a change to the inbound item ---------------------
    // "If an application or interface evolves, it is crucial to understand
    // which other applications and interfaces are affected by this change."
    let impact = warehouse
        .lineage(&LineageRequest::downstream(chain_start.clone()).max_depth(6))
        .expect("lineage");
    println!(
        "impact of changing {}: {} affected items, {} paths ({} explored)",
        chain_start.label(),
        impact.endpoints.len(),
        impact.paths.len(),
        impact.paths_explored
    );

    // --- Provenance: where does the mart item come from? -------------------
    let provenance = warehouse
        .lineage(&LineageRequest::upstream(chain_end.clone()).max_depth(6))
        .expect("lineage");
    print!("\n{}", report::render_lineage(&provenance));

    // --- Rule-condition filters (the Section V lesson) ----------------------
    // "rule conditions need to be included as filter criteria when
    // navigating the graph. Consequently, the number of potential data
    // paths … will stay small."
    let unfiltered = warehouse
        .lineage(&LineageRequest::downstream(chain_start.clone()))
        .expect("lineage");
    let filtered = warehouse
        .lineage(
            &LineageRequest::downstream(chain_start).with_rule_filter("segment = 'PB'"),
        )
        .expect("lineage");
    println!(
        "\nrule-condition filter: {} paths → {} paths",
        unfiltered.paths_explored, filtered.paths_explored
    );

    // --- Figure 7: schema-level flows with drill-down -----------------------
    let flows = warehouse.schema_flow().expect("flows");
    println!("\nschema-level data flows (Figure 7, coarse):");
    print!("{}", report::render_flows(&flows));

    if stage_schemas.len() >= 2 {
        let hops = warehouse
            .drill_down(&stage_schemas[0], &stage_schemas[1])
            .expect("drill down");
        println!();
        let text = report::render_drill_down(
            stage_schemas[0].label(),
            stage_schemas[1].label(),
            &hops,
        );
        for line in text.lines().take(12) {
            println!("{line}");
        }
        println!("  … ({} attribute flows total)", hops.len());
    }
}
