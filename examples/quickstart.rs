//! Quickstart: build a small meta-data warehouse, search it, and trace
//! lineage — the paper's two use cases in ~60 lines.
//!
//! Run with: `cargo run --example quickstart`

use metadata_warehouse::core::ingest::Extract;
use metadata_warehouse::core::lineage::LineageRequest;
use metadata_warehouse::core::ontology::OntologyBuilder;
use metadata_warehouse::core::report;
use metadata_warehouse::core::search::SearchRequest;
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::rdf::vocab;
use metadata_warehouse::rdf::Term;

fn dm(local: &str) -> Term {
    Term::iri(vocab::cs::dm(local))
}

fn dwh(local: &str) -> Term {
    Term::iri(vocab::cs::dwh(local))
}

fn main() {
    // 1. Author a tiny hierarchy (the Protégé step of Figure 4).
    let mut onto = OntologyBuilder::new();
    onto.class(&dm("Attribute"), "Attribute")
        .class(&dm("Column"), "Column")
        .subclass(&dm("Column"), &dm("Attribute"))
        .property(&Term::iri(vocab::cs::HAS_NAME), "has name", &dm("Attribute"));

    // 2. Facts from a (pretend) application scanner.
    let facts = Extract::new(
        "app-scanner",
        vec![
            (dwh("customer_id"), Term::iri(vocab::rdf::TYPE), dm("Column")),
            (
                dwh("customer_id"),
                Term::iri(vocab::cs::HAS_NAME),
                Term::plain("customer_id"),
            ),
            (dwh("order_total"), Term::iri(vocab::rdf::TYPE), dm("Column")),
            (
                dwh("order_total"),
                Term::iri(vocab::cs::HAS_NAME),
                Term::plain("order_total"),
            ),
            // A one-hop data flow.
            (
                dwh("customer_id"),
                Term::iri(vocab::cs::IS_MAPPED_TO),
                dwh("order_total"),
            ),
        ],
    );

    // 3. Ingest through staging + bulk load, build the semantic index.
    let mut warehouse = MetadataWarehouse::new();
    let ingest = warehouse
        .ingest(vec![Extract::new("protege", onto.into_triples()), facts])
        .expect("ingest");
    println!(
        "loaded {} triples ({} rejected)",
        ingest.load.loaded,
        ingest.load.rejections.len()
    );
    let stats = warehouse.build_semantic_index().expect("index");
    println!("semantic index: {} derived triples in {} rounds\n", stats.derived, stats.rounds);

    // 4. Search (Section IV.A): customer_id shows up under Column AND the
    //    inherited Attribute class.
    let results = warehouse
        .search(&SearchRequest::new("customer"))
        .expect("search");
    print!("{}", report::render_search("customer", &results));

    // 5. Lineage (Section IV.B): what depends on customer_id?
    let lineage = warehouse
        .lineage(&LineageRequest::downstream(dwh("customer_id")))
        .expect("lineage");
    print!("\n{}", report::render_lineage(&lineage));

    // 6. The Table I census of what we stored.
    print!("\n{}", report::render_census(&warehouse.census().expect("census")));
}
