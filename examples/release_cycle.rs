//! Historization over release cycles (Section III.A): "each meta-data graph
//! is historized completely … up to eight versions in one year … the amount
//! of meta-data also increases … about 20 to 30% every year."
//!
//! This example simulates 2009 → 2011 at eight releases a year with ~25 %
//! annual growth, printing the per-version node/edge series and a diff
//! between two releases.
//!
//! Run with: `cargo run --release --example release_cycle`

use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::corpus::{generate, CorpusConfig};

fn main() {
    // Start from a small landscape so the example runs in seconds; the
    // bench harness repeats this at paper scale.
    let mut size = CorpusConfig::medium();
    size.items_per_stage = 150;
    let corpus = generate(&size);
    let mut warehouse = MetadataWarehouse::new();
    warehouse.ingest(corpus.into_extracts()).expect("ingest");

    // Eight releases per year for three years; 25 %/year growth means each
    // release adds ~2.8 % more metadata on top of the current stock.
    let years = [2009, 2010, 2011];
    let releases_per_year = 8;
    let per_release_growth = 0.25_f64 / releases_per_year as f64;

    for year in years {
        for release in 1..=releases_per_year {
            // New metadata for this release: a fresh slice of landscape,
            // sized relative to the current warehouse.
            let current_edges = warehouse.stats().expect("stats").edges;
            let add_items = ((current_edges as f64 * per_release_growth) / 12.0).ceil() as usize;
            let mut slice_cfg = CorpusConfig::small().with_seed(year as u64 * 100 + release);
            slice_cfg.applications = 1;
            slice_cfg.items_per_stage = add_items.max(1);
            let slice = generate(&slice_cfg).relocate(&format!("rel{year}_{release}"));
            // Only the facts grow release over release; the ontology is
            // shared (re-ingesting it is a no-op thanks to set semantics).
            warehouse.ingest(slice.into_extracts()).expect("ingest");

            let tag = format!("{year}.{release}");
            warehouse.snapshot(&tag).expect("snapshot");
        }
    }

    println!("version   | nodes    | edges    | growth");
    println!("----------+----------+----------+-------");
    let series = warehouse.history().growth_series();
    let mut prev_edges = None::<usize>;
    for (tag, nodes, edges) in &series {
        let growth = prev_edges
            .map(|p| format!("{:+.1} %", 100.0 * (*edges as f64 - p as f64) / p as f64))
            .unwrap_or_else(|| "—".to_string());
        println!("{tag:<9} | {nodes:<8} | {edges:<8} | {growth}");
        prev_edges = Some(*edges);
    }

    let first = &series.first().expect("versions").0;
    let last = &series.last().expect("versions").0;
    let total_growth = {
        let a = series.first().unwrap().2 as f64;
        let b = series.last().unwrap().2 as f64;
        100.0 * (b - a) / a
    };
    println!("\ntotal growth {first} → {last}: {total_growth:+.1} % (paper: 20–30 %/year)");

    // Diff two consecutive releases — the change volume an operator reviews.
    let diff = warehouse.diff("2010.8", "2011.1").expect("diff");
    println!(
        "diff 2010.8 → 2011.1: {} added, {} removed ({} churn)",
        diff.added.len(),
        diff.removed.len(),
        diff.churn()
    );
}
