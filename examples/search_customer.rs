//! The paper's running example at corpus scale: search for "customer"
//! across a synthetic banking landscape, with the Figure 6 grouped output,
//! hierarchy-class filters, area filters, and synonym expansion.
//!
//! Run with: `cargo run --release --example search_customer`

use metadata_warehouse::core::model::Area;
use metadata_warehouse::core::report;
use metadata_warehouse::core::search::SearchRequest;
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::corpus::{generate, CorpusConfig};
use metadata_warehouse::rdf::vocab;
use metadata_warehouse::rdf::Term;

fn main() {
    println!("generating a medium banking landscape …");
    let corpus = generate(&CorpusConfig::medium());
    println!(
        "  {} ontology triples, {} fact triples",
        corpus.ontology.len(),
        corpus.facts.len()
    );

    let mut warehouse = MetadataWarehouse::new();
    warehouse.ingest(corpus.into_extracts()).expect("ingest");
    let stats = warehouse.build_semantic_index().expect("index");
    println!(
        "  semantic index: {} derived triples ({} rules fired)\n",
        stats.derived,
        stats.per_rule.len()
    );

    // Plain search, grouped like the Figure 6 frontend. At corpus scale
    // this produces many groups; show the top of the table.
    let results = warehouse
        .search(&SearchRequest::new("customer"))
        .expect("search");
    let rendered = report::render_search("customer", &results);
    for line in rendered.lines().take(18) {
        println!("{line}");
    }
    println!("  … ({} groups total)\n", results.groups.len());

    // Narrowed by a hierarchy-class filter (only DWH items).
    let filtered = warehouse
        .search(
            &SearchRequest::new("customer")
                .filter_class(Term::iri(vocab::cs::dm("DWH_Item"))),
        )
        .expect("search");
    println!(
        "filtered to DWH items: {} instances in {} groups",
        filtered.instance_count(),
        filtered.groups.len()
    );

    // Narrowed further to the integration area (Figure 2's middle stage).
    let in_integration = warehouse
        .search(
            &SearchRequest::new("customer")
                .filter_class(Term::iri(vocab::cs::dm("DWH_Item")))
                .in_area(Area::Integration),
        )
        .expect("search");
    println!(
        "… and in the Integration area: {} instances",
        in_integration.instance_count()
    );

    // Synonym expansion (the DBpedia import of Section III.B): "client"
    // also finds customers and partners.
    let plain = warehouse.search(&SearchRequest::new("client")).expect("search");
    let expanded = warehouse
        .search(&SearchRequest::new("client").with_synonyms())
        .expect("search");
    println!(
        "\nsynonym expansion for \"client\": {} → {} instances (terms: {})",
        plain.instance_count(),
        expanded.instance_count(),
        expanded.expanded_terms.join(", ")
    );

    // The three-step algorithm trace of Figure 5, on the filtered search.
    println!("\n{}", report::render_search_trace(&in_integration));
}
