//! The paper's two SPARQL listings, verbatim in shape, through the
//! `SEM_MATCH`-style API.
//!
//! Listing 1 — search for the term 'customer', grouped by class.
//! Listing 2 — lineage from `dwh:client_information_id` along `isMappedTo`.
//!
//! Run with: `cargo run --example sparql_listings`

use metadata_warehouse::corpus::fig2;
use metadata_warehouse::rdf::vocab;
use metadata_warehouse::sparql::SemMatch;

fn main() {
    // The fixture is the exact Figure 2/3 landscape the listings assume.
    let warehouse = fig2::warehouse();

    // ---- Listing 1 ---------------------------------------------------------
    // SELECT class, object FROM TABLE(SEM_MATCH(
    //   '{?object rdf:type ?c . ?c rdfs:label ?class .
    //     ?c rdfs:subClassOf dm:Application1_Item .
    //     ?object dm:hasName ?term}',
    //   SEM_MODELS('DWH_CURR'), SEM_RULEBASES('OWLPRIME'), …))
    // WHERE regexp_like(term, 'customer', 'i') GROUP BY class, object
    let listing1 = SemMatch::new(
        "{ ?object rdf:type ?c .
           ?c rdfs:label ?class .
           ?c rdfs:subClassOf dm:Application1_Item .
           ?object dm:hasName ?term }",
    )
    .rulebase("OWLPRIME")
    .alias("dm", vocab::cs::DM)
    .select(&["?class", "?object"])
    .filter("regex(?term, \"customer\", \"i\")")
    .group_by(&["?class", "?object"])
    .order_by(&["?class"]);

    println!("Listing 1 as SPARQL:\n{}\n", listing1.to_sparql());
    let out = warehouse.sem_match(&listing1).expect("listing 1");
    println!("{}", out.to_table());

    // ---- Listing 2 ---------------------------------------------------------
    // SELECT source_id, target_id, target_name FROM TABLE(SEM_MATCH(
    //   '{?source_id dt:isMappedTo ?target_id .
    //     ?target_id rdf:type dm:Application1_Item .
    //     ?target_id dm:hasName ?target_name}', …))
    // WHERE source_id = '…/dwh/client_information_id'
    let listing2 = SemMatch::new(
        "{ ?source_id dt:isMappedTo ?target_id .
           ?target_id rdf:type dm:Application1_Item .
           ?target_id dm:hasName ?target_name }",
    )
    .rulebase("OWLPRIME")
    .alias("dm", vocab::cs::DM)
    .alias("dt", vocab::cs::DT)
    .alias("dwh", vocab::cs::DWH)
    .select(&["?source_id", "?target_id", "?target_name"])
    .filter("?source_id = dwh:client_information_id")
    .group_by(&["?source_id", "?target_id", "?target_name"]);

    println!("Listing 2 as SPARQL:\n{}\n", listing2.to_sparql());
    let out = warehouse.sem_match(&listing2).expect("listing 2");
    println!("{}", out.to_table());
    println!(
        "(empty at one hop: the direct target partner_id is not an \
         Application1_Item — the provenance tool iterates the path)\n"
    );

    // The iterated `(isMappedTo)*` step, as the provenance tool executes it:
    // deepen the pattern by one hop and re-run.
    let listing2_hop2 = SemMatch::new(
        "{ ?source_id dt:isMappedTo ?via .
           ?via dt:isMappedTo ?target_id .
           ?target_id rdf:type dm:Application1_Item .
           ?target_id dm:hasName ?target_name }",
    )
    .rulebase("OWLPRIME")
    .alias("dm", vocab::cs::DM)
    .alias("dt", vocab::cs::DT)
    .alias("dwh", vocab::cs::DWH)
    .select(&["?source_id", "?target_id", "?target_name"])
    .filter("?source_id = dwh:client_information_id")
    .group_by(&["?source_id", "?target_id", "?target_name"]);
    let out = warehouse.sem_match(&listing2_hop2).expect("listing 2, hop 2");
    println!("after one iteration of (isMappedTo)*:\n{}", out.to_table());

    // Figure 8's regular expression — `(isMappedTo)* rdf:type` — written
    // directly as a SPARQL 1.1 property path:
    let path_form = SemMatch::new(
        "{ ?source_id dt:isMappedTo* ?target_id .
           ?target_id rdf:type dm:Application1_Item .
           ?target_id dm:hasName ?target_name }",
    )
    .rulebase("OWLPRIME")
    .alias("dm", vocab::cs::DM)
    .alias("dt", vocab::cs::DT)
    .alias("dwh", vocab::cs::DWH)
    .select(&["?source_id", "?target_id", "?target_name"])
    .filter("?source_id = dwh:client_information_id")
    .group_by(&["?source_id", "?target_id", "?target_name"]);
    let out = warehouse.sem_match(&path_form).expect("path form");
    println!("as one property path (dt:isMappedTo*):\n{}", out.to_table());

    // Listing 2's filter only matches the direct hop; the provenance tool
    // iterates `(isMappedTo)*` — show the multi-hop service next to it.
    let fx = fig2::fixture();
    let lineage = warehouse
        .lineage(
            &metadata_warehouse::core::lineage::LineageRequest::downstream(
                fx.client_information_id,
            )
            .filter_class(metadata_warehouse::rdf::Term::iri(
                vocab::cs::dm("Application1_Item"),
            )),
        )
        .expect("lineage");
    println!(
        "(isMappedTo)* rdf:type from client_information_id reaches: {}",
        lineage
            .endpoints
            .iter()
            .map(|e| e.node.label().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
