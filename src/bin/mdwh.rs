//! `mdwh` — a command-line frontend for the meta-data warehouse.
//!
//! The paper's warehouse has a web frontend (Figures 6 and 7); this CLI is
//! the open-source equivalent: generate a landscape, persist it, and ask it
//! the paper's questions from the shell.
//!
//! ```text
//! mdwh generate --scale medium --out ./mdw-data [--seed N] [--extended]
//! mdwh info     --store ./mdw-data
//! mdwh census   --store ./mdw-data
//! mdwh search   --store ./mdw-data customer [--synonyms] [--area Integration]
//! mdwh lineage  --store ./mdw-data dwh_stage0_item0 [--upstream] [--depth N]
//!               [--rule-filter "segment = 'PB'"]
//! mdwh audit    --store ./mdw-data dwh_stage2_item0
//! mdwh sparql   --store ./mdw-data 'SELECT ?x WHERE { ?x a dm:Application }'
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use metadata_warehouse::core::admission::AdmissionConfig;
use metadata_warehouse::core::answer::AnswerRequest;
use metadata_warehouse::core::budget::{Completeness, MonotonicTime, QueryBudget};
use metadata_warehouse::rdf::ParallelPolicy;
use metadata_warehouse::core::error::MdwError;
use metadata_warehouse::core::governance::render_access;
use metadata_warehouse::core::lineage::LineageRequest;
use metadata_warehouse::core::model::Area;
use metadata_warehouse::core::report;
use metadata_warehouse::core::search::SearchRequest;
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::corpus::{generate, CorpusConfig, Scale};
use metadata_warehouse::rdf::failpoint;
use metadata_warehouse::rdf::journal::{Journal, JournalOp};
use metadata_warehouse::rdf::lsm::{LsmConfig, LsmStore};
use metadata_warehouse::rdf::persist::{self, load_store, save_store};
use metadata_warehouse::rdf::vocab;
use metadata_warehouse::rdf::{FailSpec, RdfError, Term};
use metadata_warehouse::serve::{client, epoll, serve, signal, ServerConfig};
use metadata_warehouse::sparql::SemMatch;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mdwh: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  mdwh generate --scale small|medium|paper --out DIR [--seed N] [--extended]
  mdwh info     --store DIR
  mdwh census   --store DIR
  mdwh search   --store DIR TERM [--synonyms] [--area NAME] [--class LOCAL]
                [--threads N]
  mdwh answer   --store DIR \"KEYWORDS\" [--top-k N] [--explain]
                [--deadline-ms MS] [--max-rows N] [--max-steps N] [--threads N]
  mdwh lineage  --store DIR ITEM [--upstream] [--depth N] [--rule-filter STR]
                [--threads N]
  mdwh audit    --store DIR ITEM
  mdwh gaps     --store DIR
  mdwh sources  --store DIR CONCEPT
  mdwh sparql   --store DIR QUERY [--no-rulebase] [--threads N]
                [--explain] [--no-planner]
  mdwh fsck     --store DIR
  mdwh recover  --store DIR
  mdwh serve    [--store DIR] [--addr HOST:PORT] [--quota N] [--max-conns N]
                [--workers N] [--deadline-ms MS] [--drain-grace-ms MS]
                [--no-admission]
  mdwh drill overload [--store DIR] [--threads N] [--requests N] [--quota N]
                      [--expect-shed]
  mdwh drill overload --writer-race [--threads N] [--writes N]
  mdwh drill wire [--addr HOST:PORT] [--connections N] [--requests N]
                  [--quota N] [--tenants N] [--max-conns N] [--deadline-ms MS]
                  [--no-admission] [--expect-shed] [--rss-ceiling-kb N]
  mdwh drill crash [--writers N] [--readers N] [--batches N] [--batch-size N]
                   [--failpoint NAME] [--memtable N] [--stall-runs N]
                   [--stall-deadline-ms MS]

Serving: `mdwh serve` answers GET /search?q=, /lineage?item=, /sparql?query=
as streamed ndjson over HTTP/1.1 keep-alive; X-Deadline-Ms / X-Max-Rows /
X-Tenant headers map to a query budget and a per-tenant admission gate, and
GET /admin/stats reports the event loop's counters (accepted, timeouts by
state, keep-alive reuses, accept backoffs). SIGTERM drains gracefully:
in-flight responses finish (or return truthful truncated prefixes), then
the process exits.

Query budgets: search, lineage, and sparql accept --deadline-ms MS,
--max-rows N, and --max-steps N; a blown budget returns the partial
answer tagged `truncated` instead of an error.

Parallelism: query commands accept --threads N (default: the
MDW_PAR_THREADS env var, else 1) to split frozen-snapshot scans across
worker threads; results are bit-identical to sequential execution.

Planning: sparql orders joins by frozen-index statistics. --explain
prints the chosen plan (estimated vs observed rows per pattern, pushed
filters); --no-planner runs patterns in written order instead.

Fault drills: --inject 'name=spec,…' (or MDWH_FAILPOINTS env) arms
failpoints; spec is once | times:N | always | pct:P[:SEED].";

/// Minimal flag parser: collects `--key value` pairs, `--flag` booleans,
/// and bare positionals.
struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
    flags: Vec<String>,
}

const VALUE_FLAGS: &[&str] = &[
    "--scale", "--out", "--seed", "--store", "--area", "--class", "--depth", "--rule-filter",
    "--inject", "--deadline-ms", "--max-rows", "--max-steps", "--threads", "--requests",
    "--quota", "--writes", "--addr", "--connections", "--max-conns", "--drain-grace-ms",
    "--tenants", "--writers", "--readers", "--batches", "--batch-size", "--failpoint",
    "--memtable", "--stall-runs", "--stall-deadline-ms", "--workers", "--rss-ceiling-kb",
    "--top-k",
];

fn parse_args(args: &[String]) -> Args {
    let mut parsed = Args { positional: Vec::new(), options: Vec::new(), flags: Vec::new() };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(stripped) = arg.strip_prefix("--") {
            if VALUE_FLAGS.contains(&arg.as_str()) {
                if let Some(value) = iter.next() {
                    parsed.options.push((stripped.to_string(), value.clone()));
                }
            } else {
                parsed.flags.push(stripped.to_string());
            }
        } else {
            parsed.positional.push(arg.clone());
        }
    }
    parsed
}

impl Args {
    fn option(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(USAGE.to_string());
    };
    let parsed = parse_args(rest);
    arm_failpoints(&parsed)?;
    match command.as_str() {
        "generate" => cmd_generate(&parsed),
        "fsck" => cmd_fsck(&parsed),
        "recover" => cmd_recover(&parsed),
        "info" => cmd_info(&parsed),
        "census" => cmd_census(&parsed),
        "search" => cmd_search(&parsed),
        "answer" => cmd_answer(&parsed),
        "lineage" => cmd_lineage(&parsed),
        "audit" => cmd_audit(&parsed),
        "gaps" => cmd_gaps(&parsed),
        "sources" => cmd_sources(&parsed),
        "sparql" => cmd_sparql(&parsed),
        "serve" => cmd_serve(&parsed),
        "drill" => cmd_drill(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command: {other}\n{USAGE}")),
    }
}

/// Arms fault-injection failpoints from `--inject` and the
/// `MDWH_FAILPOINTS` environment variable (fault drills: run a real
/// command while the persistence layer misbehaves on purpose).
fn arm_failpoints(args: &Args) -> Result<(), String> {
    if let Ok(list) = std::env::var("MDWH_FAILPOINTS") {
        let names = failpoint::arm_from_list(&list)?;
        if !names.is_empty() {
            eprintln!("mdwh: armed failpoints from env: {}", names.join(", "));
        }
    }
    if let Some(list) = args.option("inject") {
        let names = failpoint::arm_from_list(list)?;
        if !names.is_empty() {
            eprintln!("mdwh: armed failpoints: {}", names.join(", "));
        }
    }
    Ok(())
}

fn cmd_fsck(args: &Args) -> Result<(), String> {
    let dir = PathBuf::from(args.option("store").ok_or("missing --store DIR")?);
    let report = persist::fsck(&dir).map_err(|e| e.to_string())?;
    match &report.snapshot {
        Some(info) => println!(
            "snapshot: v{} generation {} (journal seq {})",
            info.version, info.generation, info.journal_seq
        ),
        None => println!("snapshot: none"),
    }
    for model in &report.models {
        match (&model.problem, model.triples) {
            (Some(problem), _) => println!("  model {} [{}]: {problem}", model.name, model.file),
            (None, Some(n)) => println!("  model {} [{}]: ok, {n} triples", model.name, model.file),
            (None, None) => println!("  model {} [{}]: ok", model.name, model.file),
        }
    }
    println!(
        "journal:  {} committed batch(es), {} torn byte(s)",
        report.committed_batches, report.torn_bytes
    );
    if report.clean() {
        println!("clean");
        Ok(())
    } else {
        for issue in &report.issues {
            println!("issue: {issue}");
        }
        Err(format!("{} issue(s) found", report.issues.len()))
    }
}

fn cmd_recover(args: &Args) -> Result<(), String> {
    let dir = PathBuf::from(args.option("store").ok_or("missing --store DIR")?);
    let (store, report) = persist::recover(&dir).map_err(|e| e.to_string())?;
    let gen = report
        .snapshot_generation
        .map_or_else(|| "none".to_string(), |g| g.to_string());
    println!(
        "recovered: snapshot gen {} (seq {}), replayed {} batch(es) / {} op(s), truncated {} torn byte(s)",
        gen,
        report.snapshot_seq,
        report.replayed_batches,
        report.replayed_ops,
        report.truncated_bytes,
    );
    // Make the repair durable: fold the replayed state into a fresh
    // snapshot and rebase the journal.
    let save = persist::save_snapshot(&store, &dir, report.last_seq).map_err(|e| e.to_string())?;
    let mut journal = Journal::open(&dir).map_err(|e| e.to_string())?;
    journal.reset(report.last_seq).map_err(|e| e.to_string())?;
    println!(
        "checkpointed {} triples across {} model(s) as generation {}",
        save.total(),
        save.models.len(),
        save.generation
    );
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let scale = match args.option("scale").unwrap_or("medium") {
        "small" => Scale::Small,
        "medium" => Scale::Medium,
        "paper" => Scale::Paper,
        other => return Err(format!("unknown scale: {other}")),
    };
    let out = PathBuf::from(args.option("out").ok_or("generate needs --out DIR")?);
    let mut config = CorpusConfig::preset(scale);
    if let Some(seed) = args.option("seed") {
        config.seed = seed.parse().map_err(|_| format!("bad seed: {seed}"))?;
    }
    if args.flag("extended") {
        config.extended_scope = true;
    }
    eprintln!("generating {scale:?} corpus (seed {}) …", config.seed);
    let corpus = generate(&config);
    let mut warehouse = MetadataWarehouse::new();
    let report = warehouse
        .ingest(corpus.into_extracts())
        .map_err(|e| e.to_string())?;
    eprintln!(
        "loaded {} triples ({} duplicates, {} rejected)",
        report.load.loaded,
        report.load.duplicates,
        report.load.rejections.len()
    );
    let save = save_store(warehouse.store(), &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} triples across {} model(s) to {}",
        save.total(),
        save.models.len(),
        out.display()
    );
    Ok(())
}

/// Loads a persisted store and builds the semantic index.
fn open_warehouse(args: &Args) -> Result<MetadataWarehouse, String> {
    let dir = PathBuf::from(args.option("store").ok_or("missing --store DIR")?);
    let store = load_store(&dir).map_err(|e| e.to_string())?;
    let model = if store.has_model("DWH_CURR") {
        "DWH_CURR".to_string()
    } else {
        store
            .model_names()
            .first()
            .map(|s| s.to_string())
            .ok_or("store holds no models")?
    };
    let mut warehouse =
        MetadataWarehouse::from_store(store, &model).map_err(|e| e.to_string())?;
    warehouse.build_semantic_index().map_err(|e| e.to_string())?;
    warehouse.set_parallelism(parallelism_from_args(args)?);
    Ok(warehouse)
}

/// Worker-thread policy from `--threads N`; defaults to the
/// `MDW_PAR_THREADS` environment variable, else sequential. Parallelism
/// only changes wall-clock time — query results are bit-identical.
fn parallelism_from_args(args: &Args) -> Result<ParallelPolicy, String> {
    match args.option("threads") {
        Some(n) => {
            let n: usize = n.parse().map_err(|_| format!("bad --threads: {n}"))?;
            Ok(ParallelPolicy::new(n))
        }
        None => Ok(ParallelPolicy::from_env()),
    }
}

/// Builds a query budget from `--deadline-ms`, `--max-rows`, and
/// `--max-steps` (unlimited when none are given).
fn budget_from_args(args: &Args) -> Result<QueryBudget, String> {
    let mut budget = QueryBudget::unlimited();
    if let Some(ms) = args.option("deadline-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("bad --deadline-ms: {ms}"))?;
        budget = budget.with_deadline(Duration::from_millis(ms), Arc::new(MonotonicTime::new()));
    }
    if let Some(n) = args.option("max-rows") {
        budget = budget.with_max_rows(n.parse().map_err(|_| format!("bad --max-rows: {n}"))?);
    }
    if let Some(n) = args.option("max-steps") {
        budget = budget.with_max_steps(n.parse().map_err(|_| format!("bad --max-steps: {n}"))?);
    }
    Ok(budget)
}

/// Prints the overload-protection verdicts after a query's regular output.
fn note_verdicts(completeness: &Completeness, degraded: bool) {
    if let Some(reason) = completeness.reason() {
        println!("note: result truncated ({reason}) — a valid partial answer");
    }
    if degraded {
        println!("note: degraded answer (semantic index bypassed; no inferred facts)");
    }
}

/// Resolves a user-supplied item name: a full IRI, or a local name in the
/// `dwh` instance namespace.
fn resolve_item(name: &str) -> Term {
    if name.starts_with("http://") || name.starts_with("https://") {
        Term::iri(name)
    } else {
        Term::iri(vocab::cs::dwh(name))
    }
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let warehouse = open_warehouse(args)?;
    let stats = warehouse.stats().map_err(|e| e.to_string())?;
    println!("model:   {}", warehouse.model_name());
    println!("nodes:   {}", stats.nodes);
    println!("edges:   {}", stats.edges);
    println!("derived: {} (semantic index)", warehouse.derived_count());
    println!(
        "models on disk: {}",
        warehouse.store().model_names().join(", ")
    );
    Ok(())
}

fn cmd_census(args: &Args) -> Result<(), String> {
    let warehouse = open_warehouse(args)?;
    let census = warehouse.census().map_err(|e| e.to_string())?;
    print!("{}", report::render_census(&census));
    Ok(())
}

fn cmd_search(args: &Args) -> Result<(), String> {
    let term = args
        .positional
        .first()
        .ok_or("search needs a TERM argument")?;
    let warehouse = open_warehouse(args)?;
    let mut request = SearchRequest::new(term.clone());
    if args.flag("synonyms") {
        request = request.with_synonyms();
    }
    if let Some(area) = args.option("area") {
        request = request.in_area(match area {
            "Inbound" | "DWH Inbound Interface" => Area::InboundInterface,
            "Integration" => Area::Integration,
            "DataMart" | "Data Mart" => Area::DataMart,
            other => Area::Other(other.to_string()),
        });
    }
    if let Some(class) = args.option("class") {
        request = request.filter_class(Term::iri(vocab::cs::dm(class)));
    }
    request = request.with_budget(budget_from_args(args)?);
    let results = warehouse.search(&request).map_err(|e| e.to_string())?;
    print!("{}", report::render_search(term, &results));
    note_verdicts(&results.completeness, results.degraded);
    Ok(())
}

fn cmd_answer(args: &Args) -> Result<(), String> {
    let keywords = args
        .positional
        .first()
        .ok_or("answer needs a KEYWORDS argument, e.g. mdwh answer \"risk exposure trader\"")?;
    let warehouse = open_warehouse(args)?;
    let mut request = AnswerRequest::new(keywords.clone()).with_budget(budget_from_args(args)?);
    if let Some(k) = args.option("top-k") {
        request = request.with_top_k(k.parse().map_err(|_| format!("bad --top-k: {k}"))?);
    }
    let result = warehouse.answer(&request).map_err(|e| e.to_string())?;

    println!("keywords: {}", result.tokens.join(" "));
    if !result.matches.is_empty() {
        println!("matched:");
        for m in result.matches.iter().take(8) {
            println!(
                "  {} -> {} (\"{}\", score {})",
                m.token,
                m.node.label(),
                m.label,
                m.score
            );
        }
    }
    if !result.unmatched_tokens.is_empty() {
        println!("filtered by name: {}", result.unmatched_tokens.join(" "));
    }
    println!("candidates ({} planned, {} executed):", result.candidates.len(), result.executed.len());
    for (i, c) in result.candidates.iter().enumerate() {
        let ran = if i < result.executed.len() { "*" } else { " " };
        println!(
            " {ran}[{i}] rank {} covers {} hops {} est {}  {}",
            c.rank,
            c.covered_tokens,
            c.hops,
            c.estimate,
            compact_sparql(&c.sparql)
        );
    }
    println!("answers ({}):", result.answers.len());
    for a in &result.answers {
        println!("  {}  ({}, via candidate {})", a.name, a.instance.label(), a.candidate);
    }
    if args.flag("explain") {
        for (i, ex) in result.executed.iter().enumerate() {
            println!("candidate {i}: {} ({} row(s))", compact_sparql(&ex.sparql), ex.rows);
            print!("{}", ex.report.to_text());
        }
    }
    note_verdicts(&result.completeness, result.degraded);
    Ok(())
}

/// One-line rendering of a generated candidate: the `WHERE` pattern only,
/// with the IRI boilerplate (prefix block, select head) dropped.
fn compact_sparql(sparql: &str) -> String {
    let mut inside = false;
    let mut parts: Vec<&str> = Vec::new();
    for line in sparql.lines() {
        let line = line.trim();
        if line.starts_with("WHERE") {
            inside = true;
            continue;
        }
        if inside {
            if line == "}" {
                break;
            }
            parts.push(line);
        }
    }
    if parts.is_empty() {
        sparql.split_whitespace().collect::<Vec<_>>().join(" ")
    } else {
        format!("{{ {} }}", parts.join(" "))
    }
}

fn cmd_lineage(args: &Args) -> Result<(), String> {
    let item = args
        .positional
        .first()
        .ok_or("lineage needs an ITEM argument")?;
    let warehouse = open_warehouse(args)?;
    let start = resolve_item(item);
    let mut request = if args.flag("upstream") {
        LineageRequest::upstream(start)
    } else {
        LineageRequest::downstream(start)
    };
    if let Some(depth) = args.option("depth") {
        request = request.max_depth(depth.parse().map_err(|_| format!("bad depth: {depth}"))?);
    }
    if let Some(filter) = args.option("rule-filter") {
        request = request.with_rule_filter(filter);
    }
    request = request.with_budget(budget_from_args(args)?);
    let result = warehouse.lineage(&request).map_err(|e| e.to_string())?;
    print!("{}", report::render_lineage(&result));
    note_verdicts(&result.completeness, result.degraded);
    Ok(())
}

fn cmd_audit(args: &Args) -> Result<(), String> {
    let item = args
        .positional
        .first()
        .ok_or("audit needs an ITEM argument")?;
    let warehouse = open_warehouse(args)?;
    let report = warehouse
        .who_can_access(&resolve_item(item))
        .map_err(|e| e.to_string())?;
    print!("{}", render_access(&report));
    Ok(())
}

fn cmd_gaps(args: &Args) -> Result<(), String> {
    let warehouse = open_warehouse(args)?;
    let gaps = warehouse.governance_gaps().map_err(|e| e.to_string())?;
    println!(
        "data-mart items inspected: {}  |  ownerless: {}  |  coverage: {:.1} %",
        gaps.inspected,
        gaps.ownerless.len(),
        gaps.coverage() * 100.0
    );
    for item in gaps.ownerless.iter().take(20) {
        println!("  {}", item.label());
    }
    if gaps.ownerless.len() > 20 {
        println!("  … and {} more", gaps.ownerless.len() - 20);
    }
    Ok(())
}

fn cmd_sources(args: &Args) -> Result<(), String> {
    let concept = args
        .positional
        .first()
        .ok_or("sources needs a CONCEPT argument (e.g. Party or Customer)")?;
    let warehouse = open_warehouse(args)?;
    let concept_term = if concept.starts_with("http://") || concept.starts_with("https://") {
        Term::iri(concept.clone())
    } else {
        Term::iri(vocab::cs::dm(concept))
    };
    let result = warehouse
        .find_sources(&concept_term)
        .map_err(|e| e.to_string())?;
    print!(
        "{}",
        metadata_warehouse::core::assist::render_sources(&result)
    );
    Ok(())
}

fn cmd_sparql(args: &Args) -> Result<(), String> {
    let pattern_or_query = args
        .positional
        .first()
        .ok_or("sparql needs a QUERY argument")?;
    let warehouse = open_warehouse(args)?;
    // Full SELECT queries run through the parser directly; bare `{ … }`
    // patterns go through SemMatch with the standard aliases.
    let upper = pattern_or_query.trim_start().to_uppercase();
    let is_full_query =
        upper.starts_with("SELECT") || upper.starts_with("PREFIX") || upper.starts_with("ASK");
    let budget = budget_from_args(args)?;
    let use_planner = !args.flag("no-planner");
    let (output, report) = if is_full_query {
        let query = metadata_warehouse::sparql::parser::parse(&with_default_prefixes(
            pattern_or_query,
        ))
        .map_err(|e| e.to_string())?;
        let graph = warehouse
            .store()
            .model(warehouse.model_name())
            .map_err(|e| e.to_string())?;
        metadata_warehouse::sparql::exec::execute_explained(
            &query,
            graph,
            warehouse.store().dict(),
            &budget,
            warehouse.parallelism(),
            use_planner,
        )
        .map_err(|e| e.to_string())?
    } else {
        let mut sem = SemMatch::new(pattern_or_query.clone())
            .alias("dm", vocab::cs::DM)
            .alias("dt", vocab::cs::DT)
            .alias("dwh", vocab::cs::DWH);
        if !args.flag("no-rulebase") {
            sem = sem.rulebase("OWLPRIME");
        }
        warehouse
            .sem_match_explained(&sem, &budget, use_planner)
            .map_err(|e| e.to_string())?
    };
    print!("{}", output.to_table());
    println!("({} rows)", output.rows.len());
    if args.flag("explain") {
        print!("{}", report.to_text());
    }
    note_verdicts(&output.completeness, output.degraded);
    Ok(())
}

fn cmd_drill(args: &Args) -> Result<(), String> {
    match args.positional.first().map(String::as_str) {
        Some("overload") => drill_overload(args),
        Some("wire") => drill_wire(args),
        Some("crash") => drill_crash(args),
        Some(other) => Err(format!(
            "unknown drill: {other} (available: overload, wire, crash)"
        )),
        None => Err("drill needs a drill name: overload, wire, or crash".to_string()),
    }
}

/// The warehouse a drill runs against: the persisted store when `--store`
/// is given, otherwise a freshly generated small synthetic corpus.
fn drill_warehouse(args: &Args) -> Result<MetadataWarehouse, String> {
    if args.option("store").is_some() {
        return open_warehouse(args);
    }
    let mut config = CorpusConfig::preset(Scale::Small);
    if let Some(seed) = args.option("seed") {
        config.seed = seed.parse().map_err(|_| format!("bad seed: {seed}"))?;
    }
    eprintln!("mdwh: no --store given, generating a small synthetic corpus");
    let corpus = generate(&config);
    let mut warehouse = MetadataWarehouse::new();
    warehouse
        .ingest(corpus.into_extracts())
        .map_err(|e| e.to_string())?;
    warehouse.build_semantic_index().map_err(|e| e.to_string())?;
    warehouse.set_parallelism(ParallelPolicy::from_env());
    Ok(warehouse)
}

fn parse_or<T: std::str::FromStr>(args: &Args, key: &str, default: T) -> Result<T, String> {
    match args.option(key) {
        Some(v) => v.parse().map_err(|_| format!("bad --{key}: {v}")),
        None => Ok(default),
    }
}

/// The overload drill: hammer one warehouse from many threads with a mixed
/// search/lineage/sparql/answer load behind a deliberately small admission
/// gate,
/// then report latency percentiles and the shed rate. Every request either
/// completes (possibly truncated by its deadline) or is shed with a typed
/// `Overloaded` — the drill fails if anything panics or errors otherwise.
fn drill_overload(args: &Args) -> Result<(), String> {
    if args.flag("writer-race") {
        return drill_writer_race(args);
    }
    let threads: usize = parse_or(args, "threads", 8)?;
    let requests: usize = parse_or(args, "requests", 32)?;
    let quota: usize = parse_or(args, "quota", 2)?;
    let deadline_ms: u64 = parse_or(args, "deadline-ms", 50)?;

    let mut warehouse = drill_warehouse(args)?;
    warehouse.enable_admission(AdmissionConfig {
        max_queued: 0,
        max_wait: Duration::ZERO,
        ..AdmissionConfig::with_quotas(quota, quota)
    });

    eprintln!(
        "overload drill: {threads} thread(s) × {requests} request(s), \
         concurrency quota {quota}, per-request deadline {deadline_ms} ms"
    );

    let warehouse = &warehouse;
    // All workers start together: the first wave alone oversubscribes the
    // quota, so a forced-low gate sheds deterministically.
    let start = &std::sync::Barrier::new(threads);
    let mut latencies_us: Vec<u64> = Vec::new();
    let mut retry_after_ms: Vec<u64> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(requests);
                    let mut retries = Vec::new();
                    let mut errs = Vec::new();
                    start.wait();
                    for i in 0..requests {
                        let budget = QueryBudget::unlimited().with_deadline(
                            Duration::from_millis(deadline_ms),
                            Arc::new(MonotonicTime::new()),
                        );
                        let started = std::time::Instant::now();
                        let outcome: Result<(), MdwError> = match (t + i) % 4 {
                            0 => warehouse
                                .search(&SearchRequest::new("client").with_budget(budget))
                                .map(|_| ()),
                            1 => warehouse
                                .lineage(
                                    &LineageRequest::downstream(resolve_item("dwh_stage0_item0"))
                                        .with_budget(budget),
                                )
                                .map(|_| ()),
                            2 => warehouse
                                .answer(
                                    &AnswerRequest::new("customer report").with_budget(budget),
                                )
                                .map(|_| ()),
                            // A deliberately heavy cross join: it runs to
                            // its deadline and comes back truncated, so the
                            // permit is held long enough to create real
                            // contention at the gate.
                            _ => warehouse
                                .sem_match_with_budget(
                                    &SemMatch::new("{ ?a ?p ?b . ?c ?q ?d }")
                                        .rulebase("OWLPRIME")
                                        .select(&["?a", "?d"]),
                                    &budget,
                                )
                                .map(|_| ()),
                        };
                        match outcome {
                            Ok(()) => lat.push(started.elapsed().as_micros() as u64),
                            // The shed's back-off hint scales with queue
                            // depth — collect the distribution.
                            Err(MdwError::Overloaded(o)) => {
                                retries.push(o.retry_after.as_millis() as u64);
                            }
                            Err(other) => errs.push(other.to_string()),
                        }
                    }
                    (lat, retries, errs)
                })
            })
            .collect();
        for handle in handles {
            let (lat, retries, errs) = handle.join().expect("drill worker panicked");
            latencies_us.extend(lat);
            retry_after_ms.extend(retries);
            errors.extend(errs);
        }
    });

    let stats = warehouse.admission_stats().expect("admission enabled");
    latencies_us.sort_unstable();
    println!("completed: {} request(s)", latencies_us.len());
    println!(
        "latency:   p50 {:.1} ms, p99 {:.1} ms",
        percentile_us(&latencies_us, 50.0) as f64 / 1000.0,
        percentile_us(&latencies_us, 99.0) as f64 / 1000.0,
    );
    println!(
        "admitted:  {} (search {}, lineage {}, sparql {}, answer {})",
        stats.total_admitted(),
        stats.admitted[0],
        stats.admitted[1],
        stats.admitted[2],
        stats.admitted[3],
    );
    println!(
        "shed:      {} (search {}, lineage {}, sparql {}, answer {})",
        stats.total_shed(),
        stats.shed[0],
        stats.shed[1],
        stats.shed[2],
        stats.shed[3],
    );
    if !retry_after_ms.is_empty() {
        retry_after_ms.sort_unstable();
        println!(
            "retry-after: min {} ms, p50 {} ms, p99 {} ms, max {} ms (over {} shed(s))",
            retry_after_ms[0],
            percentile_us(&retry_after_ms, 50.0),
            percentile_us(&retry_after_ms, 99.0),
            retry_after_ms[retry_after_ms.len() - 1],
            retry_after_ms.len(),
        );
    }
    if !errors.is_empty() {
        return Err(format!(
            "{} request(s) failed with unexpected errors, e.g.: {}",
            errors.len(),
            errors[0]
        ));
    }
    if args.flag("expect-shed") && stats.total_shed() == 0 {
        return Err("expected the gate to shed under forced-low quotas, but shed = 0".to_string());
    }
    Ok(())
}

/// The writer-race drill: reader threads spin on [`SharedStore::snapshot`]
/// (a lock-free load) while one writer loop publishes generations, each a
/// whole batch of triples. Every observed snapshot must be internally whole:
/// the fsck-style content checksum is stable, the triple count is a multiple
/// of the batch size (a torn publish would expose a partial batch), a full
/// scan agrees with the O(log n) exact count, and generations never go
/// backwards. A snapshot pinned before the first write must still verify
/// unchanged at the end. Any violation exits non-zero.
fn drill_writer_race(args: &Args) -> Result<(), String> {
    use metadata_warehouse::rdf::store::{SharedStore, Store};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let readers: usize = parse_or(args, "threads", 8)?;
    let writes: usize = parse_or(args, "writes", 64)?;
    const BATCH: usize = 16;
    const MODEL: &str = "DRILL_RACE";

    let mut store = Store::new();
    store.create_model(MODEL).map_err(|e| e.to_string())?;
    let shared = SharedStore::new(store);

    eprintln!(
        "writer-race drill: {readers} reader(s) racing 1 writer × {writes} \
         publish(es) of {BATCH}-triple batches"
    );

    // Pinned before the writer starts: whatever gets published, this handle
    // must keep reading generation 0 exactly as it was.
    let pinned = shared.snapshot();
    let pinned_checksum = pinned.model(MODEL).map_err(|e| e.to_string())?.checksum();

    let done = AtomicBool::new(false);
    let total_reads = AtomicU64::new(0);
    let violations: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        let shared = &shared;
        let done = &done;
        let total_reads = &total_reads;
        let violations = &violations;

        scope.spawn(move || {
            for round in 0..writes {
                shared.write(|store| {
                    for i in 0..BATCH {
                        store
                            .insert(
                                MODEL,
                                &Term::iri(format!("http://ex.org/race/s{round}_{i}")),
                                &Term::iri("http://ex.org/race/p"),
                                &Term::iri(format!("http://ex.org/race/o{round}_{i}")),
                            )
                            .expect("race insert");
                    }
                });
            }
            done.store(true, Ordering::Release);
        });

        for r in 0..readers {
            scope.spawn(move || {
                let mut last_generation = 0u64;
                let mut reads = 0u64;
                let report = |msg: String| violations.lock().unwrap().push(msg);
                while !done.load(Ordering::Acquire) || reads == 0 {
                    let snap = shared.snapshot();
                    reads += 1;
                    let generation = snap.generation();
                    if generation < last_generation {
                        report(format!(
                            "reader {r}: generation went backwards \
                             ({last_generation} -> {generation})"
                        ));
                        break;
                    }
                    last_generation = generation;
                    let graph = match snap.model(MODEL) {
                        Ok(g) => g,
                        Err(e) => {
                            report(format!("reader {r}: generation {generation}: {e}"));
                            break;
                        }
                    };
                    if graph.len() % BATCH != 0 {
                        report(format!(
                            "reader {r}: torn batch at generation {generation}: \
                             {} triples (not a multiple of {BATCH})",
                            graph.len()
                        ));
                        break;
                    }
                    let checksum = graph.checksum();
                    let scanned = graph.iter().count();
                    if scanned != graph.len() || checksum != graph.checksum() {
                        report(format!(
                            "reader {r}: inconsistent snapshot at generation \
                             {generation}: scan {scanned} vs len {}",
                            graph.len()
                        ));
                        break;
                    }
                }
                total_reads.fetch_add(reads, Ordering::Relaxed);
            });
        }
    });

    let final_snap = shared.snapshot();
    let final_len = final_snap.model(MODEL).map_err(|e| e.to_string())?.len();
    println!(
        "reads:       {} across {readers} reader(s)",
        total_reads.load(std::sync::atomic::Ordering::Relaxed)
    );
    println!(
        "generations: {} published, final model holds {final_len} triple(s)",
        final_snap.generation()
    );
    let pinned_graph = pinned.model(MODEL).map_err(|e| e.to_string())?;
    if pinned_graph.checksum() != pinned_checksum || !pinned_graph.is_empty() {
        return Err("pinned pre-write snapshot changed under the writer".to_string());
    }
    if final_len != writes * BATCH {
        return Err(format!(
            "writer lost updates: expected {} triples, found {final_len}",
            writes * BATCH
        ));
    }
    let violations = violations.into_inner().expect("no poisoned reader");
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        return Err(format!("{} torn-read violation(s)", violations.len()));
    }
    println!("zero torn reads: every snapshot verified whole (checksum + batch invariant)");
    Ok(())
}

/// `mdwh serve`: the long-lived query server. Binds, prints the address,
/// then runs until SIGTERM/SIGINT (or an admin drain), at which point it
/// walks the graceful-drain ladder: stop accepting, let in-flight requests
/// finish for the drain grace, cancel stragglers (their clients still get
/// complete frames with truthful truncated summaries), and exit 0.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let warehouse = drill_warehouse(args)?.into_shared();
    let mut config = ServerConfig {
        addr: args.option("addr").unwrap_or("127.0.0.1:7878").to_string(),
        ..ServerConfig::default()
    };
    config.max_connections = parse_or(args, "max-conns", config.max_connections)?;
    config.workers = parse_or(args, "workers", config.workers)?.max(1);
    if let Some(ms) = args.option("deadline-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("bad --deadline-ms: {ms}"))?;
        config.default_deadline = Duration::from_millis(ms);
    }
    if let Some(ms) = args.option("drain-grace-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("bad --drain-grace-ms: {ms}"))?;
        config.drain_grace = Duration::from_millis(ms);
    }
    if args.flag("no-admission") {
        config.admission = None;
    } else if let Some(quota) = args.option("quota") {
        let quota: usize = quota.parse().map_err(|_| format!("bad --quota: {quota}"))?;
        config.admission = Some(AdmissionConfig::with_quotas(quota, quota));
    }
    let grace = config.drain_grace;

    signal::install_termination_handler();
    let mut handle = serve(warehouse, config).map_err(|e| format!("bind failed: {e}"))?;
    println!("mdw-serve listening on {}", handle.addr());
    eprintln!("mdwh: GET /search?q= /lineage?item= /sparql?query= /stats /healthz; SIGTERM drains");

    while !signal::termination_requested() && !handle.state().drain.is_draining() {
        std::thread::sleep(Duration::from_millis(25));
    }
    eprintln!("mdwh: draining (grace {} ms) …", grace.as_millis());
    let cancelled = handle.drain(grace);
    let counters = &handle.state().counters;
    let load = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "drained: served {}, shed {}, wire errors {}, panics {}, cancelled in-flight {}",
        load(&counters.served),
        load(&counters.sheds),
        load(&counters.wire_errors),
        load(&counters.panics),
        cancelled,
    );
    println!(
        "timeouts: head {}, write-stall {}, idle reaped {}; keep-alive reuses {}",
        load(&counters.head_timeouts),
        load(&counters.write_stall_timeouts),
        load(&counters.idle_reaped),
        load(&counters.keepalive_reuses),
    );
    Ok(())
}

/// `mdwh drill wire`: the client-side load drill. Holds `--connections`
/// keep-alive connections open at once (default 1000) against a server —
/// an external `--addr`, or an in-process one booted for the drill — and
/// issues `--requests` rounds over each, reporting latency percentiles,
/// shed counts, frame verdicts, the held-open RSS footprint, and the
/// server's own `/admin/stats` counters. Every response must be a complete
/// frame (ok, truncated-but-truthful, or a well-formed 503 shed); a
/// half-frame that parses as complete fails the drill, as does exceeding
/// `--rss-ceiling-kb` while every connection is open.
fn drill_wire(args: &Args) -> Result<(), String> {
    let mut connections: usize = parse_or(args, "connections", 1000)?;
    let requests: usize = parse_or(args, "requests", 1)?;
    let deadline_ms: u64 = parse_or(args, "deadline-ms", 1000)?;
    let quota: usize = parse_or(args, "quota", 4)?;
    let tenants: usize = parse_or(args, "tenants", 4)?.max(1);
    let rss_ceiling_kb: u64 = parse_or(args, "rss-ceiling-kb", 0)?;
    let timeout = Duration::from_secs(30);
    let in_process = args.option("addr").is_none();

    // Each held-open connection costs one client-side fd, plus a server-side
    // fd when the server runs in-process. Raise the soft RLIMIT_NOFILE to
    // the hard cap and clamp the drill under it — a drill that dies on
    // EMFILE measures nothing.
    if let Ok((soft, _hard)) = epoll::raise_nofile_limit() {
        let per_conn: u64 = if in_process { 2 } else { 1 };
        let budget = (soft.saturating_sub(128) / per_conn).max(1) as usize;
        if connections > budget {
            eprintln!(
                "WARNING: clamping --connections {connections} -> {budget} \
                 (RLIMIT_NOFILE {soft}, {per_conn} fd(s) per connection)"
            );
            connections = budget;
        }
    }

    let (addr, mut handle) = match args.option("addr") {
        Some(addr) => {
            let addr = addr
                .parse::<std::net::SocketAddr>()
                .map_err(|_| format!("bad --addr: {addr} (need IP:PORT)"))?;
            (addr, None)
        }
        None => {
            let warehouse = drill_warehouse(args)?.into_shared();
            let admission = if args.flag("no-admission") {
                None
            } else {
                // Forced-low, queueless quotas: overload sheds immediately,
                // which is the behavior the drill wants to observe.
                Some(AdmissionConfig {
                    max_queued: 0,
                    max_wait: Duration::ZERO,
                    ..AdmissionConfig::with_quotas(quota, quota)
                })
            };
            let config = ServerConfig {
                // Admit every drill connection (plus headroom for the stats
                // probe): the sheds this drill measures come from the
                // admission gate, which answers 503 and keeps the socket.
                max_connections: parse_or(args, "max-conns", connections + 64)?,
                // Drill connections open long before their first request,
                // sit parked between rounds, and are read serially by a
                // bounded client pool — give the slowloris/write-stall/idle
                // deadlines drill-scale values so the reapers stay out of
                // the measurement.
                read_timeout: Duration::from_secs(120),
                write_timeout: Duration::from_secs(30),
                idle_timeout: Duration::from_secs(120),
                admission,
                ..ServerConfig::default()
            };
            let handle = serve(warehouse, config).map_err(|e| format!("bind failed: {e}"))?;
            (handle.addr(), Some(handle))
        }
    };

    eprintln!(
        "wire drill: {connections} held-open connection(s) × {requests} request(s) \
         against {addr} (admission {})",
        if args.flag("no-admission") { "OFF" } else { "on" },
    );

    // A bounded pool of client threads multiplexes the connections: the
    // server must prove it scales past its own worker count, the drill
    // client doesn't have to.
    let client_threads = connections.clamp(1, 64);
    // Main participates in all three barriers: `start` (all sockets open),
    // `rounds_done` (load finished, every socket still open — RSS and
    // /admin/stats are sampled here), `release` (drop the sockets).
    let start = std::sync::Barrier::new(client_threads + 1);
    let rounds_done = std::sync::Barrier::new(client_threads + 1);
    let release = std::sync::Barrier::new(client_threads + 1);
    let mut ok_latencies_us: Vec<u64> = Vec::new();
    let mut truncated = 0u64;
    let mut sheds = 0u64;
    let mut io_errors = 0u64;
    let mut bad_frames: Vec<String> = Vec::new();
    let mut held_rss_kb: Option<u64> = None;
    let mut stats_line: Option<String> = None;
    std::thread::scope(|scope| {
        let (start, rounds_done, release) = (&start, &rounds_done, &release);
        let workers: Vec<_> = (0..client_threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    let (mut trunc, mut shed, mut io) = (0u64, 0u64, 0u64);
                    let mut bad = Vec::new();
                    // This thread owns every connection index ≡ t (mod
                    // threads); each stays open across all rounds.
                    let mut conns: Vec<(usize, Option<client::WireConn>)> = (t..connections)
                        .step_by(client_threads)
                        .map(|c| match client::WireConn::connect(addr, timeout) {
                            Ok(conn) => (c, Some(conn)),
                            Err(_) => {
                                io += 1;
                                (c, None)
                            }
                        })
                        .collect();
                    start.wait();
                    for _ in 0..requests {
                        // Pipelined round: SEND on every connection first so
                        // the server faces the whole storm at once, then
                        // collect one frame per connection. This is what
                        // makes 10k connections mean 10k concurrent
                        // requests, not (client threads) of them.
                        let mut sent_at: Vec<Option<std::time::Instant>> =
                            vec![None; conns.len()];
                        for (i, (c, slot)) in conns.iter_mut().enumerate() {
                            let Some(conn) = slot else { continue };
                            let headers = [
                                ("X-Tenant", format!("tenant{}", *c % tenants)),
                                ("X-Deadline-Ms", deadline_ms.to_string()),
                            ];
                            // The overload drill's mix: fast search and
                            // lineage plus a heavy cross join that runs to
                            // its deadline — the long permit holds are what
                            // make the gate bite.
                            let target = match *c % 3 {
                                0 => "/search?q=client",
                                1 => "/lineage?item=dwh_stage0_item0",
                                _ => "/sparql?query=%7B%20%3Fa%20%3Fp%20%3Fb%20.%20%3Fc%20%3Fq%20%3Fd%20%7D",
                            };
                            match conn.send("GET", target, &headers) {
                                Ok(()) => sent_at[i] = Some(std::time::Instant::now()),
                                Err(client::WireError::Io(_)) => {
                                    io += 1;
                                    *slot = None;
                                }
                                Err(e) => {
                                    bad.push(e.to_string());
                                    *slot = None;
                                }
                            }
                        }
                        for (i, (_c, slot)) in conns.iter_mut().enumerate() {
                            let Some(conn) = slot else { continue };
                            let Some(begun) = sent_at[i] else { continue };
                            match conn.read_frame() {
                                Ok(resp) if resp.status == 200 && resp.answer_complete() => {
                                    lat.push(begun.elapsed().as_micros() as u64);
                                }
                                Ok(resp) if resp.status == 200 && resp.complete_frame => {
                                    // Truncated but truthful: frame closed,
                                    // the summary admits it.
                                    trunc += 1;
                                    lat.push(begun.elapsed().as_micros() as u64);
                                }
                                Ok(resp) if resp.status == 503 && resp.complete_frame => shed += 1,
                                Ok(resp) => bad.push(format!(
                                    "status {} complete_frame {}",
                                    resp.status, resp.complete_frame
                                )),
                                Err(client::WireError::Io(_)) => {
                                    io += 1;
                                    *slot = None;
                                }
                                Err(e) => {
                                    bad.push(e.to_string());
                                    *slot = None;
                                }
                            }
                        }
                    }
                    rounds_done.wait();
                    release.wait();
                    drop(conns);
                    (lat, trunc, shed, io, bad)
                })
            })
            .collect();
        start.wait();
        rounds_done.wait();
        // Every surviving connection is still parked open right now — this
        // is the footprint the drill exists to bound.
        held_rss_kb = epoll::current_rss_kb();
        stats_line = client::get(addr, "/admin/stats", &[], timeout)
            .ok()
            .filter(|resp| resp.status == 200)
            .map(|resp| resp.body.trim().to_string());
        release.wait();
        for worker in workers {
            let (lat, trunc, shed, io, bad) = worker.join().expect("wire worker panicked");
            ok_latencies_us.extend(lat);
            truncated += trunc;
            sheds += shed;
            io_errors += io;
            bad_frames.extend(bad);
        }
    });

    ok_latencies_us.sort_unstable();
    let total = connections * requests;
    println!("requests:  {total} over {connections} held-open connection(s)");
    println!(
        "completed: {} ({} truncated-but-truthful)",
        ok_latencies_us.len(),
        truncated
    );
    println!(
        "latency:   p50 {:.1} ms, p99 {:.1} ms",
        percentile_us(&ok_latencies_us, 50.0) as f64 / 1000.0,
        percentile_us(&ok_latencies_us, 99.0) as f64 / 1000.0,
    );
    println!("shed:      {sheds} (503 + Retry-After)");
    println!("io errors: {io_errors} (connect/read failures at the socket)");
    if let Some(rss_kb) = held_rss_kb {
        println!(
            "rss:       {:.1} MiB with all connections held open",
            rss_kb as f64 / 1024.0
        );
    }
    if let Some(stats) = &stats_line {
        println!("stats:     {stats}");
    }
    if let Some(handle) = handle.as_mut() {
        let cancelled = handle.drain(Duration::from_secs(5));
        let state = handle.state();
        let load = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
        println!(
            "server:    served {}, keep-alive reuses {}, cancelled at drain {cancelled}",
            load(&state.counters.served),
            load(&state.counters.keepalive_reuses),
        );
    }
    if !bad_frames.is_empty() {
        return Err(format!(
            "{} malformed frame(s), e.g.: {}",
            bad_frames.len(),
            bad_frames[0]
        ));
    }
    if args.flag("expect-shed") && sheds == 0 {
        return Err("expected sheds under forced-low quotas, but shed = 0".to_string());
    }
    if rss_ceiling_kb > 0 {
        match held_rss_kb {
            Some(rss) if rss > rss_ceiling_kb => {
                return Err(format!(
                    "RSS {rss} KiB with connections held open exceeds \
                     --rss-ceiling-kb {rss_ceiling_kb}"
                ));
            }
            None => eprintln!("WARNING: --rss-ceiling-kb set but RSS is unreadable here"),
            _ => {}
        }
    }
    Ok(())
}

/// Every write-path failpoint the crash drill kills at, in commit order:
/// journal append/sync, run seal (file, partial write, manifest swap),
/// standalone manifest writes, journal rotation, and the two compaction
/// commit points.
const CRASH_FAILPOINTS: &[&str] = &[
    "journal::append",
    "journal::append::partial",
    "journal::sync",
    "run::seal",
    "run::seal::partial",
    "run::seal::manifest",
    "run::manifest",
    "journal::rotate",
    "compact::merge",
    "compact::manifest",
];

/// `mdwh drill crash`: the kill-anywhere write-path drill. For each
/// failpoint in [`CRASH_FAILPOINTS`], races `--writers` group-committing
/// writer threads (and `--readers` snapshot readers) against an injected
/// fault at that point, "crashes" by dropping the store, then reopens and
/// verifies the two LSM invariants: every *acknowledged* batch is fully
/// recovered, and the recovered triple count is an exact multiple of the
/// batch size (an atomic-batch check — a torn run or half-replayed batch
/// would break it). Backpressure sheds are retried a few times, then
/// counted as typed sheds — never as losses.
fn drill_crash(args: &Args) -> Result<(), String> {
    let writers: usize = parse_or(args, "writers", 4)?;
    let writers = writers.max(1);
    let readers: usize = parse_or(args, "readers", 2)?;
    let batches: usize = parse_or(args, "batches", 24)?;
    let batch_size: usize = parse_or(args, "batch-size", 8)?;
    let batch_size = batch_size.max(1);
    let memtable: usize = parse_or(args, "memtable", 64)?;
    let stall_runs: usize = parse_or(args, "stall-runs", 8)?;
    let stall_deadline_ms: u64 = parse_or(args, "stall-deadline-ms", 2000)?;

    let points: Vec<&'static str> = match args.option("failpoint") {
        Some(name) => match CRASH_FAILPOINTS.iter().find(|p| **p == name) {
            Some(p) => vec![p],
            None => {
                return Err(format!(
                    "unknown crash failpoint: {name} (available: {})",
                    CRASH_FAILPOINTS.join(", ")
                ))
            }
        },
        None => CRASH_FAILPOINTS.to_vec(),
    };

    eprintln!(
        "crash drill: {writers} writer(s) × {batches} batch(es) of {batch_size}, \
         {readers} reader(s), memtable {memtable}, kill at {} failpoint(s)",
        points.len()
    );

    let mut failures: Vec<String> = Vec::new();
    for point in &points {
        let verdict = drill_crash_round(
            point,
            writers,
            readers,
            batches,
            batch_size,
            memtable,
            stall_runs,
            stall_deadline_ms,
        )?;
        if let Some(problem) = verdict {
            failures.push(format!("{point}: {problem}"));
        }
    }
    failpoint::reset_global();
    if failures.is_empty() {
        println!(
            "crash drill: {} failpoint(s) survived — no acked batch lost, \
             no torn batch surfaced",
            points.len()
        );
        Ok(())
    } else {
        Err(format!(
            "crash drill FAILED at {} failpoint(s):\n  {}",
            failures.len(),
            failures.join("\n  ")
        ))
    }
}

/// One crash-drill round: returns `Ok(None)` when the invariants held,
/// `Ok(Some(problem))` when recovery lost or tore data.
#[allow(clippy::too_many_arguments)]
fn drill_crash_round(
    point: &str,
    writers: usize,
    readers: usize,
    batches: usize,
    batch_size: usize,
    memtable: usize,
    stall_runs: usize,
    stall_deadline_ms: u64,
) -> Result<Option<String>, String> {
    use std::sync::atomic::{AtomicBool, Ordering};

    const MODEL: &str = "DRILL_CRASH";
    let dir = std::env::temp_dir().join(format!(
        "mdwh-crash-{}-{}",
        point.replace("::", "-"),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;

    let cfg = LsmConfig {
        memtable_limit: memtable,
        max_runs: 2,
        stall_runs,
        stall_mem_ops: 4 * memtable,
        stall_deadline: Duration::from_millis(stall_deadline_ms),
        auto_compact: true,
    };
    // Global scope: the fault must be visible to whichever writer thread
    // wins the commit-window leadership and to the background compactor,
    // not just to the arming thread.
    failpoint::reset_global();
    failpoint::arm_global(point, FailSpec::Once);

    let (store, _) = LsmStore::open(&dir, cfg.clone()).map_err(|e| e.to_string())?;
    let done = AtomicBool::new(false);
    let mut acked: Vec<(usize, usize, u64)> = Vec::new();
    let (mut faulted, mut shed) = (0u64, 0u64);
    let mut reader_problems: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let store = &store;
        let done = &done;
        let worker_handles: Vec<_> = (0..writers)
            .map(|w| {
                scope.spawn(move || {
                    let mut acked = Vec::new();
                    let (mut faulted, mut shed) = (0u64, 0u64);
                    for b in 0..batches {
                        let ops: Vec<JournalOp> = (0..batch_size)
                            .map(|t| {
                                JournalOp::Insert(
                                    Term::iri(format!("http://ex.org/crash/w{w}b{b}t{t}")),
                                    Term::iri("http://ex.org/crash/p"),
                                    Term::iri("http://ex.org/crash/o"),
                                )
                            })
                            .collect();
                        let mut stalls = 0;
                        loop {
                            match store.write_batch(MODEL, &ops) {
                                Ok(seq) => {
                                    acked.push((w, b, seq));
                                    break;
                                }
                                Err(RdfError::Backpressure { .. }) if stalls < 5 => {
                                    stalls += 1;
                                    std::thread::sleep(Duration::from_millis(10));
                                }
                                Err(RdfError::Backpressure { .. }) => {
                                    shed += 1;
                                    break;
                                }
                                Err(_) => {
                                    // The injected kill (or its I/O shadow):
                                    // the batch is NOT acknowledged.
                                    faulted += 1;
                                    break;
                                }
                            }
                        }
                    }
                    (acked, faulted, shed)
                })
            })
            .collect();
        let reader_handles: Vec<_> = (0..readers)
            .map(|r| {
                scope.spawn(move || {
                    let mut problems = Vec::new();
                    let (mut last_generation, mut last_watermark) = (0u64, 0u64);
                    while !done.load(Ordering::Acquire) {
                        let snap = store.snapshot();
                        if snap.generation() < last_generation {
                            problems.push(format!(
                                "reader {r}: generation went backwards \
                                 ({last_generation} -> {})",
                                snap.generation()
                            ));
                            break;
                        }
                        if snap.watermark() < last_watermark {
                            problems.push(format!(
                                "reader {r}: watermark went backwards \
                                 ({last_watermark} -> {})",
                                snap.watermark()
                            ));
                            break;
                        }
                        last_generation = snap.generation();
                        last_watermark = snap.watermark();
                        if let Ok(g) = snap.model(MODEL) {
                            // Published snapshots never expose a torn batch.
                            if g.len() % batch_size != 0 {
                                problems.push(format!(
                                    "reader {r}: observed {} triples, not a \
                                     multiple of batch size {batch_size}",
                                    g.len()
                                ));
                                break;
                            }
                        }
                        std::thread::yield_now();
                    }
                    problems
                })
            })
            .collect();
        for handle in worker_handles {
            let (a, f, s) = handle.join().expect("crash-drill writer panicked");
            acked.extend(a);
            faulted += f;
            shed += s;
        }
        done.store(true, Ordering::Release);
        for handle in reader_handles {
            reader_problems.extend(handle.join().expect("crash-drill reader panicked"));
        }
    });

    // The "kill": drop the store with whatever half-finished seal or
    // compaction the fault left behind, then recover from disk alone.
    drop(store);
    failpoint::reset_global();

    let (recovered, report) = LsmStore::open(&dir, LsmConfig { auto_compact: false, ..cfg })
        .map_err(|e| format!("reopen after {point}: {e}"))?;
    let snap = recovered.snapshot();
    let max_acked_seq = acked.iter().map(|(_, _, s)| *s).max().unwrap_or(0);

    let mut problem = None;
    if !reader_problems.is_empty() {
        problem = Some(reader_problems.join("; "));
    } else if snap.watermark() < max_acked_seq {
        problem = Some(format!(
            "recovered watermark {} < max acked seq {max_acked_seq}",
            snap.watermark()
        ));
    } else if !acked.is_empty() {
        match snap.model(MODEL) {
            Err(e) => problem = Some(format!("model lost: {e}")),
            Ok(graph) => {
                let mut lost = Vec::new();
                for (w, b, seq) in &acked {
                    let whole = (0..batch_size).all(|t| {
                        let term = Term::iri(format!("http://ex.org/crash/w{w}b{b}t{t}"));
                        let (Some(s), Some(p), Some(o)) = (
                            snap.dict().lookup(&term),
                            snap.dict().lookup(&Term::iri("http://ex.org/crash/p")),
                            snap.dict().lookup(&Term::iri("http://ex.org/crash/o")),
                        ) else {
                            return false;
                        };
                        graph.contains(metadata_warehouse::rdf::Triple::new(s, p, o))
                    });
                    if !whole {
                        lost.push(format!("w{w}b{b} (seq {seq})"));
                    }
                }
                if !lost.is_empty() {
                    problem = Some(format!("acked batches lost: {}", lost.join(", ")));
                } else if graph.len() % batch_size != 0 {
                    problem = Some(format!(
                        "recovered {} triples, not a multiple of batch size \
                         {batch_size} (torn batch)",
                        graph.len()
                    ));
                } else if graph.len() / batch_size > writers * batches {
                    problem = Some(format!(
                        "recovered {} batches, more than the {} attempted",
                        graph.len() / batch_size,
                        writers * batches
                    ));
                }
            }
        }
    }

    println!(
        "{point:<26} acked {}/{} shed {shed} faulted {faulted} | reopen: runs {}, \
         folded {}, replayed {}, quarantined {} | {}",
        acked.len(),
        writers * batches,
        report.runs_loaded,
        report.runs_already_folded,
        report.replayed_batches,
        report.quarantined.len(),
        match &problem {
            None => "all acked recovered".to_string(),
            Some(p) => format!("FAILED: {p}"),
        }
    );
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(problem)
}

fn percentile_us(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * pct / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Prepends the warehouse's standard prefixes to a full query unless it
/// declares its own.
fn with_default_prefixes(query: &str) -> String {
    if query.trim_start().to_uppercase().starts_with("PREFIX") {
        return query.to_string();
    }
    format!(
        "PREFIX rdf: <{}>\nPREFIX rdfs: <{}>\nPREFIX owl: <{}>\nPREFIX dm: <{}>\nPREFIX dt: <{}>\nPREFIX dwh: <{}>\n{query}",
        vocab::rdf::NS,
        vocab::rdfs::NS,
        vocab::owl::NS,
        vocab::cs::DM,
        vocab::cs::DT,
        vocab::cs::DWH,
    )
}
