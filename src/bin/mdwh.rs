//! `mdwh` — a command-line frontend for the meta-data warehouse.
//!
//! The paper's warehouse has a web frontend (Figures 6 and 7); this CLI is
//! the open-source equivalent: generate a landscape, persist it, and ask it
//! the paper's questions from the shell.
//!
//! ```text
//! mdwh generate --scale medium --out ./mdw-data [--seed N] [--extended]
//! mdwh info     --store ./mdw-data
//! mdwh census   --store ./mdw-data
//! mdwh search   --store ./mdw-data customer [--synonyms] [--area Integration]
//! mdwh lineage  --store ./mdw-data dwh_stage0_item0 [--upstream] [--depth N]
//!               [--rule-filter "segment = 'PB'"]
//! mdwh audit    --store ./mdw-data dwh_stage2_item0
//! mdwh sparql   --store ./mdw-data 'SELECT ?x WHERE { ?x a dm:Application }'
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use metadata_warehouse::core::governance::render_access;
use metadata_warehouse::core::lineage::LineageRequest;
use metadata_warehouse::core::model::Area;
use metadata_warehouse::core::report;
use metadata_warehouse::core::search::SearchRequest;
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::corpus::{generate, CorpusConfig, Scale};
use metadata_warehouse::rdf::failpoint;
use metadata_warehouse::rdf::journal::Journal;
use metadata_warehouse::rdf::persist::{self, load_store, save_store};
use metadata_warehouse::rdf::vocab;
use metadata_warehouse::rdf::Term;
use metadata_warehouse::sparql::SemMatch;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mdwh: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  mdwh generate --scale small|medium|paper --out DIR [--seed N] [--extended]
  mdwh info     --store DIR
  mdwh census   --store DIR
  mdwh search   --store DIR TERM [--synonyms] [--area NAME] [--class LOCAL]
  mdwh lineage  --store DIR ITEM [--upstream] [--depth N] [--rule-filter STR]
  mdwh audit    --store DIR ITEM
  mdwh gaps     --store DIR
  mdwh sources  --store DIR CONCEPT
  mdwh sparql   --store DIR QUERY [--no-rulebase]
  mdwh fsck     --store DIR
  mdwh recover  --store DIR

Fault drills: --inject 'name=spec,…' (or MDWH_FAILPOINTS env) arms
failpoints; spec is once | times:N | always | pct:P[:SEED].";

/// Minimal flag parser: collects `--key value` pairs, `--flag` booleans,
/// and bare positionals.
struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
    flags: Vec<String>,
}

const VALUE_FLAGS: &[&str] = &[
    "--scale", "--out", "--seed", "--store", "--area", "--class", "--depth", "--rule-filter",
    "--inject",
];

fn parse_args(args: &[String]) -> Args {
    let mut parsed = Args { positional: Vec::new(), options: Vec::new(), flags: Vec::new() };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(stripped) = arg.strip_prefix("--") {
            if VALUE_FLAGS.contains(&arg.as_str()) {
                if let Some(value) = iter.next() {
                    parsed.options.push((stripped.to_string(), value.clone()));
                }
            } else {
                parsed.flags.push(stripped.to_string());
            }
        } else {
            parsed.positional.push(arg.clone());
        }
    }
    parsed
}

impl Args {
    fn option(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(USAGE.to_string());
    };
    let parsed = parse_args(rest);
    arm_failpoints(&parsed)?;
    match command.as_str() {
        "generate" => cmd_generate(&parsed),
        "fsck" => cmd_fsck(&parsed),
        "recover" => cmd_recover(&parsed),
        "info" => cmd_info(&parsed),
        "census" => cmd_census(&parsed),
        "search" => cmd_search(&parsed),
        "lineage" => cmd_lineage(&parsed),
        "audit" => cmd_audit(&parsed),
        "gaps" => cmd_gaps(&parsed),
        "sources" => cmd_sources(&parsed),
        "sparql" => cmd_sparql(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command: {other}\n{USAGE}")),
    }
}

/// Arms fault-injection failpoints from `--inject` and the
/// `MDWH_FAILPOINTS` environment variable (fault drills: run a real
/// command while the persistence layer misbehaves on purpose).
fn arm_failpoints(args: &Args) -> Result<(), String> {
    if let Ok(list) = std::env::var("MDWH_FAILPOINTS") {
        let names = failpoint::arm_from_list(&list)?;
        if !names.is_empty() {
            eprintln!("mdwh: armed failpoints from env: {}", names.join(", "));
        }
    }
    if let Some(list) = args.option("inject") {
        let names = failpoint::arm_from_list(list)?;
        if !names.is_empty() {
            eprintln!("mdwh: armed failpoints: {}", names.join(", "));
        }
    }
    Ok(())
}

fn cmd_fsck(args: &Args) -> Result<(), String> {
    let dir = PathBuf::from(args.option("store").ok_or("missing --store DIR")?);
    let report = persist::fsck(&dir).map_err(|e| e.to_string())?;
    match &report.snapshot {
        Some(info) => println!(
            "snapshot: v{} generation {} (journal seq {})",
            info.version, info.generation, info.journal_seq
        ),
        None => println!("snapshot: none"),
    }
    for model in &report.models {
        match (&model.problem, model.triples) {
            (Some(problem), _) => println!("  model {} [{}]: {problem}", model.name, model.file),
            (None, Some(n)) => println!("  model {} [{}]: ok, {n} triples", model.name, model.file),
            (None, None) => println!("  model {} [{}]: ok", model.name, model.file),
        }
    }
    println!(
        "journal:  {} committed batch(es), {} torn byte(s)",
        report.committed_batches, report.torn_bytes
    );
    if report.clean() {
        println!("clean");
        Ok(())
    } else {
        for issue in &report.issues {
            println!("issue: {issue}");
        }
        Err(format!("{} issue(s) found", report.issues.len()))
    }
}

fn cmd_recover(args: &Args) -> Result<(), String> {
    let dir = PathBuf::from(args.option("store").ok_or("missing --store DIR")?);
    let (store, report) = persist::recover(&dir).map_err(|e| e.to_string())?;
    let gen = report
        .snapshot_generation
        .map_or_else(|| "none".to_string(), |g| g.to_string());
    println!(
        "recovered: snapshot gen {} (seq {}), replayed {} batch(es) / {} op(s), truncated {} torn byte(s)",
        gen,
        report.snapshot_seq,
        report.replayed_batches,
        report.replayed_ops,
        report.truncated_bytes,
    );
    // Make the repair durable: fold the replayed state into a fresh
    // snapshot and rebase the journal.
    let save = persist::save_snapshot(&store, &dir, report.last_seq).map_err(|e| e.to_string())?;
    let mut journal = Journal::open(&dir).map_err(|e| e.to_string())?;
    journal.reset(report.last_seq).map_err(|e| e.to_string())?;
    println!(
        "checkpointed {} triples across {} model(s) as generation {}",
        save.total(),
        save.models.len(),
        save.generation
    );
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let scale = match args.option("scale").unwrap_or("medium") {
        "small" => Scale::Small,
        "medium" => Scale::Medium,
        "paper" => Scale::Paper,
        other => return Err(format!("unknown scale: {other}")),
    };
    let out = PathBuf::from(args.option("out").ok_or("generate needs --out DIR")?);
    let mut config = CorpusConfig::preset(scale);
    if let Some(seed) = args.option("seed") {
        config.seed = seed.parse().map_err(|_| format!("bad seed: {seed}"))?;
    }
    if args.flag("extended") {
        config.extended_scope = true;
    }
    eprintln!("generating {scale:?} corpus (seed {}) …", config.seed);
    let corpus = generate(&config);
    let mut warehouse = MetadataWarehouse::new();
    let report = warehouse
        .ingest(corpus.into_extracts())
        .map_err(|e| e.to_string())?;
    eprintln!(
        "loaded {} triples ({} duplicates, {} rejected)",
        report.load.loaded,
        report.load.duplicates,
        report.load.rejections.len()
    );
    let save = save_store(warehouse.store(), &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} triples across {} model(s) to {}",
        save.total(),
        save.models.len(),
        out.display()
    );
    Ok(())
}

/// Loads a persisted store and builds the semantic index.
fn open_warehouse(args: &Args) -> Result<MetadataWarehouse, String> {
    let dir = PathBuf::from(args.option("store").ok_or("missing --store DIR")?);
    let store = load_store(&dir).map_err(|e| e.to_string())?;
    let model = if store.has_model("DWH_CURR") {
        "DWH_CURR".to_string()
    } else {
        store
            .model_names()
            .first()
            .map(|s| s.to_string())
            .ok_or("store holds no models")?
    };
    let mut warehouse =
        MetadataWarehouse::from_store(store, &model).map_err(|e| e.to_string())?;
    warehouse.build_semantic_index().map_err(|e| e.to_string())?;
    Ok(warehouse)
}

/// Resolves a user-supplied item name: a full IRI, or a local name in the
/// `dwh` instance namespace.
fn resolve_item(name: &str) -> Term {
    if name.starts_with("http://") || name.starts_with("https://") {
        Term::iri(name)
    } else {
        Term::iri(vocab::cs::dwh(name))
    }
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let warehouse = open_warehouse(args)?;
    let stats = warehouse.stats().map_err(|e| e.to_string())?;
    println!("model:   {}", warehouse.model_name());
    println!("nodes:   {}", stats.nodes);
    println!("edges:   {}", stats.edges);
    println!("derived: {} (semantic index)", warehouse.derived_count());
    println!(
        "models on disk: {}",
        warehouse.store().model_names().join(", ")
    );
    Ok(())
}

fn cmd_census(args: &Args) -> Result<(), String> {
    let warehouse = open_warehouse(args)?;
    let census = warehouse.census().map_err(|e| e.to_string())?;
    print!("{}", report::render_census(&census));
    Ok(())
}

fn cmd_search(args: &Args) -> Result<(), String> {
    let term = args
        .positional
        .first()
        .ok_or("search needs a TERM argument")?;
    let warehouse = open_warehouse(args)?;
    let mut request = SearchRequest::new(term.clone());
    if args.flag("synonyms") {
        request = request.with_synonyms();
    }
    if let Some(area) = args.option("area") {
        request = request.in_area(match area {
            "Inbound" | "DWH Inbound Interface" => Area::InboundInterface,
            "Integration" => Area::Integration,
            "DataMart" | "Data Mart" => Area::DataMart,
            other => Area::Other(other.to_string()),
        });
    }
    if let Some(class) = args.option("class") {
        request = request.filter_class(Term::iri(vocab::cs::dm(class)));
    }
    let results = warehouse.search(&request).map_err(|e| e.to_string())?;
    print!("{}", report::render_search(term, &results));
    Ok(())
}

fn cmd_lineage(args: &Args) -> Result<(), String> {
    let item = args
        .positional
        .first()
        .ok_or("lineage needs an ITEM argument")?;
    let warehouse = open_warehouse(args)?;
    let start = resolve_item(item);
    let mut request = if args.flag("upstream") {
        LineageRequest::upstream(start)
    } else {
        LineageRequest::downstream(start)
    };
    if let Some(depth) = args.option("depth") {
        request = request.max_depth(depth.parse().map_err(|_| format!("bad depth: {depth}"))?);
    }
    if let Some(filter) = args.option("rule-filter") {
        request = request.with_rule_filter(filter);
    }
    let result = warehouse.lineage(&request).map_err(|e| e.to_string())?;
    print!("{}", report::render_lineage(&result));
    Ok(())
}

fn cmd_audit(args: &Args) -> Result<(), String> {
    let item = args
        .positional
        .first()
        .ok_or("audit needs an ITEM argument")?;
    let warehouse = open_warehouse(args)?;
    let report = warehouse
        .who_can_access(&resolve_item(item))
        .map_err(|e| e.to_string())?;
    print!("{}", render_access(&report));
    Ok(())
}

fn cmd_gaps(args: &Args) -> Result<(), String> {
    let warehouse = open_warehouse(args)?;
    let gaps = warehouse.governance_gaps().map_err(|e| e.to_string())?;
    println!(
        "data-mart items inspected: {}  |  ownerless: {}  |  coverage: {:.1} %",
        gaps.inspected,
        gaps.ownerless.len(),
        gaps.coverage() * 100.0
    );
    for item in gaps.ownerless.iter().take(20) {
        println!("  {}", item.label());
    }
    if gaps.ownerless.len() > 20 {
        println!("  … and {} more", gaps.ownerless.len() - 20);
    }
    Ok(())
}

fn cmd_sources(args: &Args) -> Result<(), String> {
    let concept = args
        .positional
        .first()
        .ok_or("sources needs a CONCEPT argument (e.g. Party or Customer)")?;
    let warehouse = open_warehouse(args)?;
    let concept_term = if concept.starts_with("http://") || concept.starts_with("https://") {
        Term::iri(concept.clone())
    } else {
        Term::iri(vocab::cs::dm(concept))
    };
    let result = warehouse
        .find_sources(&concept_term)
        .map_err(|e| e.to_string())?;
    print!(
        "{}",
        metadata_warehouse::core::assist::render_sources(&result)
    );
    Ok(())
}

fn cmd_sparql(args: &Args) -> Result<(), String> {
    let pattern_or_query = args
        .positional
        .first()
        .ok_or("sparql needs a QUERY argument")?;
    let warehouse = open_warehouse(args)?;
    // Full SELECT queries run through the parser directly; bare `{ … }`
    // patterns go through SemMatch with the standard aliases.
    let upper = pattern_or_query.trim_start().to_uppercase();
    let is_full_query =
        upper.starts_with("SELECT") || upper.starts_with("PREFIX") || upper.starts_with("ASK");
    let output = if is_full_query {
        let query = metadata_warehouse::sparql::parser::parse(&with_default_prefixes(
            pattern_or_query,
        ))
        .map_err(|e| e.to_string())?;
        let graph = warehouse
            .store()
            .model(warehouse.model_name())
            .map_err(|e| e.to_string())?;
        metadata_warehouse::sparql::exec::execute(&query, graph, warehouse.store().dict())
            .map_err(|e| e.to_string())?
    } else {
        let mut sem = SemMatch::new(pattern_or_query.clone())
            .alias("dm", vocab::cs::DM)
            .alias("dt", vocab::cs::DT)
            .alias("dwh", vocab::cs::DWH);
        if !args.flag("no-rulebase") {
            sem = sem.rulebase("OWLPRIME");
        }
        warehouse.sem_match(&sem).map_err(|e| e.to_string())?
    };
    print!("{}", output.to_table());
    println!("({} rows)", output.rows.len());
    Ok(())
}

/// Prepends the warehouse's standard prefixes to a full query unless it
/// declares its own.
fn with_default_prefixes(query: &str) -> String {
    if query.trim_start().to_uppercase().starts_with("PREFIX") {
        return query.to_string();
    }
    format!(
        "PREFIX rdf: <{}>\nPREFIX rdfs: <{}>\nPREFIX owl: <{}>\nPREFIX dm: <{}>\nPREFIX dt: <{}>\nPREFIX dwh: <{}>\n{query}",
        vocab::rdf::NS,
        vocab::rdfs::NS,
        vocab::owl::NS,
        vocab::cs::DM,
        vocab::cs::DT,
        vocab::cs::DWH,
    )
}
