//! # metadata-warehouse — facade crate
//!
//! Reproduction of *The Credit Suisse Meta-data Warehouse* (Jossen,
//! Blunschi, Mori, Kossmann, Stockinger — ICDE 2012): an enterprise
//! meta-data warehouse that stores all business and technical metadata of a
//! large organization as one labeled RDF graph, with search and
//! lineage/provenance services on top.
//!
//! This crate re-exports the workspace crates under stable paths:
//!
//! * [`rdf`] — the RDF substrate (terms, dictionary encoding, triple
//!   indexes, named models, staging/bulk-load, Turtle subset),
//! * [`reason`] — the OWLPRIME-subset rulebase and entailment indexes,
//! * [`sparql`] — the SPARQL-subset engine and the `SEM_MATCH`-style API,
//! * [`core`] — the meta-data warehouse itself (Table I model, ingest,
//!   historization, search, lineage, synonyms, reports),
//! * [`corpus`] — the synthetic banking-landscape generator,
//! * [`relational`] — the fixed-schema relational baseline the paper argues
//!   against,
//! * [`serve`] — the fault-hardened multi-tenant HTTP query server
//!   (`mdwh serve`) over the snapshot core.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and experiment index.

pub use mdw_core as core;
pub use mdw_corpus as corpus;
pub use mdw_rdf as rdf;
pub use mdw_reason as reason;
pub use mdw_relational as relational;
pub use mdw_serve as serve;
pub use mdw_sparql as sparql;
