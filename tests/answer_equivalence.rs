//! Differential testing for keyword answering: `MetadataWarehouse::answer`
//! must be deterministic across thread counts, truthful under every budget
//! shape, and typed when shed.
//!
//! Three contracts, extended from `differential_parallel.rs` to the
//! keyword pipeline:
//!
//! * **Thread invariance** — the full `Debug` rendering of an
//!   [`AnswerResult`] (matches, candidate order, executed outputs, pooled
//!   answers, verdict) is bit-identical at 1, 2, and 8 threads.
//! * **Budget truthfulness** — a complete answer equals the unlimited
//!   answer exactly; a truncated answer's pooled rows are a *prefix* of the
//!   unlimited run's, the truncation reason matches the budget shape, and
//!   the verdict never claims completeness the budget did not allow.
//! * **Typed sheds** — with a zero Answer quota, `answer` returns
//!   `MdwError::Overloaded` carrying the class and a retry-after hint.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use metadata_warehouse::core::admission::{AdmissionConfig, QueryClass, CLASS_COUNT};
use metadata_warehouse::core::answer::AnswerRequest;
use metadata_warehouse::core::budget::{CancellationToken, QueryBudget, TruncationReason};
use metadata_warehouse::core::error::MdwError;
use metadata_warehouse::core::ingest::Extract;
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::rdf::budget::MonotonicTime;
use metadata_warehouse::rdf::term::Term;
use metadata_warehouse::rdf::vocab;
use metadata_warehouse::rdf::ParallelPolicy;

/// Thread counts compared against the sequential baseline.
const THREADS: [usize; 2] = [2, 8];

/// A labeled mid-size warehouse the keyword pipeline can really answer
/// over: three labeled classes, 40 columns (every other one carrying the
/// Customer concept), and 10 reports using every third column — enough
/// rows that an 8-way scan genuinely splits.
fn answering_warehouse() -> MetadataWarehouse {
    let dm = |l: &str| Term::iri(vocab::cs::dm(l));
    let dwh = |l: &str| Term::iri(vocab::cs::dwh(l));
    let iri = |s: &str| Term::iri(s);
    let ty = iri(vocab::rdf::TYPE);
    let label = iri(vocab::rdfs::LABEL);
    let owl_class = iri(vocab::owl::CLASS);
    let domain = iri(vocab::rdfs::DOMAIN);
    let has_name = iri(vocab::cs::HAS_NAME);
    let represents = dm("representsConcept");
    let uses = dm("usesItem");

    let mut triples: Vec<(Term, Term, Term)> = vec![
        (dm("Customer"), ty.clone(), owl_class.clone()),
        (dm("Customer"), label.clone(), Term::plain("Customer")),
        (dm("Report"), ty.clone(), owl_class.clone()),
        (dm("Report"), label.clone(), Term::plain("Report")),
        (dm("Column"), ty.clone(), owl_class.clone()),
        (dm("Column"), label.clone(), Term::plain("Column")),
        (represents.clone(), domain.clone(), dm("Column")),
        (represents.clone(), label.clone(), Term::plain("represents concept")),
        (uses.clone(), domain.clone(), dm("Report")),
        (uses.clone(), label.clone(), Term::plain("uses item")),
    ];
    for i in 0..40usize {
        let col = dwh(&format!("col{i}"));
        triples.push((col.clone(), ty.clone(), dm("Column")));
        triples.push((col.clone(), has_name.clone(), Term::plain(format!("column_name_{i}"))));
        if i % 2 == 0 {
            triples.push((col.clone(), represents.clone(), dm("Customer")));
        }
    }
    for r in 0..10usize {
        let rep = dwh(&format!("rep{r}"));
        triples.push((rep.clone(), ty.clone(), dm("Report")));
        triples.push((rep.clone(), has_name.clone(), Term::plain(format!("usage report {r}"))));
        triples.push((rep.clone(), uses.clone(), dwh(&format!("col{}", (r * 3) % 40))));
    }
    let mut w = MetadataWarehouse::new();
    w.ingest(vec![Extract::new("answer-eq", triples)]).unwrap();
    w.build_semantic_index().unwrap();
    w
}

/// Keyword strings drawn from the fixture's vocabulary plus misses, so
/// cases cover exact, synonym (`client` → customer), multi-token join, and
/// fallback-filter shapes.
const KEYWORDS: [&str; 9] = [
    "customer",
    "client",
    "report",
    "column",
    "customer report",
    "report customer",
    "column customer report",
    "nonexistent",
    "nonexistent customer",
];

fn keywords() -> impl Strategy<Value = String> {
    (0usize..KEYWORDS.len()).prop_map(|i| KEYWORDS[i].to_string())
}

/// Deterministic budget variants (wall-clock deadlines are exercised
/// separately with a zero deadline, which trips reproducibly).
fn make_budget(variant: u8, limit: u64) -> QueryBudget {
    match variant % 5 {
        0 => QueryBudget::unlimited(),
        1 => QueryBudget::unlimited().with_max_steps(limit),
        2 => QueryBudget::unlimited().with_max_rows(limit % 8),
        3 => QueryBudget::unlimited().with_deadline(Duration::ZERO, Arc::new(MonotonicTime::new())),
        _ => {
            let token = CancellationToken::new();
            token.cancel();
            QueryBudget::unlimited().with_cancellation(&token)
        }
    }
}

/// The truncation reasons each budget variant may legitimately produce.
fn allowed_reasons(variant: u8) -> &'static [TruncationReason] {
    match variant % 5 {
        0 => &[],
        1 => &[TruncationReason::StepLimit],
        2 => &[TruncationReason::RowLimit],
        3 => &[TruncationReason::DeadlineExceeded],
        _ => &[TruncationReason::Cancelled],
    }
}

/// A policy that really partitions even small scans.
fn policy(threads: usize) -> ParallelPolicy {
    ParallelPolicy::new(threads).with_min_partition_rows(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Answering at 2/8 threads is byte-identical to the sequential run —
    /// token matches, candidate order, executed candidate outputs, pooled
    /// answers, and the completeness verdict — under every deterministic
    /// budget variant.
    #[test]
    fn answer_is_bit_identical_across_thread_counts(
        kw in keywords(),
        variant in 0u8..5,
        limit in 0u64..60,
        top_k in 1usize..5,
    ) {
        let mut w = answering_warehouse();
        w.set_parallelism(policy(1));
        let request = AnswerRequest::new(kw.clone())
            .with_top_k(top_k)
            .with_budget(make_budget(variant, limit));
        let baseline = format!("{:?}", w.answer(&request).unwrap());
        for threads in THREADS {
            w.set_parallelism(policy(threads));
            let req = AnswerRequest::new(kw.clone())
                .with_top_k(top_k)
                .with_budget(make_budget(variant, limit));
            let got = format!("{:?}", w.answer(&req).unwrap());
            prop_assert_eq!(&got, &baseline, "answer diverged at {} threads", threads);
        }
    }

    /// Budget truthfulness: a complete limited answer equals the unlimited
    /// answer exactly; a truncated one reports a reason its budget shape
    /// can produce and pools a prefix of the unlimited answers.
    #[test]
    fn budget_trips_are_truthful_prefixes(
        kw in keywords(),
        variant in 1u8..5,
        limit in 0u64..60,
        thread_pick in 0usize..3,
    ) {
        let mut w = answering_warehouse();
        w.set_parallelism(policy([1usize, 2, 8][thread_pick]));
        let unlimited = w
            .answer(&AnswerRequest::new(kw.clone()))
            .unwrap();
        prop_assert!(unlimited.completeness.is_complete());

        let limited = w
            .answer(&AnswerRequest::new(kw.clone()).with_budget(make_budget(variant, limit)))
            .unwrap();
        match limited.completeness.reason() {
            None => {
                // Claimed complete: must be indistinguishable from the
                // unlimited run.
                prop_assert_eq!(
                    format!("{:?}", &limited),
                    format!("{:?}", &unlimited),
                    "a 'complete' limited answer differed from the unlimited answer"
                );
            }
            Some(reason) => {
                prop_assert!(
                    allowed_reasons(variant).contains(&reason),
                    "variant {} produced unexpected reason {:?}",
                    variant,
                    reason
                );
                prop_assert!(
                    limited.answers.len() <= unlimited.answers.len(),
                    "truncated run returned more answers than the unlimited run"
                );
                prop_assert_eq!(
                    limited.answers.as_slice(),
                    &unlimited.answers[..limited.answers.len()],
                    "truncated answers are not a prefix of the unlimited answers"
                );
                prop_assert!(
                    limited.executed.len() <= unlimited.executed.len(),
                    "truncated run executed more candidates than the unlimited run"
                );
            }
        }
    }
}

/// With a zero Answer quota every request sheds immediately with the typed
/// error, the class, and a positive retry-after hint — never a panic, a
/// wait, or a silent empty answer.
#[test]
fn overloaded_answer_sheds_with_retry_after() {
    let mut w = answering_warehouse();
    w.enable_admission(AdmissionConfig {
        max_concurrent: 0,
        per_class: [0; CLASS_COUNT],
        max_queued: 0,
        max_wait: Duration::from_millis(5),
        retry_after: Duration::from_millis(300),
    });
    for kw in ["customer", "customer report", "nonexistent"] {
        match w.answer(&AnswerRequest::new(kw)) {
            Err(MdwError::Overloaded(o)) => {
                assert_eq!(o.class, QueryClass::Answer, "{kw}: wrong class");
                assert!(o.retry_after >= Duration::from_millis(300), "{kw}: bad hint");
            }
            other => panic!("{kw}: expected Overloaded, got {other:?}"),
        }
    }
    let stats = w.admission_stats().unwrap();
    assert_eq!(stats.shed[QueryClass::Answer as usize], 3);
    assert_eq!(stats.total_admitted(), 0);
}

/// The CI matrix entry point: with `MDW_PAR_THREADS` set, the env-derived
/// policy must agree with the sequential baseline on the pinned fixture.
#[test]
fn env_thread_count_matches_sequential_baseline() {
    let mut w = answering_warehouse();

    w.set_parallelism(ParallelPolicy::new(1));
    let baseline: Vec<String> = ["customer", "client", "customer report", "column"]
        .iter()
        .map(|kw| format!("{:?}", w.answer(&AnswerRequest::new(*kw)).unwrap()))
        .collect();

    w.set_parallelism(ParallelPolicy::from_env().with_min_partition_rows(1));
    let got: Vec<String> = ["customer", "client", "customer report", "column"]
        .iter()
        .map(|kw| format!("{:?}", w.answer(&AnswerRequest::new(*kw)).unwrap()))
        .collect();
    assert_eq!(got, baseline);
}
