//! Integration tests for the `mdwh` command-line frontend: generate a
//! store on disk, then drive every subcommand against it.

use std::path::PathBuf;
use std::process::Command;
use std::sync::OnceLock;

fn mdwh() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mdwh"))
}

/// A shared generated store (built once per test binary run).
fn store_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("mdwh-cli-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let output = mdwh()
            .args(["generate", "--scale", "small", "--out"])
            .arg(&dir)
            .output()
            .expect("run mdwh generate");
        assert!(
            output.status.success(),
            "generate failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        dir
    })
}

fn run_ok(args: &[&str]) -> String {
    let dir = store_dir();
    let output = mdwh()
        .args(args.iter().flat_map(|a| {
            if *a == "@STORE" {
                vec!["--store", dir.to_str().unwrap()]
            } else {
                vec![*a]
            }
        }))
        .output()
        .expect("run mdwh");
    assert!(
        output.status.success(),
        "mdwh {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).to_string()
}

#[test]
fn info_reports_scale() {
    let out = run_ok(&["info", "@STORE"]);
    assert!(out.contains("model:   DWH_CURR"));
    assert!(out.contains("nodes:"));
    assert!(out.contains("derived:"));
}

#[test]
fn census_prints_table1() {
    let out = run_ok(&["census", "@STORE"]);
    assert!(out.contains("Table I census"));
    assert!(out.contains("Hierarchies"));
}

#[test]
fn search_with_synonyms() {
    let plain = run_ok(&["search", "@STORE", "client"]);
    let expanded = run_ok(&["search", "@STORE", "client", "--synonyms"]);
    assert!(expanded.contains("expanded to: client, customer, partner"));
    // Synonyms can only widen the result set.
    let count = |s: &str| {
        s.lines()
            .find(|l| l.contains("distinct matching instance"))
            .and_then(|l| l.trim().split(' ').next())
            .and_then(|n| n.parse::<usize>().ok())
            .unwrap_or(0)
    };
    assert!(count(&expanded) >= count(&plain));
}

#[test]
fn lineage_downstream_and_filtered() {
    let out = run_ok(&["lineage", "@STORE", "dwh_stage0_item0"]);
    assert!(out.contains("Lineage from dwh_stage0_item0"));
    assert!(out.contains("--isMappedTo"));
    let filtered = run_ok(&[
        "lineage",
        "@STORE",
        "dwh_stage0_item0",
        "--rule-filter",
        "segment = 'PB'",
    ]);
    assert!(filtered.contains("endpoints"));
}

#[test]
fn audit_lists_roles() {
    let out = run_ok(&["audit", "@STORE", "dwh_stage2_item0"]);
    assert!(out.contains("Access audit for dwh_stage2_item0"));
    assert!(out.contains("distinct users with access:"));
}

#[test]
fn sparql_pattern_and_full_query() {
    let out = run_ok(&["sparql", "@STORE", "{ ?x rdf:type dm:Application }"]);
    assert!(out.contains("rows)"));
    let out = run_ok(&[
        "sparql",
        "@STORE",
        "SELECT (COUNT(*) AS ?n) WHERE { ?x a dm:Application }",
    ]);
    assert!(out.contains("(1 rows)"));
    assert!(out.contains('3')); // small corpus has 3 applications
    // ASK through the full-query path.
    let out = run_ok(&["sparql", "@STORE", "ASK { ?x a dm:Application }"]);
    assert!(out.contains("true"));
}

#[test]
fn sources_ranks_candidates() {
    let out = run_ok(&["sources", "@STORE", "Party"]);
    assert!(out.contains("Data sources for concept Party"));
}

#[test]
fn search_with_step_budget_reports_truncation() {
    let out = run_ok(&["search", "@STORE", "client", "--max-steps", "0"]);
    assert!(out.contains("truncated"), "expected truncation note in: {out}");
}

#[test]
fn lineage_with_generous_deadline_stays_complete() {
    let out = run_ok(&[
        "lineage",
        "@STORE",
        "dwh_stage0_item0",
        "--deadline-ms",
        "10000",
    ]);
    assert!(out.contains("Lineage from dwh_stage0_item0"));
    assert!(!out.contains("truncated"), "unexpected truncation in: {out}");
}

#[test]
fn sparql_with_row_budget_returns_tagged_partial() {
    let out = run_ok(&["sparql", "@STORE", "{ ?x rdf:type ?c }", "--max-rows", "2"]);
    assert!(out.contains("(2 rows)"));
    assert!(out.contains("truncated (row limit)"), "missing verdict in: {out}");
}

#[test]
fn drill_overload_sheds_without_panicking() {
    let output = mdwh()
        .args([
            "drill",
            "overload",
            "--threads",
            "8",
            "--requests",
            "32",
            "--quota",
            "1",
            "--expect-shed",
        ])
        .output()
        .expect("run mdwh drill overload");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "drill failed\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "worker panicked: {stderr}");
    let shed: u64 = stdout
        .lines()
        .find(|l| l.starts_with("shed:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
        .expect("shed line present");
    assert!(shed > 0, "forced-low quotas must shed: {stdout}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let output = mdwh().arg("frobnicate").output().expect("run mdwh");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage:"));
}
