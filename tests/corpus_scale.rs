//! Corpus-scale integration: the medium synthetic landscape through the
//! whole stack, checking the invariants that must hold at any scale.

use std::collections::BTreeSet;

use metadata_warehouse::core::lineage::LineageRequest;
use metadata_warehouse::core::model::EdgeCategory;
use metadata_warehouse::core::search::SearchRequest;
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::corpus::{generate, Corpus, CorpusConfig};
use metadata_warehouse::rdf::vocab;
use metadata_warehouse::rdf::Term;

fn loaded(config: &CorpusConfig) -> (MetadataWarehouse, Corpus) {
    let corpus = generate(config);
    let mut w = MetadataWarehouse::new();
    let report = w.ingest(corpus.clone().into_extracts()).unwrap();
    assert!(report.is_clean(), "rejections: {:?}", report.load.rejections.len());
    w.build_semantic_index().unwrap();
    (w, corpus)
}

#[test]
fn medium_corpus_full_stack() {
    let (w, corpus) = loaded(&CorpusConfig::medium());

    // Scale sanity: the warehouse holds what the generator produced
    // (minus exact duplicates from random edge generation).
    let stats = w.stats().unwrap();
    assert!(stats.edges > corpus.total_triples() * 9 / 10);
    assert!(stats.nodes > 1_000);

    // The running example works.
    let results = w.search(&SearchRequest::new("customer")).unwrap();
    assert!(results.instance_count() > 0);

    // Lineage spans the pipeline.
    let lineage = w
        .lineage(&LineageRequest::downstream(corpus.chain_start.clone()))
        .unwrap();
    assert!(lineage
        .endpoints
        .iter()
        .any(|e| e.distance == corpus.config.dwh_stages - 1));
}

#[test]
fn census_matches_paper_structure() {
    let (w, _) = loaded(&CorpusConfig::medium());
    let census = w.census().unwrap();
    // All three Table I edge categories are populated.
    for cat in EdgeCategory::ALL {
        assert!(census.edges_in(cat) > 0, "empty category {cat:?}");
    }
    // Facts dominate, as in any real warehouse.
    assert!(census.edges_in(EdgeCategory::Fact) > census.edges_in(EdgeCategory::Hierarchy));
    // Matrix total equals edge total.
    let matrix_sum: usize = census.matrix.iter().map(|(_, _, _, n)| n).sum();
    assert_eq!(matrix_sum, census.total_edges);
}

#[test]
fn determinism_across_generations() {
    let (w1, _) = loaded(&CorpusConfig::small());
    let (w2, _) = loaded(&CorpusConfig::small());
    assert_eq!(w1.stats().unwrap().edges, w2.stats().unwrap().edges);
    assert_eq!(w1.derived_count(), w2.derived_count());
    let r1 = w1.search(&SearchRequest::new("customer")).unwrap();
    let r2 = w2.search(&SearchRequest::new("customer")).unwrap();
    assert_eq!(r1.instance_count(), r2.instance_count());
    let labels1: Vec<_> = r1.groups.iter().map(|g| g.label.clone()).collect();
    let labels2: Vec<_> = r2.groups.iter().map(|g| g.label.clone()).collect();
    assert_eq!(labels1, labels2);
}

#[test]
fn every_search_hit_contains_a_needle() {
    let (w, _) = loaded(&CorpusConfig::medium());
    let results = w
        .search(&SearchRequest::new("partner").with_synonyms())
        .unwrap();
    let needles = &results.expanded_terms;
    for group in &results.groups {
        for hit in &group.hits {
            let lower = hit.name.to_lowercase();
            assert!(
                needles.iter().any(|n| lower.contains(n.as_str())),
                "hit {:?} matches none of {needles:?}",
                hit.name
            );
        }
    }
}

#[test]
fn lineage_paths_are_real_edge_chains() {
    let (w, corpus) = loaded(&CorpusConfig::medium());
    let result = w
        .lineage(&LineageRequest::downstream(corpus.chain_start.clone()).max_depth(4))
        .unwrap();
    let dict = w.store().dict();
    let graph = w.store().model(w.model_name()).unwrap();
    let mapped = dict
        .lookup(&Term::iri(vocab::cs::IS_MAPPED_TO))
        .unwrap();
    for path in &result.paths {
        // Contiguity: each hop starts where the previous ended (in the
        // traversal's data-flow orientation for downstream).
        for window in path.hops.windows(2) {
            assert_eq!(window[0].to, window[1].from);
        }
        // Reality: each hop is an asserted isMappedTo edge.
        for hop in &path.hops {
            let s = dict.lookup(&hop.from).unwrap();
            let o = dict.lookup(&hop.to).unwrap();
            assert!(
                graph.contains(metadata_warehouse::rdf::Triple::new(s, mapped, o)),
                "phantom hop {} → {}",
                hop.from.label(),
                hop.to.label()
            );
        }
    }
}

#[test]
fn subject_area_inventory_is_queryable() {
    // The Figure 1 inventory the generator reports must agree with what
    // the graph actually contains for a spot-checked area.
    let (w, corpus) = loaded(&CorpusConfig::small());
    let apps_area = corpus
        .subject_areas
        .iter()
        .find(|a| a.area == "Applications")
        .unwrap();
    let view = w.entailed().unwrap();
    let dict = w.store().dict();
    let ty = dict.lookup(&Term::iri(vocab::rdf::TYPE)).unwrap();
    let app_class = dict.lookup(&Term::iri(vocab::cs::dm("Application"))).unwrap();
    let instances: BTreeSet<_> = view
        .scan(metadata_warehouse::rdf::TriplePattern::with_po(ty, app_class))
        .map(|t| t.s)
        .collect();
    assert_eq!(instances.len(), apps_area.instances);
}

#[test]
fn fanout_sweep_shows_path_explosion() {
    // The Section V lesson, end to end: more stages and fanout → paths
    // explode; a rule-condition filter keeps them bounded.
    let mut explored = Vec::new();
    for fanout in [1, 2, 3] {
        let config = CorpusConfig::small().with_stages(5).with_fanout(fanout);
        let (w, corpus) = loaded(&config);
        let result = w
            .lineage(&LineageRequest::downstream(corpus.chain_start.clone()))
            .unwrap();
        explored.push(result.paths_explored);
    }
    assert!(explored[0] < explored[1]);
    assert!(explored[1] < explored[2]);

    // With a filter, exploration shrinks.
    let config = CorpusConfig::small().with_stages(5).with_fanout(3);
    let (w, corpus) = loaded(&config);
    let unfiltered = w
        .lineage(&LineageRequest::downstream(corpus.chain_start.clone()))
        .unwrap();
    let filtered = w
        .lineage(
            &LineageRequest::downstream(corpus.chain_start.clone())
                .with_rule_filter("segment = 'PB'"),
        )
        .unwrap();
    assert!(filtered.paths_explored < unfiltered.paths_explored);
}
