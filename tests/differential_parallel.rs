//! Differential testing: parallel query execution must be *bit-identical*
//! to sequential execution — same hits, same order, same truncation
//! verdicts — for every thread count and every budget shape.
//!
//! The parallel executor's contract is that worker threads only do pure,
//! read-only work over frozen-snapshot partitions while every stateful
//! decision (budget charging, dedup, caps, ranking) happens in a
//! deterministic in-order merge. These tests enforce that contract by
//! construction: random graphs, random search/lineage/SPARQL requests, and
//! budget variants (unlimited, step-capped, row-capped, pre-cancelled) are
//! run at thread counts {1, 2, 3, 8} with the chunk-size floor forced to 1
//! (so tiny inputs really do split), and the full `Debug` rendering of each
//! result — including the `Completeness` verdict — must match the
//! sequential run exactly.

use proptest::prelude::*;

use metadata_warehouse::core::budget::{
    CancellationToken, QueryBudget, TruncationReason, CHECK_INTERVAL,
};
use metadata_warehouse::core::ingest::Extract;
use metadata_warehouse::core::lineage::LineageRequest;
use metadata_warehouse::core::search::SearchRequest;
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::rdf::ParallelPolicy;
use metadata_warehouse::rdf::term::Term;
use metadata_warehouse::rdf::vocab;
use metadata_warehouse::sparql::SemMatch;

/// Thread counts compared against the sequential baseline.
const THREADS: [usize; 3] = [2, 3, 8];

fn item(i: u8) -> Term {
    Term::iri(format!("http://ex.org/item{i}"))
}

/// A random mapping landscape: items with names, random classes, and
/// random `isMappedTo` edges (cycles, diamonds, and fan-in allowed).
#[derive(Debug, Clone)]
struct RandomLandscape {
    names: Vec<String>,
    classes: Vec<u8>,
    mappings: Vec<(u8, u8)>,
}

fn landscape() -> impl Strategy<Value = RandomLandscape> {
    let n = 10usize;
    (
        proptest::collection::vec("[a-z]{2,8}", n..=n),
        proptest::collection::vec(0u8..4, n..=n),
        proptest::collection::vec((0u8..10, 0u8..10), 0..28),
    )
        .prop_map(|(names, classes, mappings)| RandomLandscape { names, classes, mappings })
}

fn build(l: &RandomLandscape) -> MetadataWarehouse {
    let mut triples = Vec::new();
    let ty = Term::iri(vocab::rdf::TYPE);
    let has_name = Term::iri(vocab::cs::HAS_NAME);
    let mapped = Term::iri(vocab::cs::IS_MAPPED_TO);
    for (i, name) in l.names.iter().enumerate() {
        let it = item(i as u8);
        triples.push((
            it.clone(),
            ty.clone(),
            Term::iri(format!("http://ex.org/Class{}", l.classes[i])),
        ));
        triples.push((it.clone(), has_name.clone(), Term::plain(name.clone())));
    }
    for &(a, b) in &l.mappings {
        triples.push((item(a), mapped.clone(), item(b)));
    }
    let mut w = MetadataWarehouse::new();
    w.ingest(vec![Extract::new("diff", triples)]).unwrap();
    w.build_semantic_index().unwrap();
    w
}

/// Budget variants exercised differentially. Budgets carry shared atomic
/// counters, so each run gets a freshly built budget.
fn make_budget(variant: u8, limit: u64) -> QueryBudget {
    match variant % 4 {
        0 => QueryBudget::unlimited(),
        1 => QueryBudget::unlimited().with_max_steps(limit),
        2 => QueryBudget::unlimited().with_max_rows(limit % 8),
        _ => {
            let token = CancellationToken::new();
            token.cancel();
            QueryBudget::unlimited().with_cancellation(&token)
        }
    }
}

/// A policy that really partitions even the tiny proptest graphs.
fn policy(threads: usize) -> ParallelPolicy {
    ParallelPolicy::new(threads).with_min_partition_rows(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Search at 2/3/8 threads is byte-identical to sequential search —
    /// groups, hit order, matched terms, trace counts, and the
    /// `Completeness` verdict — under every budget variant.
    #[test]
    fn parallel_search_is_bit_identical(
        l in landscape(),
        needle in "[a-z]{1,2}",
        variant in 0u8..4,
        limit in 0u64..40,
        cap in 1usize..12,
    ) {
        let mut w = build(&l);
        w.set_parallelism(policy(1));
        let request = SearchRequest::new(needle)
            .with_max_results(cap)
            .with_budget(make_budget(variant, limit));
        let baseline = format!("{:?}", w.search(&request).unwrap());
        for threads in THREADS {
            w.set_parallelism(policy(threads));
            let req = request.clone().with_budget(make_budget(variant, limit));
            let got = format!("{:?}", w.search(&req).unwrap());
            prop_assert_eq!(&got, &baseline, "search diverged at {} threads", threads);
        }
    }

    /// Lineage at 2/3/8 threads is byte-identical to sequential lineage —
    /// paths in enumeration order, endpoints with exact shortest-hop
    /// distances, `paths_explored`, and the verdict.
    #[test]
    fn parallel_lineage_is_bit_identical(
        l in landscape(),
        start in 0u8..10,
        upstream in any::<bool>(),
        variant in 0u8..4,
        limit in 0u64..60,
    ) {
        let mut w = build(&l);
        w.set_parallelism(policy(1));
        let base_req = if upstream {
            LineageRequest::upstream(item(start))
        } else {
            LineageRequest::downstream(item(start))
        };
        let request = base_req.with_budget(make_budget(variant, limit));
        let baseline = format!("{:?}", w.lineage(&request).unwrap());
        for threads in THREADS {
            w.set_parallelism(policy(threads));
            let req = request.clone().with_budget(make_budget(variant, limit));
            let got = format!("{:?}", w.lineage(&req).unwrap());
            prop_assert_eq!(&got, &baseline, "lineage diverged at {} threads", threads);
        }
    }

    /// SPARQL at 2/3/8 threads returns the identical row table — columns,
    /// rows in order, and verdict — under every budget variant.
    #[test]
    fn parallel_sparql_is_bit_identical(
        l in landscape(),
        variant in 0u8..4,
        limit in 0u64..40,
    ) {
        let mut w = build(&l);
        w.set_parallelism(policy(1));
        let mapped = Term::iri(vocab::cs::IS_MAPPED_TO);
        let queries = [
            SemMatch::new("{ ?x rdf:type ?c }").select(&["?x", "?c"]),
            SemMatch::new(format!("{{ ?a <{}> ?b . ?b rdf:type ?c }}", mapped.label()))
                .select(&["?a", "?b", "?c"]),
        ];
        for query in &queries {
            let baseline = w
                .sem_match_with_budget(query, &make_budget(variant, limit))
                .unwrap();
            for threads in THREADS {
                w.set_parallelism(policy(threads));
                let got = w
                    .sem_match_with_budget(query, &make_budget(variant, limit))
                    .unwrap();
                prop_assert_eq!(&got, &baseline, "sparql diverged at {} threads", threads);
            }
            w.set_parallelism(policy(1));
        }
    }
}

/// A deterministic mid-size landscape: three "stages" of 60 items each,
/// chained `stage0_i -> stage1_i -> stage2_i` with a shared hub creating
/// fan-in, so every query path (search scan, lineage frontier, SPARQL leaf
/// scan) has enough rows to split across 8 workers.
fn chained_warehouse() -> MetadataWarehouse {
    let mut triples = Vec::new();
    let ty = Term::iri(vocab::rdf::TYPE);
    let has_name = Term::iri(vocab::cs::HAS_NAME);
    let mapped = Term::iri(vocab::cs::IS_MAPPED_TO);
    let node = |stage: usize, i: usize| Term::iri(format!("http://ex.org/s{stage}_item{i}"));
    let hub = Term::iri("http://ex.org/hub");
    triples.push((hub.clone(), ty.clone(), Term::iri("http://ex.org/Class0")));
    triples.push((hub.clone(), has_name.clone(), Term::plain("hub_item")));
    for i in 0..60usize {
        for stage in 0..3usize {
            let it = node(stage, i);
            triples.push((
                it.clone(),
                ty.clone(),
                Term::iri(format!("http://ex.org/Class{}", stage)),
            ));
            triples.push((it.clone(), has_name.clone(), Term::plain(format!("item_{stage}_{i}"))));
        }
        triples.push((node(0, i), mapped.clone(), node(1, i)));
        triples.push((node(1, i), mapped.clone(), node(2, i)));
        // Fan-in: every stage-1 item also feeds the hub.
        triples.push((node(1, i), mapped.clone(), hub.clone()));
    }
    let mut w = MetadataWarehouse::new();
    w.ingest(vec![Extract::new("pin", triples)]).unwrap();
    w.build_semantic_index().unwrap();
    w
}

/// Determinism pin: the same query answered 32 times at 8 threads yields
/// 32 identical ordered results — scheduling never leaks into output.
#[test]
fn eight_thread_results_are_stable_across_32_runs() {
    let mut w = chained_warehouse();
    w.set_parallelism(policy(8));

    let search_req = SearchRequest::new("item");
    let lineage_req = LineageRequest::downstream(Term::iri("http://ex.org/s0_item7"));
    let sparql = SemMatch::new("{ ?x rdf:type ?c }").select(&["?x", "?c"]);

    let search_pin = format!("{:?}", w.search(&search_req).unwrap());
    let lineage_pin = format!("{:?}", w.lineage(&lineage_req).unwrap());
    let sparql_pin = format!("{:?}", w.sem_match(&sparql).unwrap());
    for run in 0..31 {
        assert_eq!(
            format!("{:?}", w.search(&search_req).unwrap()),
            search_pin,
            "search run {run} diverged"
        );
        assert_eq!(
            format!("{:?}", w.lineage(&lineage_req).unwrap()),
            lineage_pin,
            "lineage run {run} diverged"
        );
        assert_eq!(
            format!("{:?}", w.sem_match(&sparql).unwrap()),
            sparql_pin,
            "sparql run {run} diverged"
        );
    }
}

/// Cross-thread cancellation: a token cancelled from *another thread* in
/// the middle of an 8-way parallel scan stops every `StepMeter` worker
/// within one check interval of its own charges.
///
/// The bound is made flake-free by where the counters are read: `after` is
/// sampled *after* `cancel()` returns (its `SeqCst` store is then visible
/// to every worker's next interval check), so each of the 8 workers can
/// charge strictly less than one `CHECK_INTERVAL` beyond it. Any charges
/// racing between the store and the sample only shrink the observed delta.
#[test]
fn cross_thread_cancel_stops_all_step_meter_workers_within_one_interval() {
    let mut w = chained_warehouse();
    w.set_parallelism(policy(8));

    // A heavy cross join (~550² pairs) that cannot plausibly finish before
    // the canceller fires a few hundred steps in.
    let sparql = SemMatch::new("{ ?a ?p ?b . ?c ?q ?d }").select(&["?a", "?c"]);
    let token = CancellationToken::new();
    let budget = QueryBudget::unlimited().with_cancellation(&token);
    let observer = budget.clone(); // budgets share their atomic counters

    let (result, after_cancel) = std::thread::scope(|scope| {
        let w = &w;
        let query = scope.spawn({
            let budget = budget.clone();
            let sparql = &sparql;
            move || w.sem_match_with_budget(sparql, &budget).unwrap()
        });
        // Let the scan get properly under way, then pull the plug.
        while observer.steps_charged() < CHECK_INTERVAL {
            std::thread::yield_now();
        }
        token.cancel();
        let after_cancel = observer.steps_charged();
        (query.join().expect("query thread"), after_cancel)
    });

    assert_eq!(
        result.completeness.reason(),
        Some(TruncationReason::Cancelled),
        "mid-scan cancellation must surface as a truthful Cancelled verdict"
    );
    let overshoot = observer.steps_charged().saturating_sub(after_cancel);
    assert!(
        overshoot < 8 * CHECK_INTERVAL,
        "workers charged {overshoot} steps after cancellation; \
         8 workers × one interval ({CHECK_INTERVAL}) is the ceiling"
    );
}

/// The cancelled parallel scan's partial rows are a *prefix* of the full
/// sequential answer — cancellation truncates, it never reorders or
/// corrupts (the differential harness's contract, extended to the
/// cancellation path).
#[test]
fn cancelled_parallel_rows_are_a_prefix_of_the_sequential_answer() {
    let mut w = chained_warehouse();
    let sparql = SemMatch::new("{ ?a ?p ?b . ?c ?q ?d }").select(&["?a", "?c"]);

    w.set_parallelism(policy(1));
    let full = w.sem_match(&sparql).unwrap();
    assert!(full.completeness.is_complete());

    w.set_parallelism(policy(8));
    let token = CancellationToken::new();
    let budget = QueryBudget::unlimited().with_cancellation(&token);
    let observer = budget.clone();
    let partial = std::thread::scope(|scope| {
        let w = &w;
        let query = scope.spawn({
            let budget = budget.clone();
            let sparql = &sparql;
            move || w.sem_match_with_budget(sparql, &budget).unwrap()
        });
        while observer.steps_charged() < CHECK_INTERVAL {
            std::thread::yield_now();
        }
        token.cancel();
        query.join().expect("query thread")
    });

    assert_eq!(
        partial.completeness.reason(),
        Some(TruncationReason::Cancelled)
    );
    assert!(
        partial.rows.len() < full.rows.len(),
        "the cancelled run must actually have been cut short"
    );
    assert_eq!(partial.columns, full.columns);
    assert_eq!(
        partial.rows.as_slice(),
        &full.rows[..partial.rows.len()],
        "cancelled rows diverged from the sequential prefix"
    );
}

/// The CI matrix entry point: with `MDW_PAR_THREADS` set, the env-derived
/// policy must agree with the sequential baseline on the pinned corpus.
#[test]
fn env_thread_count_matches_sequential_baseline() {
    let mut w = chained_warehouse();

    w.set_parallelism(ParallelPolicy::new(1));
    let baseline = (
        format!("{:?}", w.search(&SearchRequest::new("item")).unwrap()),
        format!(
            "{:?}",
            w.lineage(&LineageRequest::downstream(Term::iri("http://ex.org/s0_item3")))
                .unwrap()
        ),
    );

    // Whatever the environment says (1 when unset) must change nothing.
    w.set_parallelism(ParallelPolicy::from_env().with_min_partition_rows(1));
    let got = (
        format!("{:?}", w.search(&SearchRequest::new("item")).unwrap()),
        format!(
            "{:?}",
            w.lineage(&LineageRequest::downstream(Term::iri("http://ex.org/s0_item3")))
                .unwrap()
        ),
    );
    assert_eq!(got, baseline);
}
