//! End-to-end integration: the full Figure 4 pipeline on the Figure 2/3
//! fixture, exercising every crate together — staging, bulk load, semantic
//! index, search, lineage, SEM_MATCH, census, and historization.

use metadata_warehouse::core::lineage::LineageRequest;
use metadata_warehouse::core::model::{Area, EdgeCategory};
use metadata_warehouse::core::search::SearchRequest;
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::corpus::fig2;
use metadata_warehouse::rdf::vocab;
use metadata_warehouse::rdf::Term;
use metadata_warehouse::sparql::SemMatch;

fn dm(l: &str) -> Term {
    Term::iri(vocab::cs::dm(l))
}

#[test]
fn pipeline_ingest_to_search() {
    let fx = fig2::fixture();
    let mut w = MetadataWarehouse::new();
    let report = w.ingest(vec![fx.ontology.clone(), fx.facts.clone()]).unwrap();
    assert!(report.is_clean());
    assert_eq!(report.staged, fx.ontology.len() + fx.facts.len());

    // Before the semantic index: no search ("derived triples only exist
    // through the indexes").
    assert!(w.search(&SearchRequest::new("customer")).is_err());

    let stats = w.build_semantic_index().unwrap();
    assert!(stats.derived > 0);

    // Figure 6: the customer_id result counts under every inherited class.
    let results = w.search(&SearchRequest::new("customer")).unwrap();
    for group in ["Column", "Attribute", "Application"] {
        assert!(
            results.group(group).is_some(),
            "missing group {group}; got {:?}",
            results.groups.iter().map(|g| &g.label).collect::<Vec<_>>()
        );
    }
}

#[test]
fn listing1_sem_match_equals_search_service() {
    let w = fig2::warehouse();

    // The service's answer…
    let service = w
        .search(&SearchRequest::new("customer").filter_class(dm("Application1_Item")))
        .unwrap();
    let mut service_pairs: Vec<(String, String)> = service
        .groups
        .iter()
        .flat_map(|g| {
            g.hits
                .iter()
                .map(move |h| (g.label.clone(), h.instance.label().to_string()))
        })
        .collect();
    service_pairs.sort();

    // …must equal Listing 1's answer for the same class filter.
    let listing1 = SemMatch::new(
        "{ ?object rdf:type ?c .
           ?c rdfs:label ?class .
           ?c rdfs:subClassOf dm:Application1_Item .
           ?object dm:hasName ?term }",
    )
    .rulebase("OWLPRIME")
    .alias("dm", vocab::cs::DM)
    .select(&["?class", "?object"])
    .filter("regex(?term, \"customer\", \"i\")")
    .group_by(&["?class", "?object"]);
    let out = w.sem_match(&listing1).unwrap();
    let mut sparql_pairs: Vec<(String, String)> = out
        .rows
        .iter()
        .map(|r| {
            (
                r[0].as_ref().unwrap().label().to_string(),
                r[1].as_ref().unwrap().label().to_string(),
            )
        })
        .collect();
    sparql_pairs.sort();

    // The service also groups under the filter root itself
    // (Application1_Item has no rdfs:subClassOf itself in the listing's
    // pattern, which asks for *proper* subclasses) — align on the common
    // subset.
    for pair in &sparql_pairs {
        assert!(
            service_pairs.contains(pair),
            "SEM_MATCH produced {pair:?} not in service output {service_pairs:?}"
        );
    }
    assert!(!sparql_pairs.is_empty());
}

#[test]
fn listing2_iterated_equals_lineage_service() {
    let w = fig2::warehouse();
    let fx = fig2::fixture();

    let service = w
        .lineage(
            &LineageRequest::downstream(fx.client_information_id.clone())
                .filter_class(dm("Application1_Item")),
        )
        .unwrap();
    let service_targets: Vec<String> = service
        .endpoints
        .iter()
        .map(|e| e.node.label().to_string())
        .collect();

    // Listing 2 iterated to two hops.
    let hop2 = SemMatch::new(
        "{ ?source_id dt:isMappedTo ?via .
           ?via dt:isMappedTo ?target_id .
           ?target_id rdf:type dm:Application1_Item .
           ?target_id dm:hasName ?target_name }",
    )
    .rulebase("OWLPRIME")
    .alias("dm", vocab::cs::DM)
    .alias("dt", vocab::cs::DT)
    .alias("dwh", vocab::cs::DWH)
    .select(&["?target_id", "?target_name"])
    .filter("?source_id = dwh:client_information_id")
    .group_by(&["?target_id", "?target_name"]);
    let out = w.sem_match(&hop2).unwrap();
    let sparql_targets: Vec<String> = out
        .rows
        .iter()
        .map(|r| r[0].as_ref().unwrap().label().to_string())
        .collect();

    assert_eq!(service_targets, sparql_targets);
    assert_eq!(sparql_targets, vec!["customer_id"]);
}

#[test]
fn area_filters_match_figure2_stages() {
    let w = fig2::warehouse();
    for (area, expected) in [
        (Area::InboundInterface, "client_information_id"),
        (Area::Integration, "partner_id"),
        (Area::DataMart, "customer_id"),
    ] {
        let results = w
            .search(&SearchRequest::new("id").in_area(area.clone()))
            .unwrap();
        assert_eq!(results.instance_count(), 1, "area {}", area.as_str());
        let hit = &results.groups[0].hits[0];
        assert_eq!(hit.name, expected, "area {}", area.as_str());
    }
}

#[test]
fn census_is_consistent_after_inference() {
    let w = fig2::warehouse();
    let census = w.census().unwrap();
    // The census counts only asserted triples; inference lives in the index.
    assert_eq!(census.total_edges, w.stats().unwrap().edges);
    assert!(census.edges_in(EdgeCategory::Hierarchy) >= 10);
    assert!(census.edges_in(EdgeCategory::Fact) >= 20);
    let node_sum: usize = census.node_counts.iter().map(|(_, n)| n).sum();
    assert_eq!(node_sum, census.total_nodes);
}

#[test]
fn historization_across_releases() {
    let mut w = fig2::warehouse();
    let v1 = w.snapshot("2009.1").unwrap();
    // A release adds a new column and re-snapshots.
    w.insert_fact(
        &Term::iri(vocab::cs::dwh("new_risk_column")),
        &Term::iri(vocab::rdf::TYPE),
        &dm("Application1_View_Column"),
    )
    .unwrap();
    w.insert_fact(
        &Term::iri(vocab::cs::dwh("new_risk_column")),
        &Term::iri(vocab::cs::HAS_NAME),
        &Term::plain("risk_exposure_amount"),
    )
    .unwrap();
    let v2 = w.snapshot("2009.2").unwrap();
    assert_eq!(v2.stats.edges, v1.stats.edges + 2);

    let diff = w.diff("2009.1", "2009.2").unwrap();
    assert_eq!(diff.added.len(), 2);
    assert!(diff.removed.is_empty());

    // The incremental index extension makes the new column searchable
    // without a rebuild.
    let results = w.search(&SearchRequest::new("risk_exposure")).unwrap();
    assert_eq!(results.instance_count(), 1);
    assert!(results.group("Attribute").is_some());
}

#[test]
fn synonym_search_bridges_figure2_vocabulary() {
    let w = fig2::warehouse();
    // "partner" alone does not find customer_id or client_information_id…
    let plain = w.search(&SearchRequest::new("partner")).unwrap();
    // (partner_id matches textually)
    assert_eq!(plain.instance_count(), 1);
    // …but with the synonym table, partner ⇔ customer ⇔ client.
    let expanded = w
        .search(&SearchRequest::new("partner").with_synonyms())
        .unwrap();
    assert_eq!(expanded.instance_count(), 3);
}
