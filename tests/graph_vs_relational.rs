//! Cross-store equivalence: the graph warehouse and the relational baseline
//! must give the same *core* answers on the same corpus — the differences
//! (synonyms, hierarchy-as-data, zero-DDL evolution) are exactly the ones
//! the paper claims for the graph design.

use metadata_warehouse::core::lineage::LineageRequest;
use metadata_warehouse::core::search::SearchRequest;
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::corpus::{generate, Corpus, CorpusConfig};
use metadata_warehouse::relational::lineage::RelLineageRequest;
use metadata_warehouse::relational::search::RelSearchRequest;
use metadata_warehouse::relational::{
    load_extracts, rel_lineage, rel_search, Migration, RelationalStore,
};

fn both(config: &CorpusConfig) -> (MetadataWarehouse, RelationalStore, Corpus) {
    let corpus = generate(config);
    let extracts = corpus.clone().into_extracts();
    let mut graph = MetadataWarehouse::new();
    graph.ingest(extracts.clone()).unwrap();
    graph.build_semantic_index().unwrap();
    let mut rel = RelationalStore::new();
    load_extracts(&mut rel, &extracts);
    (graph, rel, corpus)
}

#[test]
fn plain_search_counts_agree() {
    let (graph, rel, _) = both(&CorpusConfig::medium());
    for term in ["customer", "partner", "balance", "TCD"] {
        let g = graph.search(&SearchRequest::new(term)).unwrap();
        let r = rel_search(&rel, &RelSearchRequest::new(term));
        assert_eq!(
            g.instance_count(),
            r.instance_count,
            "term {term}: graph {} vs relational {}",
            g.instance_count(),
            r.instance_count
        );
    }
}

#[test]
fn lineage_endpoints_agree() {
    let (graph, rel, corpus) = both(&CorpusConfig::medium());
    let g = graph
        .lineage(&LineageRequest::downstream(corpus.chain_start.clone()))
        .unwrap();
    let start_id = corpus.chain_start.as_iri().unwrap();
    let r = rel_lineage(&rel, &RelLineageRequest::downstream(start_id));

    let g_endpoints: Vec<String> = g
        .endpoints
        .iter()
        .map(|e| e.node.as_iri().unwrap().to_string())
        .collect();
    let r_endpoints: Vec<String> = r.endpoints.keys().cloned().collect();
    assert_eq!(g_endpoints, r_endpoints);

    // Distances agree too.
    for ep in &g.endpoints {
        let id = ep.node.as_iri().unwrap();
        assert_eq!(Some(&ep.distance), r.endpoints.get(id), "distance of {id}");
    }
}

#[test]
fn rule_condition_filters_agree() {
    let (graph, rel, corpus) = both(&CorpusConfig::small().with_fanout(2));
    let start_id = corpus.chain_start.as_iri().unwrap();
    for filter in ["segment = 'PB'", "currency"] {
        let g = graph
            .lineage(
                &LineageRequest::downstream(corpus.chain_start.clone())
                    .with_rule_filter(filter),
            )
            .unwrap();
        let r = rel_lineage(
            &rel,
            &RelLineageRequest::downstream(start_id).with_rule_filter(filter),
        );
        assert_eq!(
            g.endpoints.len(),
            r.endpoints.len(),
            "endpoint count under filter {filter:?}"
        );
    }
}

#[test]
fn graph_keeps_what_relational_drops() {
    let (graph, _, _) = both(&CorpusConfig::small().extended());
    let corpus = generate(&CorpusConfig::small().extended());
    let mut rel = RelationalStore::new();
    let report = load_extracts(&mut rel, &corpus.clone().into_extracts());

    // The graph holds every governance edge; the relational store dropped
    // them all (until a migration).
    let dropped_governance = report.dropped.get("hasOwner").copied().unwrap_or(0)
        + report.dropped.get("hasConsumer").copied().unwrap_or(0);
    assert!(dropped_governance > 0);

    let dict = graph.store().dict();
    let has_owner = dict
        .lookup(&metadata_warehouse::rdf::Term::iri(
            metadata_warehouse::rdf::vocab::cs::dm("hasOwner"),
        ))
        .expect("graph interned hasOwner");
    let graph_governance = graph
        .store()
        .model(graph.model_name())
        .unwrap()
        .scan(metadata_warehouse::rdf::TriplePattern::with_p(has_owner))
        .count();
    assert!(graph_governance > 0);
}

#[test]
fn migration_closes_the_gap_at_a_cost() {
    let corpus = generate(&CorpusConfig::small().extended());
    let mut rel = RelationalStore::new();
    load_extracts(&mut rel, &corpus.clone().into_extracts());
    let tables_before = rel.table_count();
    let report = Migration::figure9().apply(&mut rel);
    assert!(report.ddl_statements > 0);
    assert!(rel.table_count() > tables_before);
    // The graph side needed zero DDL for the same scope — asserted by
    // construction: MetadataWarehouse has no schema-change API at all.
}
