//! Persistence round trip across the whole stack: corpus → warehouse →
//! save → load → same answers.

use metadata_warehouse::core::lineage::LineageRequest;
use metadata_warehouse::core::search::SearchRequest;
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::corpus::{generate, CorpusConfig};
use metadata_warehouse::rdf::persist::{load_store, save_store};

#[test]
fn saved_warehouse_answers_identically_after_reload() {
    let corpus = generate(&CorpusConfig::small());
    let chain_start = corpus.chain_start.clone();
    let mut original = MetadataWarehouse::new();
    original.ingest(corpus.into_extracts()).unwrap();
    original.build_semantic_index().unwrap();
    original.snapshot("2009.1").unwrap();

    let dir = std::env::temp_dir().join(format!("mdw-e2e-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let report = save_store(original.store(), &dir).unwrap();
    // The historization model is persisted alongside the current one.
    assert_eq!(report.models.len(), 2);

    let store = load_store(&dir).unwrap();
    let mut reloaded = MetadataWarehouse::from_store(store, "DWH_CURR").unwrap();
    reloaded.build_semantic_index().unwrap();

    // Same statistics.
    assert_eq!(
        original.stats().unwrap().edges,
        reloaded.stats().unwrap().edges
    );
    assert_eq!(original.derived_count(), reloaded.derived_count());

    // Same search answer, group for group.
    let a = original.search(&SearchRequest::new("customer")).unwrap();
    let b = reloaded.search(&SearchRequest::new("customer")).unwrap();
    assert_eq!(a.instance_count(), b.instance_count());
    let labels = |r: &metadata_warehouse::core::search::SearchResults| {
        r.groups.iter().map(|g| (g.label.clone(), g.count())).collect::<Vec<_>>()
    };
    assert_eq!(labels(&a), labels(&b));

    // Same lineage answer.
    let la = original
        .lineage(&LineageRequest::downstream(chain_start.clone()))
        .unwrap();
    let lb = reloaded
        .lineage(&LineageRequest::downstream(chain_start))
        .unwrap();
    let eps = |l: &metadata_warehouse::core::lineage::LineageResult| {
        l.endpoints.iter().map(|e| (e.node.clone(), e.distance)).collect::<Vec<_>>()
    };
    assert_eq!(eps(&la), eps(&lb));

    std::fs::remove_dir_all(&dir).unwrap();
}
