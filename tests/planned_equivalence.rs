//! Differential testing for the query planner: a cost-based plan may only
//! change *how fast* an answer arrives, never *what* the answer is.
//!
//! The planner rewrites basic graph patterns — selectivity-ranked join
//! order from frozen-index statistics, filter conjuncts pushed to their
//! binding scan — so the equivalence it must preserve is semantic, not
//! positional: the same multiset of rows as written-order execution.
//! These tests enforce that contract by construction over random mapping
//! landscapes, adversarial pattern orderings, and every budget shape
//! (unlimited, step-capped, row-capped, expired deadline):
//!
//! 1. **Complete ≡ complete** — planner-on and planner-off runs that both
//!    finish return identical sorted row multisets,
//! 2. **Truncated is a truthful prefix** — a budget-tripped run's rows are
//!    a prefix of *its own mode's* complete answer (plans differ, so each
//!    mode is prefix-consistent with itself, not with the other), and the
//!    verdict names the tripped budget dimension,
//! 3. **Parallelism stays invisible** — within each planner mode, 2- and
//!    8-thread execution is bit-identical to sequential execution,
//!    including verdicts.
//!
//! Both statistics regimes are covered: queries without a rulebase run on
//! the frozen base graph (real `FrozenStats` histograms), queries naming
//! OWLPRIME run on the entailed view (no snapshot statistics — the planner
//! falls back to capped probe scans).

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use metadata_warehouse::core::budget::{
    Completeness, ManualTime, QueryBudget, TimeSource, TruncationReason,
};
use metadata_warehouse::core::ingest::Extract;
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::rdf::term::Term;
use metadata_warehouse::rdf::vocab;
use metadata_warehouse::rdf::ParallelPolicy;
use metadata_warehouse::sparql::SemMatch;

fn item(i: u8) -> Term {
    Term::iri(format!("http://ex.org/item{i}"))
}

/// A random mapping landscape: items with names, random classes, and
/// random `isMappedTo` edges (cycles, diamonds, and fan-in allowed) —
/// skewed enough that written order and cost order genuinely differ.
#[derive(Debug, Clone)]
struct RandomLandscape {
    names: Vec<String>,
    classes: Vec<u8>,
    mappings: Vec<(u8, u8)>,
}

fn landscape() -> impl Strategy<Value = RandomLandscape> {
    let n = 10usize;
    (
        proptest::collection::vec("[a-z]{2,8}", n..=n),
        proptest::collection::vec(0u8..4, n..=n),
        proptest::collection::vec((0u8..10, 0u8..10), 0..28),
    )
        .prop_map(|(names, classes, mappings)| RandomLandscape { names, classes, mappings })
}

fn build(l: &RandomLandscape) -> MetadataWarehouse {
    let mut triples = Vec::new();
    let ty = Term::iri(vocab::rdf::TYPE);
    let has_name = Term::iri(vocab::cs::HAS_NAME);
    let mapped = Term::iri(vocab::cs::IS_MAPPED_TO);
    for (i, name) in l.names.iter().enumerate() {
        let it = item(i as u8);
        triples.push((
            it.clone(),
            ty.clone(),
            Term::iri(format!("http://ex.org/Class{}", l.classes[i])),
        ));
        triples.push((it.clone(), has_name.clone(), Term::plain(name.clone())));
    }
    for &(a, b) in &l.mappings {
        triples.push((item(a), mapped.clone(), item(b)));
    }
    let mut w = MetadataWarehouse::new();
    w.ingest(vec![Extract::new("diff", triples)]).unwrap();
    w.build_semantic_index().unwrap();
    w
}

/// The query shapes the planner rewrites, written adversarially: the
/// broadest pattern first, joins before their binding scans, filters at
/// the end. `rulebased` switches between the frozen base graph (snapshot
/// statistics) and the entailed view (probe fallback).
fn queries(rulebased: bool) -> Vec<SemMatch> {
    let mapped = vocab::cs::IS_MAPPED_TO;
    let has_name = vocab::cs::HAS_NAME;
    let mut qs = vec![
        // Cross-pattern join written backwards: the unbound chain hop
        // first, the class scan (which binds ?b) second.
        SemMatch::new(format!("{{ ?a <{mapped}> ?b . ?b rdf:type ?c }}"))
            .select(&["?a", "?b", "?c"]),
        // Pushable filter written after everything else.
        SemMatch::new(format!("{{ ?x rdf:type ?c . ?x <{has_name}> ?n }}"))
            .select(&["?x", "?c", "?n"])
            .filter("regex(?n, \"a\")"),
        // OPTIONAL arm: the planner must not leak right-arm bindings.
        SemMatch::new(format!(
            "{{ ?x <{has_name}> ?n OPTIONAL {{ ?x <{mapped}> ?y }} }}"
        ))
        .select(&["?x", "?n", "?y"]),
        // UNION with a join continuation after the braces.
        SemMatch::new(format!(
            "{{ {{ ?x rdf:type <http://ex.org/Class0> }} UNION {{ ?x <{mapped}> ?y }} ?x <{has_name}> ?n }}"
        ))
        .select(&["?x", "?n"]),
    ];
    if rulebased {
        qs = qs.into_iter().map(|q| q.rulebase("OWLPRIME")).collect();
    }
    qs
}

/// Budget variants exercised differentially. Budgets carry shared atomic
/// counters, so each run gets a freshly built budget. Variant 3 is an
/// already-expired manual-clock deadline: the first interval check trips
/// it deterministically.
fn make_budget(variant: u8, limit: u64) -> QueryBudget {
    match variant % 4 {
        0 => QueryBudget::unlimited(),
        1 => QueryBudget::unlimited().with_max_steps(limit),
        2 => QueryBudget::unlimited().with_max_rows(limit % 8),
        _ => {
            let time = Arc::new(ManualTime::new());
            let budget = QueryBudget::unlimited()
                .with_deadline(Duration::from_millis(1), Arc::clone(&time) as Arc<dyn TimeSource>);
            time.advance(Duration::from_millis(5));
            budget
        }
    }
}

/// A policy that really partitions even the tiny proptest graphs.
fn policy(threads: usize) -> ParallelPolicy {
    ParallelPolicy::new(threads).with_min_partition_rows(1)
}

/// Rows rendered for multiset comparison (canonical sort erases the
/// plan-dependent generation order).
fn sorted_rows(out: &metadata_warehouse::sparql::QueryOutput) -> Vec<String> {
    let mut rows: Vec<String> = out.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

fn rendered_rows(out: &metadata_warehouse::sparql::QueryOutput) -> Vec<String> {
    out.rows.iter().map(|r| format!("{r:?}")).collect()
}

/// `got` carries no binding that `reference` lacks: equal in every column
/// where `got` is bound. A budget trip inside an OPTIONAL right arm emits
/// the left solution unextended, so the *final* truncated row may be the
/// subsumed variant of the reference row rather than byte-equal to it.
fn row_subsumed(
    got: &[Option<metadata_warehouse::rdf::term::Term>],
    reference: &[Option<metadata_warehouse::rdf::term::Term>],
) -> bool {
    got.len() == reference.len()
        && got
            .iter()
            .zip(reference)
            .all(|(g, r)| g.is_none() || g.as_ref() == r.as_ref())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Planner-on and planner-off agree on every complete answer, on both
    /// statistics regimes, at 1, 2, and 8 threads.
    #[test]
    fn planned_and_naive_complete_answers_are_equal(
        l in landscape(),
        rulebased in any::<bool>(),
    ) {
        let mut w = build(&l);
        for query in &queries(rulebased) {
            w.set_parallelism(policy(1));
            let (naive, naive_report) = w
                .sem_match_explained(query, &QueryBudget::unlimited(), false)
                .unwrap();
            prop_assert!(naive.completeness.is_complete());
            prop_assert!(!naive_report.planner_used);
            for threads in [1usize, 2, 8] {
                w.set_parallelism(policy(threads));
                let (planned, report) = w
                    .sem_match_explained(query, &QueryBudget::unlimited(), true)
                    .unwrap();
                prop_assert!(planned.completeness.is_complete());
                prop_assert!(report.planner_used);
                prop_assert_eq!(&planned.columns, &naive.columns);
                prop_assert_eq!(
                    sorted_rows(&planned),
                    sorted_rows(&naive),
                    "planned ≢ written order at {} threads (plan: {})",
                    threads,
                    report.summary()
                );
            }
        }
    }

    /// Under every budget shape, a truncated answer is a truthful prefix
    /// of the same planner mode's complete answer, and parallel execution
    /// of the same mode stays bit-identical to sequential.
    #[test]
    fn budgeted_runs_are_truthful_prefixes_in_both_modes(
        l in landscape(),
        rulebased in any::<bool>(),
        variant in 0u8..4,
        limit in 0u64..40,
    ) {
        let mut w = build(&l);
        for query in &queries(rulebased) {
            for use_planner in [true, false] {
                // The mode's own complete answer is the prefix reference.
                w.set_parallelism(policy(1));
                let (full, _) = w
                    .sem_match_explained(query, &QueryBudget::unlimited(), use_planner)
                    .unwrap();

                let (budgeted, _) = w
                    .sem_match_explained(query, &make_budget(variant, limit), use_planner)
                    .unwrap();
                match budgeted.completeness {
                    Completeness::Complete => {
                        prop_assert_eq!(rendered_rows(&budgeted), rendered_rows(&full));
                    }
                    Completeness::Truncated { reason } => {
                        let expected = match variant % 4 {
                            1 => TruncationReason::StepLimit,
                            2 => TruncationReason::RowLimit,
                            3 => TruncationReason::DeadlineExceeded,
                            _ => unreachable!("unlimited budgets never truncate"),
                        };
                        prop_assert_eq!(reason, expected);
                        // Truthful prefix: every truncated row sits at its
                        // position in the complete answer. The final row may
                        // be the *subsumed* variant of its reference row —
                        // a trip inside an OPTIONAL right arm falls back to
                        // the unextended left solution — but it never
                        // invents a binding the complete answer lacks.
                        prop_assert!(
                            budgeted.rows.len() <= full.rows.len(),
                            "truncated run returned more rows than the complete answer"
                        );
                        for (i, row) in budgeted.rows.iter().enumerate() {
                            let reference = &full.rows[i];
                            let last = i + 1 == budgeted.rows.len();
                            let ok = if last {
                                row_subsumed(row, reference)
                            } else {
                                row == reference
                            };
                            prop_assert!(
                                ok,
                                "truncated row {} diverged from the complete answer \
                                 (planner={}): {:?} vs {:?}",
                                i,
                                use_planner,
                                row,
                                reference
                            );
                        }
                    }
                }

                // Same mode, same budget shape, more threads: bit-identical.
                let baseline = format!(
                    "{:?}",
                    w.sem_match_explained(query, &make_budget(variant, limit), use_planner)
                        .unwrap()
                        .0
                );
                for threads in [2usize, 8] {
                    w.set_parallelism(policy(threads));
                    let got = format!(
                        "{:?}",
                        w.sem_match_explained(query, &make_budget(variant, limit), use_planner)
                            .unwrap()
                            .0
                    );
                    prop_assert_eq!(
                        &got,
                        &baseline,
                        "planner={} diverged at {} threads",
                        use_planner,
                        threads
                    );
                }
            }
        }
    }
}

/// Deterministic pin: on a fixed skewed landscape the planner measurably
/// reorders the adversarial join (the property the random sweep relies
/// on actually firing).
#[test]
fn planner_actually_reorders_the_adversarial_join_on_a_skewed_graph() {
    let l = RandomLandscape {
        names: (0..10).map(|i| format!("name{i:02}")).collect(),
        classes: vec![0; 10],
        mappings: vec![(0, 1), (1, 2)],
    };
    let w = build(&l);
    let mapped = vocab::cs::IS_MAPPED_TO;
    // Written order: broad chain hop first, then the type scan.
    let q = SemMatch::new(format!("{{ ?a <{mapped}> ?b . ?b rdf:type ?c }}"))
        .select(&["?a", "?b", "?c"]);
    let (_, report) = w
        .sem_match_explained(&q, &QueryBudget::unlimited(), true)
        .unwrap();
    assert!(report.planner_used);
    let (planned, _) = w
        .sem_match_explained(&q, &QueryBudget::unlimited(), true)
        .unwrap();
    let (naive, _) = w
        .sem_match_explained(&q, &QueryBudget::unlimited(), false)
        .unwrap();
    assert_eq!(sorted_rows(&planned), sorted_rows(&naive));
}
