//! Cross-crate property tests: the lineage *service* and the SPARQL
//! *property path* are two implementations of the same Figure 8 semantics —
//! on any random mapping graph they must agree. Likewise the graph and
//! relational stores must agree on reachability.

use proptest::prelude::*;

use metadata_warehouse::core::ingest::Extract;
use metadata_warehouse::core::lineage::LineageRequest;
use metadata_warehouse::core::warehouse::MetadataWarehouse;
use metadata_warehouse::rdf::vocab;
use metadata_warehouse::rdf::Term;
use metadata_warehouse::relational::lineage::RelLineageRequest;
use metadata_warehouse::relational::{load_extracts, rel_lineage, RelationalStore};
use metadata_warehouse::sparql::exec::execute;
use metadata_warehouse::sparql::parser::parse;

fn item(i: u8) -> Term {
    Term::iri(format!("http://x/item{i}"))
}

fn edges() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..8, 0u8..8), 0..20)
}

fn build(mappings: &[(u8, u8)]) -> MetadataWarehouse {
    let mapped = Term::iri(vocab::cs::IS_MAPPED_TO);
    let ty = Term::iri(vocab::rdf::TYPE);
    let mut triples = Vec::new();
    for i in 0..8u8 {
        triples.push((item(i), ty.clone(), Term::iri("http://x/Thing")));
    }
    for &(a, b) in mappings {
        if a != b {
            triples.push((item(a), mapped.clone(), item(b)));
        }
    }
    let mut w = MetadataWarehouse::new();
    w.ingest(vec![Extract::new("prop", triples)]).unwrap();
    w.build_semantic_index().unwrap();
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The lineage service's reachable set equals the property-path query
    /// `start dt:isMappedTo+ ?x`.
    #[test]
    fn lineage_service_equals_property_path(mappings in edges(), start in 0u8..8) {
        let w = build(&mappings);

        let service = w
            .lineage(&LineageRequest::downstream(item(start)))
            .unwrap();
        let mut service_set: Vec<String> = service
            .endpoints
            .iter()
            .map(|e| e.node.as_iri().unwrap().to_string())
            .collect();
        service_set.sort();

        let query = parse(&format!(
            "PREFIX dt: <{}>\nPREFIX x: <http://x/>\nSELECT DISTINCT ?t WHERE {{ x:item{start} dt:isMappedTo+ ?t }}",
            vocab::cs::DT,
        ))
        .unwrap();
        let graph = w.store().model(w.model_name()).unwrap();
        let out = execute(&query, graph, w.store().dict()).unwrap();
        let mut path_set: Vec<String> = out
            .rows
            .iter()
            .map(|r| r[0].as_ref().unwrap().as_iri().unwrap().to_string())
            .filter(|iri| iri != item(start).as_iri().unwrap())
            .collect();
        path_set.sort();
        path_set.dedup();

        prop_assert_eq!(service_set, path_set);
    }

    /// Graph-service and relational-baseline lineage agree on reachability
    /// and distance for any random mapping graph.
    #[test]
    fn graph_and_relational_lineage_agree(mappings in edges(), start in 0u8..8) {
        let w = build(&mappings);
        let g = w.lineage(&LineageRequest::downstream(item(start))).unwrap();

        let mapped = Term::iri(vocab::cs::IS_MAPPED_TO);
        let ty = Term::iri(vocab::rdf::TYPE);
        let mut triples = Vec::new();
        for i in 0..8u8 {
            triples.push((item(i), ty.clone(), Term::iri(vocab::cs::dm("Column"))));
        }
        for &(a, b) in &mappings {
            if a != b {
                triples.push((item(a), mapped.clone(), item(b)));
            }
        }
        let mut rel = RelationalStore::new();
        load_extracts(&mut rel, &[Extract::new("prop", triples)]);
        let r = rel_lineage(
            &rel,
            &RelLineageRequest::downstream(item(start).as_iri().unwrap()),
        );

        let g_set: Vec<(String, usize)> = g
            .endpoints
            .iter()
            .map(|e| (e.node.as_iri().unwrap().to_string(), e.distance))
            .collect();
        let r_set: Vec<(String, usize)> =
            r.endpoints.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(g_set, r_set);
    }

    /// `ASK { a isMappedTo* b }` is exactly "b is an endpoint (or a = b)".
    #[test]
    fn ask_reachability_matches_service(mappings in edges(), a in 0u8..8, b in 0u8..8) {
        let w = build(&mappings);
        let service = w.lineage(&LineageRequest::downstream(item(a))).unwrap();
        let reachable = a == b || service.endpoints.iter().any(|e| e.node == item(b));

        let query = parse(&format!(
            "PREFIX dt: <{}>\nPREFIX x: <http://x/>\nASK {{ x:item{a} dt:isMappedTo* x:item{b} }}",
            vocab::cs::DT,
        ))
        .unwrap();
        let graph = w.store().model(w.model_name()).unwrap();
        let out = execute(&query, graph, w.store().dict()).unwrap();
        let answer = out.rows[0][0].as_ref().unwrap().label() == "true";
        prop_assert_eq!(answer, reachable);
    }
}
