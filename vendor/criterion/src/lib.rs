//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the handful of external crates it uses as minimal API-compatible
//! re-implementations. This one provides the `Criterion` /
//! `BenchmarkGroup` / `Bencher` surface the workspace's benches use, with a
//! simple mean-of-samples timer instead of criterion's statistics. Output
//! is one line per benchmark: `name … mean <t> (<n> samples)`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `"name/param"`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark id.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    last_mean: Duration,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call, then timed samples.
        black_box(f());
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            total += start.elapsed();
            iters += self.iters_per_sample;
        }
        self.last_mean = if iters > 0 { total / iters as u32 } else { Duration::ZERO };
    }
}

fn render_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn run_one(name: &str, samples: usize, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: samples.max(1).min(20),
        last_mean: Duration::ZERO,
        iters_per_sample: 1,
    };
    f(&mut bencher);
    let mut line = format!(
        "{name:<60} mean {:>10} ({} samples)",
        render_duration(bencher.last_mean),
        bencher.samples
    );
    if let Some(tp) = throughput {
        let secs = bencher.last_mean.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.0} elem/s", n as f64 / secs));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:.0} B/s", n as f64 / secs));
                }
            }
        }
    }
    println!("{line}");
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Finishes the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line arguments (only a name filter is honored).
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args.into_iter().find(|a| !a.starts_with('-'));
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.matches(name) {
            run_one(name, 10, None, |b| f(b));
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
