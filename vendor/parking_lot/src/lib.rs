//! Offline drop-in subset of the `parking_lot` API backed by `std::sync`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the handful of external crates it uses as minimal API-compatible
//! re-implementations. This one provides non-poisoning `RwLock` / `Mutex`
//! wrappers with `parking_lot`'s guard-returning (never `Result`) API.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access (poisoning is ignored, as in parking_lot).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A mutex with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock (poisoning is ignored, as in parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
