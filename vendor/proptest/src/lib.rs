//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the handful of external crates it uses as minimal API-compatible
//! re-implementations. This one provides the strategy combinators, the
//! `proptest!` / `prop_oneof!` / `prop_assert*!` macros, and regex-literal
//! string strategies that the workspace's property tests use.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   debug representation but is not minimized.
//! * **Deterministic seeding.** Case generation is seeded from the test
//!   name (overridable via `PROPTEST_SEED`), so runs are reproducible.
//! * **Regex strategies** support the subset the tests use: literals,
//!   escapes, character classes with ranges, groups, alternation, and the
//!   `{n}`, `{n,m}`, `?`, `*`, `+` quantifiers.

pub mod strategy;
pub mod string_gen;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size range for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive maximum.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { min: r.start, max: r.end.saturating_sub(1) }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.max <= self.min {
                self.min
            } else {
                rng.rng.gen_range(self.min..=self.max)
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a `Vec` strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates shrink the set, so the
    /// requested minimum size is attempted with bounded retries.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a `BTreeSet` strategy.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let want = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < want && attempts < want * 20 + 50 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// `proptest::option` — strategies for `Option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// Strategy producing `None` about a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Creates an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.rng.gen_range(0u8..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// `proptest::prelude` — the common imports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use test_runner::ProptestConfig;

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("proptest assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("proptest assertion failed: {}: {}", stringify!($cond), format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "proptest assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "proptest assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)*), l, r
            );
        }
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "proptest assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            );
        }
    }};
}

/// Chooses between strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let debug_args = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}\n")),+),
                    $(&$arg),+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(panic) = result {
                    let message = panic
                        .downcast_ref::<String>()
                        .map(|s| s.as_str())
                        .or_else(|| panic.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!(
                        "proptest case {} of {} failed: {}\ninputs:\n{}",
                        case + 1, config.cases, message, debug_args
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}
