//! The [`Strategy`] trait and combinators.

use crate::string_gen::Pattern;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values for property tests (no shrinking in this vendored
/// subset — see the crate docs).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates with one strategy, then uses the value to build another.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retries generation until `f` accepts the value (bounded; panics if
    /// the filter rejects everything).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Rc::new(self) }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn ErasedStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: Rc::clone(&self.inner) }
    }
}

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.erased_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Creates a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.rng.gen_range(0..self.total);
        for (weight, strat) in &self.arms {
            if roll < *weight {
                return strat.generate(rng);
            }
            roll -= weight;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

// ---- Primitive strategies -------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String strategy from a regex literal (subset; see [`crate::string_gen`]).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        Pattern::compile(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---- any::<T>() -----------------------------------------------------------

/// Types with a canonical strategy (subset of proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen::<u64>() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyStrategy { _marker: std::marker::PhantomData }
    }
}

/// The canonical strategy for `T` (`any::<i64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}
