//! Random string generation from a regex-literal subset.
//!
//! Supports what the workspace's tests use: literal characters, `\t` / `\n`
//! / `\r` / `\\` escapes, character classes with ranges (`[a-z0-9_ .]`,
//! including escaped metacharacters like `[\[\]\\]`), groups, `|`
//! alternation, and the `{n}`, `{n,m}`, `?`, `*`, `+` quantifiers.

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A compiled generator pattern.
#[derive(Debug, Clone)]
pub struct Pattern {
    alternatives: Vec<Vec<Quantified>>,
}

#[derive(Debug, Clone)]
struct Quantified {
    atom: Atom,
    min: u32,
    max: u32,
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
    Group(Pattern),
}

/// Upper repetition bound substituted for unbounded quantifiers (`*`, `+`).
const UNBOUNDED_CAP: u32 = 8;

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl Pattern {
    /// Compiles a pattern, or explains why it is outside the subset.
    pub fn compile(pattern: &str) -> Result<Pattern, String> {
        let mut parser = Parser { chars: pattern.chars().peekable() };
        let compiled = parser.alternation()?;
        if parser.chars.peek().is_some() {
            return Err(format!("unexpected trailing input in {pattern:?}"));
        }
        Ok(compiled)
    }

    /// Generates one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        self.generate_into(rng, &mut out);
        out
    }

    fn generate_into(&self, rng: &mut TestRng, out: &mut String) {
        let arm = if self.alternatives.len() == 1 {
            &self.alternatives[0]
        } else {
            &self.alternatives[rng.rng.gen_range(0..self.alternatives.len())]
        };
        for q in arm {
            let reps = if q.min == q.max {
                q.min
            } else {
                rng.rng.gen_range(q.min..=q.max)
            };
            for _ in 0..reps {
                match &q.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u32 = ranges
                            .iter()
                            .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                            .sum();
                        let mut roll = rng.rng.gen_range(0..total);
                        for (lo, hi) in ranges {
                            let span = *hi as u32 - *lo as u32 + 1;
                            if roll < span {
                                out.push(
                                    char::from_u32(*lo as u32 + roll)
                                        .expect("class range stays in valid chars"),
                                );
                                break;
                            }
                            roll -= span;
                        }
                    }
                    Atom::Group(p) => p.generate_into(rng, out),
                }
            }
        }
    }
}

impl Parser<'_> {
    fn alternation(&mut self) -> Result<Pattern, String> {
        let mut alternatives = vec![self.sequence()?];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            alternatives.push(self.sequence()?);
        }
        Ok(Pattern { alternatives })
    }

    fn sequence(&mut self) -> Result<Vec<Quantified>, String> {
        let mut seq = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == ')' || c == '|' {
                break;
            }
            let atom = self.atom()?;
            let (min, max) = self.quantifier()?;
            seq.push(Quantified { atom, min, max });
        }
        Ok(seq)
    }

    fn atom(&mut self) -> Result<Atom, String> {
        match self.chars.next() {
            Some('[') => self.class(),
            Some('(') => {
                let inner = self.alternation()?;
                match self.chars.next() {
                    Some(')') => Ok(Atom::Group(inner)),
                    _ => Err("unclosed group".to_string()),
                }
            }
            Some('\\') => Ok(Atom::Literal(self.escape()?)),
            Some('.') => Ok(Atom::Class(vec![(' ', '~')])),
            Some(c) => Ok(Atom::Literal(c)),
            None => Err("unexpected end of pattern".to_string()),
        }
    }

    fn escape(&mut self) -> Result<char, String> {
        match self.chars.next() {
            Some('t') => Ok('\t'),
            Some('n') => Ok('\n'),
            Some('r') => Ok('\r'),
            Some(c) => Ok(c),
            None => Err("dangling escape".to_string()),
        }
    }

    fn class(&mut self) -> Result<Atom, String> {
        let mut ranges = Vec::new();
        loop {
            let lo = match self.chars.next() {
                Some(']') => {
                    if ranges.is_empty() {
                        return Err("empty character class".to_string());
                    }
                    return Ok(Atom::Class(ranges));
                }
                Some('\\') => self.escape()?,
                Some(c) => c,
                None => return Err("unclosed character class".to_string()),
            };
            // A `-` forms a range unless it is the last char before `]`.
            if self.chars.peek() == Some(&'-') {
                let mut lookahead = self.chars.clone();
                lookahead.next();
                if lookahead.peek() == Some(&']') {
                    ranges.push((lo, lo));
                } else {
                    self.chars.next();
                    let hi = match self.chars.next() {
                        Some('\\') => self.escape()?,
                        Some(c) => c,
                        None => return Err("unclosed range".to_string()),
                    };
                    if hi < lo {
                        return Err(format!("inverted range {lo:?}-{hi:?}"));
                    }
                    ranges.push((lo, hi));
                }
            } else {
                ranges.push((lo, lo));
            }
        }
    }

    fn quantifier(&mut self) -> Result<(u32, u32), String> {
        match self.chars.peek() {
            Some('{') => {
                self.chars.next();
                let mut min_text = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                    min_text.push(self.chars.next().expect("peeked digit"));
                }
                let min: u32 = min_text.parse().map_err(|_| "bad quantifier".to_string())?;
                let max = match self.chars.next() {
                    Some('}') => min,
                    Some(',') => {
                        let mut max_text = String::new();
                        while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                            max_text.push(self.chars.next().expect("peeked digit"));
                        }
                        match self.chars.next() {
                            Some('}') if max_text.is_empty() => min + UNBOUNDED_CAP,
                            Some('}') => {
                                max_text.parse().map_err(|_| "bad quantifier".to_string())?
                            }
                            _ => return Err("unclosed quantifier".to_string()),
                        }
                    }
                    _ => return Err("unclosed quantifier".to_string()),
                };
                Ok((min, max))
            }
            Some('?') => {
                self.chars.next();
                Ok((0, 1))
            }
            Some('*') => {
                self.chars.next();
                Ok((0, UNBOUNDED_CAP))
            }
            Some('+') => {
                self.chars.next();
                Ok((1, UNBOUNDED_CAP))
            }
            _ => Ok((1, 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("string_gen")
    }

    #[test]
    fn simple_class_and_quantifier() {
        let p = Pattern::compile("[a-z]{2,4}").unwrap();
        let mut r = rng();
        for _ in 0..200 {
            let s = p.generate(&mut r);
            assert!((2..=4).contains(&s.len()), "{s:?}");
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn group_with_repetition() {
        let p = Pattern::compile("[a-z]{1,6}(/[a-z0-9]{1,4}){0,2}").unwrap();
        let mut r = rng();
        for _ in 0..200 {
            let s = p.generate(&mut r);
            assert!(s.split('/').count() <= 3, "{s:?}");
        }
    }

    #[test]
    fn escaped_metachars_in_class() {
        let p = Pattern::compile("[a-zA-Z0-9_ .*+?()\\[\\]|^$\\\\]{0,8}").unwrap();
        let mut r = rng();
        for _ in 0..200 {
            let s = p.generate(&mut r);
            assert!(s.len() <= 8);
        }
    }

    #[test]
    fn whitespace_escapes() {
        let p = Pattern::compile("[ -~\\t\\n\\r]{0,24}").unwrap();
        let mut r = rng();
        let mut saw_ws = false;
        for _ in 0..500 {
            let s = p.generate(&mut r);
            assert!(s.len() <= 24);
            saw_ws |= s.contains(['\t', '\n', '\r']);
        }
        assert!(saw_ws, "whitespace range never sampled");
    }

    #[test]
    fn space_to_tilde_range() {
        let p = Pattern::compile("[ -~]{0,12}").unwrap();
        let mut r = rng();
        for _ in 0..200 {
            let s = p.generate(&mut r);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn alternation() {
        let p = Pattern::compile("ab|cd").unwrap();
        let mut r = rng();
        for _ in 0..50 {
            let s = p.generate(&mut r);
            assert!(s == "ab" || s == "cd");
        }
    }
}
