//! Test-runner configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng as _;
use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed test case (kept for API compatibility; the vendored macros
/// panic instead of returning this).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The RNG driving case generation. Seeded from the test name so runs are
/// reproducible; set `PROPTEST_SEED` to explore a different sequence.
pub struct TestRng {
    /// The underlying generator (public within the crate's strategy impls).
    pub rng: StdRng,
}

impl TestRng {
    /// Creates the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x4D44_5748); // "MDWH"
        let mut h: u64 = 0xcbf29ce484222325 ^ base;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { rng: StdRng::seed_from_u64(h) }
    }
}
