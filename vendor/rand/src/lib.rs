//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the handful of external crates it uses as minimal API-compatible
//! re-implementations. This one provides `StdRng`, `SeedableRng`, and the
//! `Rng::gen`/`gen_range` surface the corpus generator uses, backed by
//! `xoshiro256**` seeded through SplitMix64 — deterministic for a given
//! seed, which is all the reproduction needs (no cryptographic claims).

/// The core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-width byte array for `StdRng`).
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed (via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`. `high > low` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                debug_assert!(span > 0, "gen_range called with an empty range");
                // Multiply-shift rejection-free mapping; bias is negligible
                // for the corpus generator's small spans.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a value can be drawn from (subset of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                if low == high {
                    return low;
                }
                let span = (high as i128 - low as i128) as u128 + 1;
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values `Rng::gen` can produce.
pub trait Standard {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Convenience methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draws a value of a `Standard`-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                s = [0xDEADBEEF, 0xCAFEBABE, 0xF00DF00D, 0x12345678];
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
            let neg = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn full_range_hit_eventually() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
