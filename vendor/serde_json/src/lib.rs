//! Offline drop-in subset of the `serde_json` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the handful of external crates it uses as minimal API-compatible
//! re-implementations. This one provides [`Value`], the [`json!`] macro for
//! literal construction, and [`to_string_pretty`] — the surface the
//! experiment runner uses to emit machine-readable records.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (stored as either integer or float).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A float.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(v) => write!(f, "{v}"),
            Number::UInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// Conversion into a [`Value`] (stands in for `serde::Serialize` for the
/// types the workspace actually serializes).
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

macro_rules! impl_to_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
    )*};
}

impl_to_json_signed!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_to_json_wide_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(v) => Value::Number(Number::Int(v)),
                    Err(_) => Value::Number(Number::UInt(*self as u64)),
                }
            }
        }
    )*};
}

impl_to_json_wide_unsigned!(u64, usize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

/// Converts any supported value into a [`Value`] (used by [`json!`]).
pub fn to_value<T: ToJson>(value: T) -> Value {
    value.to_json()
}

/// Serialization error (the vendored serializer is infallible; the type
/// exists for API compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(value: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_inner);
                write_pretty(item, out, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                out.push_str(&pad_inner);
                escape_into(out, key);
                out.push_str(": ");
                write_pretty(item, out, indent + 1);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-prints a value as JSON text.
pub fn to_string_pretty<T: ToJson>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json(), &mut out, 0);
    Ok(out)
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, key);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

/// Serializes a value as compact single-line JSON text (the ndjson wire
/// format: one value per line, no interior newlines).
pub fn to_string<T: ToJson>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out)
}

/// Builds a [`Value`] from a JSON-like literal. Object values may be any
/// expression convertible via [`ToJson`], a nested `{ … }` / `[ … ]`
/// literal, or `null`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({}) => { $crate::Value::Object(vec![]) };
    ({ $($rest:tt)+ }) => {{
        let mut entries: Vec<(String, $crate::Value)> = Vec::new();
        $crate::__json_entries!(entries, $($rest)+);
        $crate::Value::Object(entries)
    }};
    ($other:expr) => { $crate::to_value($other) };
}

/// Internal key/value muncher for [`json!`] objects; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_entries {
    ($entries:ident,) => {};
    ($entries:ident) => {};
    ($entries:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::Value::Null));
        $crate::__json_entries!($entries, $($($rest)*)?);
    };
    ($entries:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::__json_entries!($entries, $($($rest)*)?);
    };
    ($entries:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::__json_entries!($entries, $($($rest)*)?);
    };
    ($entries:ident, $key:literal : $value:expr) => {
        $entries.push(($key.to_string(), $crate::to_value($value)));
    };
    ($entries:ident, $key:literal : $value:expr, $($rest:tt)*) => {
        $entries.push(($key.to_string(), $crate::to_value($value)));
        $crate::__json_entries!($entries, $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_and_pretty() {
        let records: Vec<Value> = vec![json!({"a": 1u64, "b": "x"})];
        let doc = json!({
            "name": format!("n{}", 1),
            "count": 3usize,
            "nested": records,
            "flag": true,
            "nothing": null,
        });
        let text = to_string_pretty(&doc).unwrap();
        assert!(text.contains("\"name\": \"n1\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"a\": 1"));
        assert!(text.contains("\"nothing\": null"));
    }

    #[test]
    fn compact_is_single_line() {
        let doc = json!({
            "rows": [1i64, 2i64],
            "note": "line\nbreak",
            "inner": {"ok": true},
        });
        let text = to_string(&doc).unwrap();
        assert_eq!(
            text,
            "{\"rows\":[1,2],\"note\":\"line\\nbreak\",\"inner\":{\"ok\":true}}"
        );
        assert!(!text.contains('\n'));
    }

    #[test]
    fn escapes_control_characters() {
        let v = json!("line\nbreak \"quoted\"");
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "\"line\\nbreak \\\"quoted\\\"\"");
    }
}
